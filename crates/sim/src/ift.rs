//! The IFT-enhanced simulation step of FastPath (paper Sec. IV-B).
//!
//! [`IftSimulation`] runs a testbench against a design with all confidential
//! data inputs `X_D` tainted HIGH every cycle and checks the global IFT
//! property `X_D =/=> Y_C`: no control output may ever become tainted.
//!
//! The run produces an [`IftReport`] containing:
//!
//! - any property **violations** (a tainted control output = a complete,
//!   concrete propagation path from reset — the paper's "efficient
//!   debugging" advantage);
//! - the set of state signals that *did* get tainted (data propagations
//!   found by IFT, Table I column "Data Prop. Found / IFT");
//! - the **untainted state set `Z'`** (Def. 2), which seeds the UPEC-DIT
//!   induction and eliminates most of the manual partitioning effort.

use crate::taint::{FlowPolicy, TaintEngine, TaintSimulator};
use crate::tape::{CompiledTaintSim, SimEngine, SimTape};
use crate::testbench::Testbench;
use fastpath_rtl::{Module, SignalId, SignalRole};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration for one IFT simulation run.
#[derive(Debug)]
pub struct IftSimulation {
    /// Taint propagation policy.
    pub policy: FlowPolicy,
    /// Number of cycles to simulate.
    pub cycles: u64,
    /// Signals whose taint is cleared as computed (flow-policy
    /// declassification, e.g. intended flows into data outputs).
    pub declassify: Vec<SignalId>,
    /// Stop at the first property violation instead of completing the run.
    pub stop_at_first_violation: bool,
}

impl IftSimulation {
    /// A default configuration: precise policy, `cycles` cycles, no
    /// declassification, run to completion.
    pub fn new(cycles: u64) -> Self {
        IftSimulation {
            policy: FlowPolicy::Precise,
            cycles,
            declassify: Vec::new(),
            stop_at_first_violation: false,
        }
    }

    /// Selects the taint propagation policy.
    pub fn with_policy(mut self, policy: FlowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Adds declassified signals.
    pub fn with_declassified(mut self, signals: &[SignalId]) -> Self {
        self.declassify.extend_from_slice(signals);
        self
    }

    /// Runs the IFT property `X_D =/=> Y_C` for `module` under `testbench`.
    ///
    /// Inputs are driven each cycle; all `DataIn` inputs carry HIGH labels,
    /// everything else LOW.
    pub fn run(&self, module: &Module, testbench: &mut dyn Testbench) -> IftReport {
        let sim = TaintSimulator::new(module, self.policy);
        self.run_inner(module, testbench, sim, None)
    }

    /// Like [`run`](Self::run), but also records every cycle — values and
    /// taint labels — into the given [`VcdRecorder`], so a violation can be
    /// debugged in a waveform viewer.
    pub fn run_with_vcd(
        &self,
        module: &Module,
        testbench: &mut dyn Testbench,
        recorder: &mut crate::VcdRecorder,
    ) -> IftReport {
        let sim = TaintSimulator::new(module, self.policy);
        self.run_inner(module, testbench, sim, Some(recorder))
    }

    /// Runs on the compiled engine over a precompiled tape (which must
    /// have been compiled from this exact `module`). Sharing one tape
    /// across runs — or threads, via `Arc` clones — amortizes the
    /// compilation cost.
    pub fn run_compiled(
        &self,
        module: &Module,
        tape: &Arc<SimTape>,
        testbench: &mut dyn Testbench,
    ) -> IftReport {
        let sim = CompiledTaintSim::with_tape(module, Arc::clone(tape), self.policy);
        self.run_inner(module, testbench, sim, None)
    }

    /// Runs on the selected [`SimEngine`] — the interpretive oracle or
    /// the compiled tape (compiling the module on the spot).
    pub fn run_with_engine(
        &self,
        module: &Module,
        testbench: &mut dyn Testbench,
        engine: SimEngine,
    ) -> IftReport {
        match engine {
            SimEngine::Interp => self.run(module, testbench),
            SimEngine::Compiled => {
                let tape = Arc::new(SimTape::compile(module));
                self.run_compiled(module, &tape, testbench)
            }
        }
    }

    fn run_inner<E: TaintEngine>(
        &self,
        module: &Module,
        testbench: &mut dyn Testbench,
        mut sim: E,
        mut recorder: Option<&mut crate::VcdRecorder>,
    ) -> IftReport {
        let data_inputs: HashSet<SignalId> = module.data_inputs().into_iter().collect();
        let control_outputs = module.control_outputs();

        for &d in &self.declassify {
            sim.declassify(d);
        }

        let mut violations = Vec::new();
        let mut first_taint_cycle: Vec<Option<u64>> = vec![None; module.signal_count()];

        'cycles: for cycle in 0..self.cycles {
            for (input, value) in testbench.drive(cycle) {
                let tainted = data_inputs.contains(&input);
                sim.drive_input(input, value, tainted);
            }
            sim.settle();
            if let Some(rec) = recorder.as_deref_mut() {
                rec.sample_taint(&sim);
            }
            // Record first-taint cycles for combinational signals and check
            // the property on the settled outputs.
            for (id, _) in module.signals() {
                if sim.is_tainted(id) && first_taint_cycle[id.index()].is_none() {
                    first_taint_cycle[id.index()] = Some(cycle);
                }
            }
            for &yc in &control_outputs {
                if sim.is_tainted(yc) {
                    let already_reported = violations.iter().any(|v: &IftViolation| v.output == yc);
                    if !already_reported {
                        violations.push(IftViolation { output: yc, cycle });
                        if self.stop_at_first_violation {
                            break 'cycles;
                        }
                    }
                }
            }
            sim.clock();
            // Registers latch at the edge; record their first-taint cycle
            // against the cycle whose inputs caused it.
            for reg in module.state_signals() {
                if sim.is_tainted(reg) && first_taint_cycle[reg.index()].is_none() {
                    first_taint_cycle[reg.index()] = Some(cycle);
                }
            }
        }

        let tainted_state: Vec<SignalId> = module
            .state_signals()
            .into_iter()
            .filter(|&z| first_taint_cycle[z.index()].is_some())
            .collect();
        let untainted_state: Vec<SignalId> = module
            .state_signals()
            .into_iter()
            .filter(|&z| first_taint_cycle[z.index()].is_none())
            .collect();

        IftReport {
            cycles_run: self.cycles,
            violations,
            tainted_state,
            untainted_state,
            first_taint_cycle,
        }
    }
}

/// A violation of `X_D =/=> Y_C`: a control output became tainted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IftViolation {
    /// The tainted control output `y_c`.
    pub output: SignalId,
    /// The first cycle at which it was observed tainted.
    pub cycle: u64,
}

/// Result of an IFT-enhanced simulation run.
#[derive(Clone, Debug)]
pub struct IftReport {
    /// Cycles simulated (may be fewer if stopped at a violation).
    pub cycles_run: u64,
    /// Control outputs that received taint, i.e. property violations.
    pub violations: Vec<IftViolation>,
    /// State signals influenced by `X_D` during the run.
    pub tainted_state: Vec<SignalId>,
    /// The untainted state set `Z'` (Def. 2) handed to the formal step.
    pub untainted_state: Vec<SignalId>,
    /// First cycle each signal became tainted (`None` = never), indexed by
    /// signal.
    pub first_taint_cycle: Vec<Option<u64>>,
}

impl IftReport {
    /// `true` iff the property `X_D =/=> Y_C` held throughout the run.
    pub fn property_holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of state signals reached by the data (Table I "IFT" column).
    pub fn propagation_count(&self) -> usize {
        self.tainted_state.len()
    }

    /// Pretty one-line summary.
    pub fn summary(&self, module: &Module) -> String {
        format!(
            "{}: {} cycles, {} tainted / {} untainted state signals, {} \
             violation(s)",
            module.name(),
            self.cycles_run,
            self.tainted_state.len(),
            self.untainted_state.len(),
            self.violations.len()
        )
    }
}

/// Checks a user-specified no-flow assertion `{srcs} =/=> {dsts}` over a
/// fixed number of cycles: returns `Ok(())` if no destination ever becomes
/// tainted when exactly `srcs` are tainted, or the first offending
/// destination.
///
/// This is the assertion form of hardware IFT described in Sec. III-B,
/// generalized beyond the `X_D`/`Y_C` partitioning.
///
/// # Errors
///
/// Returns the violating destination and cycle as `Err((dst, cycle))`.
pub fn check_no_flow(
    module: &Module,
    testbench: &mut dyn Testbench,
    srcs: &[SignalId],
    dsts: &[SignalId],
    cycles: u64,
    policy: FlowPolicy,
) -> Result<(), (SignalId, u64)> {
    let src_set: HashSet<SignalId> = srcs.iter().copied().collect();
    let mut sim = TaintSimulator::new(module, policy);
    for cycle in 0..cycles {
        for (input, value) in testbench.drive(cycle) {
            sim.set_input(input, value, src_set.contains(&input));
        }
        sim.settle();
        for &d in dsts {
            if sim.is_tainted(d) {
                return Err((d, cycle));
            }
        }
        sim.clock();
        for &d in dsts {
            if sim.is_tainted(d) {
                return Err((d, cycle));
            }
        }
    }
    Ok(())
}

/// Returns the signals whose role makes them observation targets for the
/// data-obliviousness property (all `ControlOut` signals).
pub fn observation_targets(module: &Module) -> Vec<SignalId> {
    module.signals_of_role(SignalRole::ControlOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::RandomTestbench;
    use fastpath_rtl::ModuleBuilder;

    /// A leaky divider-like toy: `busy` drops early when the data is zero.
    fn early_termination_module() -> Module {
        let mut b = ModuleBuilder::new("leaky");
        let start = b.control_input("start", 1);
        let data = b.data_input("data", 8);
        let counter = b.reg("counter", 4, 0);
        let counter_sig = b.sig(counter);
        let data_sig = b.sig(data);
        let start_sig = b.sig(start);
        // counter <= start ? (data == 0 ? 1 : 8) : max(counter-1, 0)
        let zero8 = b.lit(8, 0);
        let is_zero = b.eq(data_sig, zero8);
        let one4 = b.lit(4, 1);
        let eight4 = b.lit(4, 8);
        let initial = b.mux(is_zero, one4, eight4);
        let zero4 = b.lit(4, 0);
        let counter_is_zero = b.eq(counter_sig, zero4);
        let dec = b.sub(counter_sig, one4);
        let dec_clamped = b.mux(counter_is_zero, zero4, dec);
        let next = b.mux(start_sig, initial, dec_clamped);
        b.set_next(counter, next).expect("drive");
        let busy = b.ne(counter_sig, zero4);
        b.control_output("busy", busy);
        b.build().expect("valid")
    }

    /// An oblivious counterpart: latency never depends on the data.
    fn oblivious_module() -> Module {
        let mut b = ModuleBuilder::new("oblivious");
        let start = b.control_input("start", 1);
        let data = b.data_input("data", 8);
        let acc = b.reg("acc", 8, 0);
        let acc_sig = b.sig(acc);
        let data_sig = b.sig(data);
        let sum = b.add(acc_sig, data_sig);
        let start_sig = b.sig(start);
        b.set_next_if(acc, start_sig, sum).expect("drive");
        let counter = b.reg("counter", 4, 0);
        let counter_sig = b.sig(counter);
        let one = b.lit(4, 1);
        let inc = b.add(counter_sig, one);
        b.set_next(counter, inc).expect("drive");
        let zero4 = b.lit(4, 0);
        let busy = b.ne(counter_sig, zero4);
        b.control_output("busy", busy);
        b.data_output("result", acc_sig);
        b.build().expect("valid")
    }

    #[test]
    fn detects_timing_leak() {
        let m = early_termination_module();
        let mut tb = RandomTestbench::new(&m, 11);
        let report = IftSimulation::new(200).run(&m, &mut tb);
        assert!(!report.property_holds());
        let busy = m.signal_by_name("busy").expect("busy");
        assert_eq!(report.violations[0].output, busy);
    }

    #[test]
    fn oblivious_design_passes() {
        let m = oblivious_module();
        let mut tb = RandomTestbench::new(&m, 11);
        let report = IftSimulation::new(200).run(&m, &mut tb);
        assert!(report.property_holds(), "{:?}", report.violations);
        // The accumulator is tainted, the timing counter is not.
        let acc = m.signal_by_name("acc").expect("acc");
        let counter = m.signal_by_name("counter").expect("counter");
        assert!(report.tainted_state.contains(&acc));
        assert!(report.untainted_state.contains(&counter));
    }

    #[test]
    fn untainted_state_partitions_all_state() {
        let m = oblivious_module();
        let mut tb = RandomTestbench::new(&m, 5);
        let report = IftSimulation::new(50).run(&m, &mut tb);
        let total = report.tainted_state.len() + report.untainted_state.len();
        assert_eq!(total, m.state_signals().len());
    }

    #[test]
    fn stop_at_first_violation_stops_early() {
        let m = early_termination_module();
        let mut tb = RandomTestbench::new(&m, 11);
        let mut cfg = IftSimulation::new(1000);
        cfg.stop_at_first_violation = true;
        let report = cfg.run(&m, &mut tb);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn check_no_flow_assertion_form() {
        let m = oblivious_module();
        let data = m.signal_by_name("data").expect("data");
        let busy = m.signal_by_name("busy").expect("busy");
        let result = m.signal_by_name("result").expect("result");
        let mut tb = RandomTestbench::new(&m, 3);
        assert!(check_no_flow(&m, &mut tb, &[data], &[busy], 100, FlowPolicy::Precise).is_ok());
        let mut tb = RandomTestbench::new(&m, 3);
        // Data is *supposed* to flow into the result.
        assert!(check_no_flow(&m, &mut tb, &[data], &[result], 100, FlowPolicy::Precise).is_err());
    }

    use fastpath_rtl::Module;
}

#[cfg(test)]
mod vcd_tests {
    use super::*;
    use crate::testbench::RandomTestbench;
    use crate::VcdRecorder;
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn violating_run_produces_a_taint_waveform() {
        // data flows straight to a control output: immediate violation.
        let mut b = ModuleBuilder::new("leak");
        let d = b.data_input("d", 4);
        let ds = b.sig(d);
        let r = b.reg("r", 4, 0);
        b.set_next(r, ds).expect("drive");
        let rs = b.sig(r);
        let any = b.red_or(rs);
        b.control_output("busy", any);
        let m = b.build().expect("valid");
        let mut tb = RandomTestbench::new(&m, 1);
        let mut rec = VcdRecorder::all_signals(&m);
        let report = IftSimulation::new(20).run_with_vcd(&m, &mut tb, &mut rec);
        assert!(!report.property_holds());
        assert_eq!(rec.len(), 20);
        let text = rec.render();
        assert!(text.contains("busy_taint"));
        assert!(text.contains("r_taint"));
        // The taint companion of `r` must eventually go high.
        assert!(text.contains("b1111"));
    }
}
