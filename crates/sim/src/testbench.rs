//! Testbench abstraction and random stimulus generation.
//!
//! The paper stresses that FastPath "does not require sophisticated
//! testbenches" (Sec. IV-B): any stimulus source works because the formal
//! step catches whatever simulation misses. [`RandomTestbench`] is the
//! "fairly rudimentary testbench" used throughout the case studies —
//! uniform random values per input per cycle, with optional per-input
//! overrides for protocol signals that must follow a pattern.

use fastpath_rtl::{BitVec, Module, SignalId, SignalKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A stimulus source: drives primary inputs each cycle.
pub trait Testbench {
    /// Produces `(input, value)` pairs for the given cycle. Inputs not
    /// mentioned keep their previous value.
    fn drive(&mut self, cycle: u64) -> Vec<(SignalId, BitVec)>;
}

/// A deterministic pseudo-random testbench.
///
/// Every input gets a fresh uniform value each cycle unless an override is
/// installed (fixed value, a held pattern, or a custom generator).
pub struct RandomTestbench {
    inputs: Vec<(SignalId, u32)>,
    rng: StdRng,
    overrides: HashMap<SignalId, Override>,
}

/// A per-cycle value generator: `f(cycle, rng) -> value`.
type Generator = Box<dyn FnMut(u64, &mut StdRng) -> BitVec>;

enum Override {
    /// Always this value.
    Fixed(BitVec),
    /// value = f(cycle, &mut rng)
    Gen(Generator),
}

impl std::fmt::Debug for RandomTestbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomTestbench")
            .field("inputs", &self.inputs.len())
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl RandomTestbench {
    /// Creates a random testbench for all inputs of `module` with the given
    /// seed (same seed ⇒ same stimulus).
    pub fn new(module: &Module, seed: u64) -> Self {
        let inputs = module
            .signals()
            .filter(|(_, s)| s.kind == SignalKind::Input)
            .map(|(id, s)| (id, s.width))
            .collect();
        RandomTestbench {
            inputs,
            rng: StdRng::seed_from_u64(seed),
            overrides: HashMap::new(),
        }
    }

    /// Holds an input at a fixed value for the whole run.
    pub fn fix(&mut self, input: SignalId, value: u64) -> &mut Self {
        let width = self.width_of(input);
        self.overrides
            .insert(input, Override::Fixed(BitVec::from_u64(width, value)));
        self
    }

    /// Installs a custom per-cycle generator for an input.
    pub fn with_generator(
        &mut self,
        input: SignalId,
        generator: impl FnMut(u64, &mut StdRng) -> BitVec + 'static,
    ) -> &mut Self {
        self.overrides
            .insert(input, Override::Gen(Box::new(generator)));
        self
    }

    /// Restricts an input to uniform values in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bound(&mut self, input: SignalId, bound: u64) -> &mut Self {
        assert!(bound > 0, "bound must be positive");
        let width = self.width_of(input);
        self.with_generator(input, move |_, rng| {
            BitVec::from_u64(width, rng.gen_range(0..bound))
        })
    }

    fn width_of(&self, input: SignalId) -> u32 {
        self.inputs
            .iter()
            .find(|(id, _)| *id == input)
            .map(|(_, w)| *w)
            .expect("signal is not an input of this module")
    }

    fn random_value(rng: &mut StdRng, width: u32) -> BitVec {
        let limbs: Vec<u64> = (0..(width as usize).div_ceil(64))
            .map(|_| rng.gen())
            .collect();
        BitVec::from_limbs(width, &limbs)
    }
}

impl Testbench for RandomTestbench {
    fn drive(&mut self, cycle: u64) -> Vec<(SignalId, BitVec)> {
        let mut out = Vec::with_capacity(self.inputs.len());
        for &(id, width) in &self.inputs {
            let value = match self.overrides.get_mut(&id) {
                Some(Override::Fixed(v)) => v.clone(),
                Some(Override::Gen(f)) => {
                    let v = f(cycle, &mut self.rng);
                    assert_eq!(v.width(), width, "override width mismatch");
                    v
                }
                None => Self::random_value(&mut self.rng, width),
            };
            out.push((id, value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    fn two_input_module() -> Module {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let c = b.input("c", 130);
        let a_sig = b.sig(a);
        b.output("out_a", a_sig);
        let c_sig = b.sig(c);
        b.output("out_c", c_sig);
        b.build().expect("valid")
    }

    #[test]
    fn same_seed_same_stimulus() {
        let m = two_input_module();
        let mut tb1 = RandomTestbench::new(&m, 7);
        let mut tb2 = RandomTestbench::new(&m, 7);
        for cycle in 0..10 {
            assert_eq!(tb1.drive(cycle), tb2.drive(cycle));
        }
    }

    #[test]
    fn different_seed_differs() {
        let m = two_input_module();
        let mut tb1 = RandomTestbench::new(&m, 1);
        let mut tb2 = RandomTestbench::new(&m, 2);
        let d1: Vec<_> = (0..5).map(|c| tb1.drive(c)).collect();
        let d2: Vec<_> = (0..5).map(|c| tb2.drive(c)).collect();
        assert_ne!(d1, d2);
    }

    #[test]
    fn fixed_override_holds() {
        let m = two_input_module();
        let a = m.signal_by_name("a").expect("a");
        let mut tb = RandomTestbench::new(&m, 3);
        tb.fix(a, 0x42);
        for cycle in 0..5 {
            let drives = tb.drive(cycle);
            let (_, v) = drives.iter().find(|(id, _)| *id == a).expect("a");
            assert_eq!(v.to_u64(), 0x42);
        }
    }

    #[test]
    fn bound_restricts_range() {
        let m = two_input_module();
        let a = m.signal_by_name("a").expect("a");
        let mut tb = RandomTestbench::new(&m, 3);
        tb.bound(a, 4);
        for cycle in 0..50 {
            let drives = tb.drive(cycle);
            let (_, v) = drives.iter().find(|(id, _)| *id == a).expect("a");
            assert!(v.to_u64() < 4);
        }
    }

    #[test]
    fn wide_inputs_get_full_width_randomness() {
        let m = two_input_module();
        let c = m.signal_by_name("c").expect("c");
        let mut tb = RandomTestbench::new(&m, 9);
        // Over a few cycles, the high limb should not stay zero.
        let mut high_bits_seen = false;
        for cycle in 0..20 {
            let drives = tb.drive(cycle);
            let (_, v) = drives.iter().find(|(id, _)| *id == c).expect("c");
            if v.limbs()[2] != 0 {
                high_bits_seen = true;
            }
        }
        assert!(high_bits_seen);
    }
}
