//! VCD (Value Change Dump) waveform recording.
//!
//! [`VcdRecorder`] captures selected signals cycle by cycle and renders a
//! standard IEEE-1364 VCD document that any waveform viewer (GTKWave,
//! Surfer, …) can open — indispensable when debugging a taint
//! counterexample by eye.
//!
//! # Examples
//!
//! ```
//! use fastpath_rtl::ModuleBuilder;
//! use fastpath_sim::{Simulator, VcdRecorder};
//!
//! # fn main() -> Result<(), fastpath_rtl::RtlError> {
//! let mut b = ModuleBuilder::new("ctr");
//! let count = b.reg("count", 4, 0);
//! let c = b.sig(count);
//! let one = b.lit(4, 1);
//! let next = b.add(c, one);
//! b.set_next(count, next)?;
//! let module = b.build()?;
//!
//! let mut sim = Simulator::new(&module);
//! let mut vcd = VcdRecorder::all_signals(&module);
//! for _ in 0..4 {
//!     sim.settle();
//!     vcd.sample(&sim);
//!     sim.clock();
//! }
//! let text = vcd.render();
//! assert!(text.contains("$var wire 4"));
//! # Ok(())
//! # }
//! ```

use crate::simulator::Simulator;
use crate::taint::TaintEngine;
use fastpath_rtl::{BitVec, Module, SignalId};

/// Records signal values over time and renders a VCD document.
#[derive(Debug)]
pub struct VcdRecorder {
    module_name: String,
    /// (signal, name, width) in declaration order.
    signals: Vec<(SignalId, String, u32)>,
    /// Per sampled timestep, the values in `signals` order.
    samples: Vec<Vec<BitVec>>,
    /// Optional taint masks per timestep (same shape), rendered as
    /// companion `_taint` variables.
    taint_samples: Vec<Vec<BitVec>>,
}

impl VcdRecorder {
    /// Records the given signals.
    pub fn new(module: &Module, signals: &[SignalId]) -> Self {
        VcdRecorder {
            module_name: module.name().to_string(),
            signals: signals
                .iter()
                .map(|&s| {
                    let sig = module.signal(s);
                    (s, sig.name.clone(), sig.width)
                })
                .collect(),
            samples: Vec::new(),
            taint_samples: Vec::new(),
        }
    }

    /// Records every signal of the module.
    pub fn all_signals(module: &Module) -> Self {
        let ids: Vec<SignalId> = module.signals().map(|(id, _)| id).collect();
        Self::new(module, &ids)
    }

    /// The number of samples taken so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Takes one sample from a functional simulator.
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let frame = self
            .signals
            .iter()
            .map(|&(id, _, _)| sim.value(id).clone())
            .collect();
        self.samples.push(frame);
    }

    /// Takes one sample from any taint engine (interpretive or compiled),
    /// capturing values *and* taint masks (rendered as `<name>_taint`
    /// companion variables).
    pub fn sample_taint<E: TaintEngine>(&mut self, sim: &E) {
        let frame = self
            .signals
            .iter()
            .map(|&(id, _, _)| sim.value_bits(id))
            .collect();
        let taints = self
            .signals
            .iter()
            .map(|&(id, _, _)| sim.taint_bits(id))
            .collect();
        self.samples.push(frame);
        self.taint_samples.push(taints);
    }

    /// Renders the recording as VCD text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version fastpath-sim $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module_name);
        let with_taint = !self.taint_samples.is_empty();
        for (i, (_, name, width)) in self.signals.iter().enumerate() {
            let _ = writeln!(out, "$var wire {width} {} {name} $end", ident(i));
            if with_taint {
                let _ = writeln!(
                    out,
                    "$var wire {width} {} {name}_taint $end",
                    ident(i + self.signals.len())
                );
            }
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut previous: Vec<Option<BitVec>> = vec![None; self.signals.len() * 2];
        for (t, frame) in self.samples.iter().enumerate() {
            let _ = writeln!(out, "#{t}");
            for (i, value) in frame.iter().enumerate() {
                if previous[i].as_ref() != Some(value) {
                    emit_change(&mut out, value, &ident(i));
                    previous[i] = Some(value.clone());
                }
            }
            if with_taint {
                for (i, taint) in self.taint_samples[t].iter().enumerate() {
                    let slot = i + self.signals.len();
                    if previous[slot].as_ref() != Some(taint) {
                        emit_change(&mut out, taint, &ident(slot));
                        previous[slot] = Some(taint.clone());
                    }
                }
            }
        }
        out
    }
}

/// VCD identifier codes: printable ASCII 33..=126, base-94.
fn ident(mut index: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    out
}

fn emit_change(out: &mut String, value: &BitVec, code: &str) {
    use std::fmt::Write as _;
    if value.width() == 1 {
        let _ = writeln!(out, "{}{code}", value.bit(0) as u8);
    } else {
        let _ = writeln!(out, "b{value:b} {code}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    fn counter_module() -> fastpath_rtl::Module {
        let mut b = ModuleBuilder::new("ctr");
        let count = b.reg("count", 4, 0);
        let c = b.sig(count);
        let one = b.lit(4, 1);
        let next = b.add(c, one);
        b.set_next(count, next).expect("drive");
        let odd = b.bit(c, 0);
        b.output("odd", odd);
        b.build().expect("valid")
    }

    #[test]
    fn header_lists_all_variables() {
        let m = counter_module();
        let vcd = VcdRecorder::all_signals(&m);
        let text = vcd.render();
        assert!(text.contains("$scope module ctr $end"));
        assert!(text.contains("$var wire 4 ! count $end"));
        assert!(text.contains("$var wire 1 \" odd $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn only_changes_are_emitted() {
        let m = counter_module();
        let mut sim = Simulator::new(&m);
        let mut vcd = VcdRecorder::all_signals(&m);
        for _ in 0..4 {
            sim.settle();
            vcd.sample(&sim);
            sim.clock();
        }
        let text = vcd.render();
        // count changes every cycle: 0,1,2,3.
        assert!(text.contains("b0000 !"));
        assert!(text.contains("b0001 !"));
        assert!(text.contains("b0010 !"));
        assert!(text.contains("b0011 !"));
        // `odd` is 1-bit scalar notation and toggles every cycle.
        assert!(text.contains("0\""));
        assert!(text.contains("1\""));
        // Four timestamps.
        for t in 0..4 {
            assert!(text.contains(&format!("#{t}\n")));
        }
    }

    #[test]
    fn unchanged_values_are_not_repeated() {
        let m = {
            let mut b = ModuleBuilder::new("hold");
            let r = b.reg("r", 8, 0x5A);
            let rs = b.sig(r);
            b.set_next(r, rs).expect("drive");
            b.build().expect("valid")
        };
        let mut sim = Simulator::new(&m);
        let mut vcd = VcdRecorder::all_signals(&m);
        for _ in 0..5 {
            sim.settle();
            vcd.sample(&sim);
            sim.clock();
        }
        let text = vcd.render();
        assert_eq!(
            text.matches("b01011010 !").count(),
            1,
            "a held value must be dumped exactly once"
        );
    }

    #[test]
    fn taint_companions_track_labels() {
        let mut b = ModuleBuilder::new("t");
        let d = b.data_input("d", 4);
        let ds = b.sig(d);
        let r = b.reg("r", 4, 0);
        b.set_next(r, ds).expect("drive");
        let m = b.build().expect("valid");
        let mut sim = crate::TaintSimulator::new(&m, crate::FlowPolicy::Precise);
        let mut vcd = VcdRecorder::all_signals(&m);
        sim.set_input_u64(d, 7, true);
        sim.settle();
        vcd.sample_taint(&sim);
        sim.clock();
        sim.settle();
        vcd.sample_taint(&sim);
        let text = vcd.render();
        assert!(text.contains("d_taint"));
        assert!(text.contains("r_taint"));
        // The register's taint goes from 0000 to 1111 after the edge.
        assert!(text.contains("b1111"));
    }

    #[test]
    fn identifier_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = ident(i);
            assert!(code.chars().all(|c| (33..=126).contains(&(c as u32))));
            assert!(seen.insert(code), "codes must be unique");
        }
    }
}
