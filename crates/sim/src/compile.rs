//! The `Module` → [`SimTape`] compiler.
//!
//! Compilation is a single levelization pass over the module's already
//! topologically-sorted structure:
//!
//! 1. every signal gets a dedicated arena slot (so inputs can be driven
//!    and any signal probed without an index translation at runtime);
//! 2. for every combinational signal in `comb_order`, the driving
//!    expression cone is emitted depth-first (shared sub-expressions are
//!    emitted exactly once, into whichever section needs them first) and
//!    committed to the signal's slot with a `Copy`;
//! 3. for every register, the next-state cone is emitted into the clock
//!    section; commits whose source is *another register's slot* are
//!    routed through a staging slot first, so simultaneous
//!    register-to-register moves see the pre-edge values;
//! 4. constants and register reset values are baked into the arena's
//!    `init` image — `reset` is a single `memcpy`.
//!
//! Because expression slots are written only by their own instruction
//! (SSA discipline) and the sections are levelized, a settle pass leaves
//! every expression slot consistent with the current inputs, which is
//! exactly the precondition the clock section relies on — the same
//! settle-then-clock contract as the interpretive simulators.

use crate::tape::{Instr, Op, SimTape, Slot};
use fastpath_rtl::{BinaryOp, BitVec, Expr, ExprId, Module, SignalKind, UnaryOp};
use std::collections::HashSet;

const UNASSIGNED: u32 = u32::MAX;

fn unary_opcode(op: UnaryOp) -> Op {
    match op {
        UnaryOp::Not => Op::Not,
        UnaryOp::Neg => Op::Neg,
        UnaryOp::RedAnd => Op::RedAnd,
        UnaryOp::RedOr => Op::RedOr,
        UnaryOp::RedXor => Op::RedXor,
    }
}

fn binary_opcode(op: BinaryOp) -> Op {
    match op {
        BinaryOp::And => Op::And,
        BinaryOp::Or => Op::Or,
        BinaryOp::Xor => Op::Xor,
        BinaryOp::Add => Op::Add,
        BinaryOp::Sub => Op::Sub,
        BinaryOp::Mul => Op::Mul,
        BinaryOp::Shl => Op::Shl,
        BinaryOp::Lshr => Op::Lshr,
        BinaryOp::Ashr => Op::Ashr,
        BinaryOp::Eq => Op::Eq,
        BinaryOp::Ne => Op::Ne,
        BinaryOp::Ult => Op::Ult,
        BinaryOp::Ule => Op::Ule,
        BinaryOp::Slt => Op::Slt,
        BinaryOp::Sle => Op::Sle,
    }
}

struct Compiler<'m> {
    module: &'m Module,
    slots: Vec<Slot>,
    arena_len: u32,
    signal_slot: Vec<u32>,
    /// Expression index → slot id, `UNASSIGNED` until emitted.
    expr_slot: Vec<u32>,
    /// Constant slots to bake into the init image.
    consts: Vec<(u32, BitVec)>,
}

impl<'m> Compiler<'m> {
    fn new(module: &'m Module) -> Self {
        Compiler {
            module,
            slots: Vec::new(),
            arena_len: 0,
            signal_slot: Vec::with_capacity(module.signal_count()),
            expr_slot: vec![UNASSIGNED; module.expr_count()],
            consts: Vec::new(),
        }
    }

    fn alloc_slot(&mut self, width: u32) -> u32 {
        let limbs = width.div_ceil(64);
        self.slots.push(Slot {
            offset: self.arena_len,
            limbs,
            width,
        });
        self.arena_len += limbs;
        (self.slots.len() - 1) as u32
    }

    /// Appends `dest <- op(operands)` with the small-path flag
    /// precomputed.
    fn push(&self, out: &mut Vec<Instr>, op: Op, dest: u32, operands: &[u32], imm: u32) {
        let small = std::iter::once(dest)
            .chain(operands.iter().copied())
            .all(|s| self.slots[s as usize].limbs == 1);
        let get = |i: usize| operands.get(i).copied().unwrap_or(0);
        out.push(Instr {
            op,
            dest,
            a: get(0),
            b: get(1),
            c: get(2),
            imm,
            small,
        });
    }

    /// Emits the cone of `e` into `out` (shared nodes only once,
    /// whichever section reaches them first) and returns its slot.
    fn emit(&mut self, e: ExprId, out: &mut Vec<Instr>) -> u32 {
        if self.expr_slot[e.index()] != UNASSIGNED {
            return self.expr_slot[e.index()];
        }
        let width = self.module.expr_width(e);
        let slot = match self.module.expr(e).clone() {
            Expr::Signal(s) => self.signal_slot[s.index()],
            Expr::Const(v) => {
                let slot = self.alloc_slot(v.width());
                self.consts.push((slot, v));
                slot
            }
            Expr::Unary(op, a) => {
                let a_s = self.emit(a, out);
                let d = self.alloc_slot(width);
                self.push(out, unary_opcode(op), d, &[a_s], 0);
                d
            }
            Expr::Binary(op, a, b) => {
                let a_s = self.emit(a, out);
                let b_s = self.emit(b, out);
                let d = self.alloc_slot(width);
                self.push(out, binary_opcode(op), d, &[a_s, b_s], 0);
                d
            }
            Expr::Mux {
                cond,
                then_expr,
                else_expr,
            } => {
                let c_s = self.emit(cond, out);
                let t_s = self.emit(then_expr, out);
                let e_s = self.emit(else_expr, out);
                let d = self.alloc_slot(width);
                self.push(out, Op::Mux, d, &[c_s, t_s, e_s], 0);
                d
            }
            Expr::Slice { arg, hi: _, lo } => {
                let a_s = self.emit(arg, out);
                let d = self.alloc_slot(width);
                self.push(out, Op::Slice, d, &[a_s], lo);
                d
            }
            Expr::Concat(hi, lo) => {
                let h_s = self.emit(hi, out);
                let l_s = self.emit(lo, out);
                let d = self.alloc_slot(width);
                self.push(out, Op::Concat, d, &[h_s, l_s], 0);
                d
            }
            Expr::Zext { arg, .. } => {
                let a_s = self.emit(arg, out);
                let d = self.alloc_slot(width);
                self.push(out, Op::Zext, d, &[a_s], 0);
                d
            }
            Expr::Sext { arg, .. } => {
                let a_s = self.emit(arg, out);
                let d = self.alloc_slot(width);
                self.push(out, Op::Sext, d, &[a_s], 0);
                d
            }
        };
        self.expr_slot[e.index()] = slot;
        slot
    }

    fn run(mut self) -> SimTape {
        // 1. One slot per signal, in signal order.
        let signal_widths: Vec<u32> = self.module.signals().map(|(_, s)| s.width).collect();
        for width in signal_widths {
            let slot = self.alloc_slot(width);
            self.signal_slot.push(slot);
        }

        // 2. Settle section: cones + commits in levelized order.
        let mut settle = Vec::new();
        let comb: Vec<_> = self.module.comb_order().to_vec();
        for sig in comb {
            let drv = self
                .module
                .driver(sig)
                .expect("combinational signals are driven");
            let src = self.emit(drv, &mut settle);
            let dest = self.signal_slot[sig.index()];
            self.push(&mut settle, Op::Copy, dest, &[src], 0);
        }

        // 3. Clock section: next-state cones, staging, commits.
        let regs = self.module.state_signals();
        let reg_slots: HashSet<u32> = regs.iter().map(|r| self.signal_slot[r.index()]).collect();
        let mut clock = Vec::new();
        let mut srcs = Vec::with_capacity(regs.len());
        for &reg in &regs {
            let drv = self.module.driver(reg).expect("registers are driven");
            srcs.push(self.emit(drv, &mut clock));
        }
        // A source that *is* a register slot (next-state is directly
        // another register's value) must be latched before any commit
        // overwrites it.
        for src in &mut srcs {
            if reg_slots.contains(src) {
                let width = self.slots[*src as usize].width;
                let staging = self.alloc_slot(width);
                self.push(&mut clock, Op::Copy, staging, &[*src], 0);
                *src = staging;
            }
        }
        for (k, &reg) in regs.iter().enumerate() {
            let dest = self.signal_slot[reg.index()];
            self.push(&mut clock, Op::Copy, dest, &[srcs[k]], 0);
        }

        // 4. Reset image: constants + register init values.
        let mut init = vec![0u64; self.arena_len as usize];
        for (slot, v) in &self.consts {
            let s = self.slots[*slot as usize];
            v.write_limbs(&mut init[s.offset as usize..][..s.limbs as usize]);
        }
        for (id, signal) in self.module.signals() {
            if signal.kind != SignalKind::Register {
                continue;
            }
            if let Some(iv) = &signal.init {
                let s = self.slots[self.signal_slot[id.index()] as usize];
                iv.write_limbs(&mut init[s.offset as usize..][..s.limbs as usize]);
            }
        }

        let small_only = self.slots.iter().all(|s| s.limbs == 1);
        SimTape {
            slots: self.slots,
            signal_slot: self.signal_slot,
            init,
            settle,
            clock,
            small_only,
            signal_count: self.module.signal_count(),
        }
    }
}

impl SimTape {
    /// Compiles `module` into a levelized instruction tape (see the
    /// module-level docs of `tape` for the layout).
    pub fn compile(module: &Module) -> SimTape {
        Compiler::new(module).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn tape_shape_for_a_small_design() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let a_sig = b.sig(a);
        let one = b.lit(8, 1);
        let sum = b.add(a_sig, one);
        let r = b.reg("r", 8, 7);
        b.set_next(r, sum).expect("drive");
        let r_sig = b.sig(r);
        b.output("out", r_sig);
        let m = b.build().expect("valid");
        let tape = SimTape::compile(&m);
        assert!(tape.is_small_only());
        assert!(tape.instruction_count() > 0);
        // Register init value must be in the reset image.
        let r_slot = tape.slots[tape.signal_slot[r.index()] as usize];
        assert_eq!(tape.init[r_slot.offset as usize], 7);
    }

    #[test]
    fn wide_signals_disable_small_only() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 130);
        let a_sig = b.sig(a);
        let n = b.not(a_sig);
        b.output("out", n);
        let m = b.build().expect("valid");
        let tape = SimTape::compile(&m);
        assert!(!tape.is_small_only());
        assert!(tape.arena_len() >= 3 * 2);
    }
}
