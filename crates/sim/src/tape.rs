//! The compiled simulation backend: a levelized instruction tape over a
//! flat `u64` value arena.
//!
//! [`SimTape::compile`](crate::SimTape::compile) (see `compile.rs`) turns
//! a [`Module`] into a dense, topologically-sorted instruction stream:
//!
//! - every signal and every reachable expression node gets a **slot** — a
//!   `(offset, limbs, width)` view into one contiguous `Vec<u64>` arena;
//! - the **settle** section evaluates each combinational cone in levelized
//!   order and commits it to its signal slot;
//! - the **clock** section evaluates the remaining next-state cones,
//!   stages register-to-register moves through scratch slots, and commits
//!   every register.
//!
//! Signals at most 64 bits wide take the **small fast path**: one limb per
//! slot and pure `u64` arithmetic, so a steady-state cycle performs zero
//! heap allocations. Wider signals fall back to [`BitVec`] operations over
//! the same arena (the only allocating path, absent from all-small
//! designs).
//!
//! The same tape drives two executors:
//!
//! - [`CompiledSim`]: functional values only (mirrors
//!   [`Simulator`](crate::Simulator));
//! - [`CompiledTaintSim`]: values **and** per-bit taint masks — the
//!   [`FlowPolicy`] rules of `taint.rs` restated as branch-free `u64`
//!   kernels, with the shared [`Labeled`] kernels as the wide fallback
//!   (mirrors [`TaintSimulator`](crate::TaintSimulator)).
//!
//! The interpretive simulators remain the reference oracle; the
//! `sim_engine_equivalence` suite asserts bit-for-bit agreement on values
//! and taint masks under both policies.

use crate::taint::{label_binary, label_mux, label_unary, FlowPolicy, Labeled, TaintEngine};
use fastpath_rtl::{BinaryOp, BitVec, Module, SignalId, SignalKind, UnaryOp};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which simulation backend executes IFT runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SimEngine {
    /// The tree-walking interpretive engines (the reference oracle).
    Interp,
    /// The levelized compiled instruction tape (default).
    #[default]
    Compiled,
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEngine::Interp => write!(f, "interp"),
            SimEngine::Compiled => write!(f, "compiled"),
        }
    }
}

impl FromStr for SimEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(SimEngine::Interp),
            "compiled" => Ok(SimEngine::Compiled),
            other => Err(format!(
                "unknown sim engine `{other}` (expected `interp` or \
                 `compiled`)"
            )),
        }
    }
}

/// A value's view into the arena: `limbs` little-endian `u64`s starting at
/// `offset`, of which the low `width` bits are meaningful (and the rest
/// are kept zero).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    pub(crate) offset: u32,
    pub(crate) limbs: u32,
    pub(crate) width: u32,
}

/// Dense opcode of one tape instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    Copy,
    Not,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Shl,
    Lshr,
    Ashr,
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
    Mux,
    Slice,
    Concat,
    Zext,
    Sext,
}

/// One tape instruction: `dest <- op(a, b, c)`, all operands slot ids.
///
/// Field use per op: unary/`Copy`/`Zext`/`Sext` read `a`; binary ops read
/// `a`, `b`; `Mux` reads `a` (cond), `b` (then), `c` (else); `Slice` reads
/// `a` with `imm` = low bit; `Concat` reads `a` (high), `b` (low). `small`
/// is precomputed at compile time: every involved slot is single-limb, so
/// the `u64` fast path applies.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Instr {
    pub(crate) op: Op,
    pub(crate) dest: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
    pub(crate) imm: u32,
    pub(crate) small: bool,
}

/// A module compiled into a flat instruction tape (see the module docs).
///
/// A tape is immutable and shareable: wrap it in an [`Arc`] and hand one
/// clone to each worker for batched runs — executors only hold per-run
/// arenas.
#[derive(Debug)]
pub struct SimTape {
    pub(crate) slots: Vec<Slot>,
    /// Signal index → slot id.
    pub(crate) signal_slot: Vec<u32>,
    /// Arena image at reset: constants and register init values.
    pub(crate) init: Vec<u64>,
    /// Combinational cones + signal commits, levelized.
    pub(crate) settle: Vec<Instr>,
    /// Next-state cones, staging moves, register commits.
    pub(crate) clock: Vec<Instr>,
    pub(crate) small_only: bool,
    pub(crate) signal_count: usize,
}

impl SimTape {
    /// Arena length in 64-bit limbs.
    pub fn arena_len(&self) -> usize {
        self.init.len()
    }

    /// Total instructions executed per full cycle (settle + clock).
    pub fn instruction_count(&self) -> usize {
        self.settle.len() + self.clock.len()
    }

    /// `true` iff every slot is at most 64 bits wide, i.e. steady-state
    /// cycles run entirely on the alloc-free `u64` fast path.
    pub fn is_small_only(&self) -> bool {
        self.small_only
    }

    fn slot_of(&self, id: SignalId) -> Slot {
        self.slots[self.signal_slot[id.index()] as usize]
    }
}

#[inline(always)]
fn mask_of(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[inline(always)]
fn sign_extend(x: u64, width: u32) -> i64 {
    let sh = 64 - width;
    ((x << sh) as i64) >> sh
}

/// `u64` restatement of [`carry_taint`](crate::taint::carry_taint): all
/// bits from the lowest tainted bit upward, clipped to `mask`.
#[inline(always)]
fn carry_smear(taint: u64, mask: u64) -> u64 {
    if taint == 0 {
        0
    } else {
        mask & (taint & taint.wrapping_neg()).wrapping_neg()
    }
}

fn load_bits(values: &[u64], slot: Slot) -> BitVec {
    BitVec::from_limbs(
        slot.width,
        &values[slot.offset as usize..][..slot.limbs as usize],
    )
}

fn store_bits(values: &mut [u64], slot: Slot, v: &BitVec) {
    debug_assert_eq!(slot.width, v.width(), "slot/value width mismatch");
    v.write_limbs(&mut values[slot.offset as usize..][..slot.limbs as usize]);
}

fn zero_slot(values: &mut [u64], slot: Slot) {
    for l in &mut values[slot.offset as usize..][..slot.limbs as usize] {
        *l = 0;
    }
}

/// The `u64` fast-path value kernel. All operands and the destination are
/// single-limb; stored values are kept masked to their width.
#[inline(always)]
fn small_value(slots: &[Slot], i: &Instr, v: &[u64]) -> u64 {
    let s = |x: u32| slots[x as usize];
    let val = |x: u32| v[slots[x as usize].offset as usize];
    let d = s(i.dest);
    let dm = mask_of(d.width);
    match i.op {
        Op::Copy => val(i.a),
        Op::Not => !val(i.a) & dm,
        Op::Neg => val(i.a).wrapping_neg() & dm,
        Op::RedAnd => (val(i.a) == mask_of(s(i.a).width)) as u64,
        Op::RedOr => (val(i.a) != 0) as u64,
        Op::RedXor => (val(i.a).count_ones() & 1) as u64,
        Op::And => val(i.a) & val(i.b),
        Op::Or => val(i.a) | val(i.b),
        Op::Xor => val(i.a) ^ val(i.b),
        Op::Add => val(i.a).wrapping_add(val(i.b)) & dm,
        Op::Sub => val(i.a).wrapping_sub(val(i.b)) & dm,
        Op::Mul => val(i.a).wrapping_mul(val(i.b)) & dm,
        Op::Shl => {
            let sh = val(i.b);
            if sh >= d.width as u64 {
                0
            } else {
                (val(i.a) << sh) & dm
            }
        }
        Op::Lshr => {
            let sh = val(i.b);
            if sh >= d.width as u64 {
                0
            } else {
                val(i.a) >> sh
            }
        }
        Op::Ashr => {
            let aw = s(i.a).width;
            let x = val(i.a);
            let sh = val(i.b);
            let sign = (x >> (aw - 1)) & 1 == 1;
            if sh >= aw as u64 {
                if sign {
                    dm
                } else {
                    0
                }
            } else {
                let mut r = x >> sh;
                if sign && sh > 0 {
                    r |= dm & !(dm >> sh);
                }
                r
            }
        }
        Op::Eq => (val(i.a) == val(i.b)) as u64,
        Op::Ne => (val(i.a) != val(i.b)) as u64,
        Op::Ult => (val(i.a) < val(i.b)) as u64,
        Op::Ule => (val(i.a) <= val(i.b)) as u64,
        Op::Slt => {
            let w = s(i.a).width;
            (sign_extend(val(i.a), w) < sign_extend(val(i.b), w)) as u64
        }
        Op::Sle => {
            let w = s(i.a).width;
            (sign_extend(val(i.a), w) <= sign_extend(val(i.b), w)) as u64
        }
        Op::Mux => {
            if val(i.a) != 0 {
                val(i.b)
            } else {
                val(i.c)
            }
        }
        Op::Slice => (val(i.a) >> i.imm) & dm,
        Op::Concat => {
            let lw = s(i.b).width;
            ((val(i.a) << lw) & dm) | val(i.b)
        }
        Op::Zext => val(i.a) & dm,
        Op::Sext => {
            let aw = s(i.a).width;
            let x = val(i.a);
            if d.width <= aw {
                x & dm
            } else if (x >> (aw - 1)) & 1 == 1 {
                x | (dm & !mask_of(aw))
            } else {
                x
            }
        }
    }
}

/// The `u64` fast-path taint kernel under [`FlowPolicy::Precise`] — the
/// per-op rules of `taint.rs` as bit-twiddling over the masks. Reads the
/// *pre-instruction* operand values (SSA slots never alias), so it may run
/// before or after the value write.
#[inline(always)]
fn small_taint_precise(slots: &[Slot], i: &Instr, v: &[u64], t: &[u64]) -> u64 {
    let s = |x: u32| slots[x as usize];
    let val = |x: u32| v[slots[x as usize].offset as usize];
    let tnt = |x: u32| t[slots[x as usize].offset as usize];
    let d = s(i.dest);
    let dm = mask_of(d.width);
    match i.op {
        Op::Copy | Op::Not => tnt(i.a),
        Op::Neg => carry_smear(tnt(i.a), dm),
        Op::RedAnd => {
            let ta = tnt(i.a);
            if ta == 0 {
                0
            } else {
                // A definite (untainted) 0 bit forces the result to 0.
                let am = mask_of(s(i.a).width);
                ((!ta & !val(i.a) & am) == 0) as u64
            }
        }
        Op::RedOr => {
            let ta = tnt(i.a);
            if ta == 0 {
                0
            } else {
                // A definite 1 bit forces the result to 1.
                ((!ta & val(i.a)) == 0) as u64
            }
        }
        Op::RedXor => (tnt(i.a) != 0) as u64,
        Op::And => {
            let (ta, tb) = (tnt(i.a), tnt(i.b));
            (ta & tb) | (ta & val(i.b)) | (tb & val(i.a))
        }
        Op::Or => {
            let (ta, tb) = (tnt(i.a), tnt(i.b));
            (ta & tb) | (ta & !val(i.b) & dm) | (tb & !val(i.a) & dm)
        }
        Op::Xor => tnt(i.a) | tnt(i.b),
        Op::Add | Op::Sub => carry_smear(tnt(i.a) | tnt(i.b), dm),
        Op::Mul => {
            let (ta, tb) = (tnt(i.a), tnt(i.b));
            let untainted = ta == 0 && tb == 0;
            // Multiplication by a definite zero yields a definite zero.
            let definite_zero = (ta == 0 && val(i.a) == 0) || (tb == 0 && val(i.b) == 0);
            if untainted || definite_zero {
                0
            } else {
                carry_smear(ta | tb, dm)
            }
        }
        Op::Shl | Op::Lshr | Op::Ashr => {
            let (ta, tb) = (tnt(i.a), tnt(i.b));
            if tb != 0 {
                // Taint-steered shift amount: unless the shifted value is
                // a definite zero, the whole result is tainted.
                if ta == 0 && val(i.a) == 0 {
                    0
                } else {
                    dm
                }
            } else {
                let aw = s(i.a).width;
                let sh = val(i.b);
                match i.op {
                    Op::Shl => {
                        if sh >= aw as u64 {
                            0
                        } else {
                            (ta << sh) & dm
                        }
                    }
                    Op::Lshr => {
                        if sh >= aw as u64 {
                            0
                        } else {
                            ta >> sh
                        }
                    }
                    _ => {
                        // Ashr of the taint mask (sign = taint's top bit).
                        let tsign = (ta >> (aw - 1)) & 1 == 1;
                        if sh >= aw as u64 {
                            if tsign {
                                dm
                            } else {
                                0
                            }
                        } else {
                            let mut r = ta >> sh;
                            if tsign && sh > 0 {
                                r |= dm & !(dm >> sh);
                            }
                            r
                        }
                    }
                }
            }
        }
        Op::Eq | Op::Ne => {
            let (ta, tb) = (tnt(i.a), tnt(i.b));
            // An untainted differing bit position fixes the outcome.
            let determined = (!ta & !tb & (val(i.a) ^ val(i.b))) != 0;
            (!determined && (ta != 0 || tb != 0)) as u64
        }
        Op::Ult | Op::Ule | Op::Slt | Op::Sle => (tnt(i.a) != 0 || tnt(i.b) != 0) as u64,
        Op::Mux => {
            if tnt(i.a) == 0 {
                if val(i.a) != 0 {
                    tnt(i.b)
                } else {
                    tnt(i.c)
                }
            } else {
                // Tainted selector: a bit leaks iff the branches differ.
                tnt(i.b) | tnt(i.c) | (val(i.b) ^ val(i.c))
            }
        }
        Op::Slice => (tnt(i.a) >> i.imm) & dm,
        Op::Concat => {
            let lw = s(i.b).width;
            ((tnt(i.a) << lw) & dm) | tnt(i.b)
        }
        Op::Zext => tnt(i.a) & dm,
        Op::Sext => {
            // Replicated sign bits inherit the sign bit's taint.
            let aw = s(i.a).width;
            let ta = tnt(i.a);
            if d.width <= aw {
                ta & dm
            } else if (ta >> (aw - 1)) & 1 == 1 {
                ta | (dm & !mask_of(aw))
            } else {
                ta
            }
        }
    }
}

/// The `u64` fast-path taint kernel under [`FlowPolicy::Conservative`]:
/// any tainted operand of a logic/arith/mux op taints the whole result;
/// structural ops (copy, slice, concat, extensions) map taint
/// structurally, exactly like the interpreter.
#[inline(always)]
fn small_taint_conservative(slots: &[Slot], i: &Instr, t: &[u64]) -> u64 {
    let s = |x: u32| slots[x as usize];
    let tnt = |x: u32| t[slots[x as usize].offset as usize];
    let d = s(i.dest);
    let dm = mask_of(d.width);
    match i.op {
        Op::Copy => tnt(i.a),
        Op::Slice => (tnt(i.a) >> i.imm) & dm,
        Op::Concat => {
            let lw = s(i.b).width;
            ((tnt(i.a) << lw) & dm) | tnt(i.b)
        }
        Op::Zext => tnt(i.a) & dm,
        Op::Sext => {
            let aw = s(i.a).width;
            let ta = tnt(i.a);
            if d.width <= aw {
                ta & dm
            } else if (ta >> (aw - 1)) & 1 == 1 {
                ta | (dm & !mask_of(aw))
            } else {
                ta
            }
        }
        Op::Not | Op::Neg | Op::RedAnd | Op::RedOr | Op::RedXor => {
            if tnt(i.a) != 0 {
                dm
            } else {
                0
            }
        }
        Op::Mux => {
            if tnt(i.a) != 0 || tnt(i.b) != 0 || tnt(i.c) != 0 {
                dm
            } else {
                0
            }
        }
        _ => {
            // All binary operators.
            if tnt(i.a) != 0 || tnt(i.b) != 0 {
                dm
            } else {
                0
            }
        }
    }
}

fn as_unary(op: Op) -> Option<UnaryOp> {
    match op {
        Op::Not => Some(UnaryOp::Not),
        Op::Neg => Some(UnaryOp::Neg),
        Op::RedAnd => Some(UnaryOp::RedAnd),
        Op::RedOr => Some(UnaryOp::RedOr),
        Op::RedXor => Some(UnaryOp::RedXor),
        _ => None,
    }
}

fn as_binary(op: Op) -> Option<BinaryOp> {
    match op {
        Op::And => Some(BinaryOp::And),
        Op::Or => Some(BinaryOp::Or),
        Op::Xor => Some(BinaryOp::Xor),
        Op::Add => Some(BinaryOp::Add),
        Op::Sub => Some(BinaryOp::Sub),
        Op::Mul => Some(BinaryOp::Mul),
        Op::Shl => Some(BinaryOp::Shl),
        Op::Lshr => Some(BinaryOp::Lshr),
        Op::Ashr => Some(BinaryOp::Ashr),
        Op::Eq => Some(BinaryOp::Eq),
        Op::Ne => Some(BinaryOp::Ne),
        Op::Ult => Some(BinaryOp::Ult),
        Op::Ule => Some(BinaryOp::Ule),
        Op::Slt => Some(BinaryOp::Slt),
        Op::Sle => Some(BinaryOp::Sle),
        _ => None,
    }
}

/// Wide (multi-limb) value fallback: loads operands as [`BitVec`]s and
/// reuses the interpreter's exact operator semantics.
fn wide_value(slots: &[Slot], i: &Instr, values: &mut [u64]) {
    let d = slots[i.dest as usize];
    let r = {
        let load = |x: u32| load_bits(values, slots[x as usize]);
        if let Some(op) = as_binary(i.op) {
            fastpath_rtl::eval_binary(op, &load(i.a), &load(i.b))
        } else if let Some(op) = as_unary(i.op) {
            let a = load(i.a);
            match op {
                UnaryOp::Not => !&a,
                UnaryOp::Neg => a.wrapping_neg(),
                UnaryOp::RedAnd => a.reduce_and(),
                UnaryOp::RedOr => a.reduce_or(),
                UnaryOp::RedXor => a.reduce_xor(),
            }
        } else {
            match i.op {
                Op::Copy => load(i.a),
                Op::Mux => {
                    if load(i.a).is_true() {
                        load(i.b)
                    } else {
                        load(i.c)
                    }
                }
                Op::Slice => load(i.a).slice(i.imm + d.width - 1, i.imm),
                Op::Concat => load(i.a).concat(&load(i.b)),
                Op::Zext => load(i.a).zext(d.width),
                Op::Sext => load(i.a).sext(d.width),
                _ => unreachable!("covered by as_unary/as_binary"),
            }
        }
    };
    store_bits(values, d, &r);
}

/// Wide (multi-limb) labeled fallback: delegates to the shared taint
/// kernels of `taint.rs`, so the compiled engine and the interpreter
/// cannot drift apart on wide signals.
fn wide_labeled(
    slots: &[Slot],
    i: &Instr,
    values: &mut [u64],
    taints: &mut [u64],
    policy: FlowPolicy,
) {
    let d = slots[i.dest as usize];
    let out = {
        let lab = |x: u32| Labeled {
            value: load_bits(values, slots[x as usize]),
            taint: load_bits(taints, slots[x as usize]),
        };
        if let Some(op) = as_binary(i.op) {
            label_binary(policy, op, &lab(i.a), &lab(i.b))
        } else if let Some(op) = as_unary(i.op) {
            label_unary(policy, op, &lab(i.a))
        } else {
            match i.op {
                Op::Copy => lab(i.a),
                Op::Mux => label_mux(policy, &lab(i.a), &lab(i.b), &lab(i.c)),
                Op::Slice => {
                    let a = lab(i.a);
                    let hi = i.imm + d.width - 1;
                    Labeled {
                        value: a.value.slice(hi, i.imm),
                        taint: a.taint.slice(hi, i.imm),
                    }
                }
                Op::Concat => {
                    let (h, l) = (lab(i.a), lab(i.b));
                    Labeled {
                        value: h.value.concat(&l.value),
                        taint: h.taint.concat(&l.taint),
                    }
                }
                Op::Zext => {
                    let a = lab(i.a);
                    Labeled {
                        value: a.value.zext(d.width),
                        taint: a.taint.zext(d.width),
                    }
                }
                Op::Sext => {
                    let a = lab(i.a);
                    Labeled {
                        value: a.value.sext(d.width),
                        taint: a.taint.sext(d.width),
                    }
                }
                _ => unreachable!("covered by as_unary/as_binary"),
            }
        }
    };
    store_bits(values, d, &out.value);
    store_bits(taints, d, &out.taint);
}

fn run_values(tape: &SimTape, instrs: &[Instr], values: &mut [u64]) {
    for i in instrs {
        if i.small {
            let r = small_value(&tape.slots, i, values);
            values[tape.slots[i.dest as usize].offset as usize] = r;
        } else {
            wide_value(&tape.slots, i, values);
        }
    }
}

fn run_labeled(
    tape: &SimTape,
    instrs: &[Instr],
    values: &mut [u64],
    taints: &mut [u64],
    policy: FlowPolicy,
    declassified: &[bool],
) {
    for i in instrs {
        if i.small {
            let val = small_value(&tape.slots, i, values);
            let tnt = match policy {
                FlowPolicy::Precise => small_taint_precise(&tape.slots, i, values, taints),
                FlowPolicy::Conservative => small_taint_conservative(&tape.slots, i, taints),
            };
            let off = tape.slots[i.dest as usize].offset as usize;
            values[off] = val;
            taints[off] = tnt;
        } else {
            wide_labeled(&tape.slots, i, values, taints, policy);
        }
        // Declassification clears the taint of a signal slot as it is
        // committed, exactly like the interpreter (only signal slots are
        // ever marked, and only `Copy` commits target them).
        if declassified[i.dest as usize] {
            zero_slot(taints, tape.slots[i.dest as usize]);
        }
    }
}

/// Compiled functional simulator: the tape-backed counterpart of
/// [`Simulator`](crate::Simulator), with the identical two-phase cycle
/// contract (`settle` assumes current inputs; `clock` assumes `settle` ran
/// for them).
///
/// # Examples
///
/// ```
/// use fastpath_rtl::ModuleBuilder;
/// use fastpath_sim::CompiledSim;
///
/// # fn main() -> Result<(), fastpath_rtl::RtlError> {
/// let mut b = ModuleBuilder::new("ctr");
/// let count = b.reg("count", 8, 0);
/// let c = b.sig(count);
/// let one = b.lit(8, 1);
/// let next = b.add(c, one);
/// b.set_next(count, next)?;
/// let module = b.build()?;
/// let mut sim = CompiledSim::new(&module);
/// for _ in 0..5 {
///     sim.step();
/// }
/// assert_eq!(sim.value(count).to_u64(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledSim<'m> {
    module: &'m Module,
    tape: Arc<SimTape>,
    values: Vec<u64>,
    cycle: u64,
}

impl<'m> CompiledSim<'m> {
    /// Compiles `module` and creates an executor in the reset state.
    pub fn new(module: &'m Module) -> Self {
        Self::with_tape(module, Arc::new(SimTape::compile(module)))
    }

    /// Creates an executor over a precompiled tape (must have been
    /// compiled from this exact `module`).
    ///
    /// # Panics
    ///
    /// Panics if the tape's signal count disagrees with the module's.
    pub fn with_tape(module: &'m Module, tape: Arc<SimTape>) -> Self {
        assert_eq!(
            tape.signal_count,
            module.signal_count(),
            "tape was compiled from a different module"
        );
        let values = tape.init.clone();
        CompiledSim {
            module,
            tape,
            values,
            cycle: 0,
        }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The shared tape driving this executor.
    pub fn tape(&self) -> &Arc<SimTape> {
        &self.tape
    }

    /// Completed clock cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns to the reset state.
    pub fn reset(&mut self) {
        self.values.copy_from_slice(&self.tape.init);
        self.cycle = 0;
    }

    /// Drives a primary input for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input or the width does not match.
    pub fn set_input(&mut self, id: SignalId, value: BitVec) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        assert_eq!(
            signal.width,
            value.width(),
            "width mismatch driving `{}`",
            signal.name
        );
        store_bits(&mut self.values, self.tape.slot_of(id), &value);
    }

    /// Forces a register to a value, overriding its current state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a register or the width does not match.
    pub fn set_register(&mut self, id: SignalId, value: BitVec) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Register,
            "`{}` is not a register",
            signal.name
        );
        assert_eq!(
            signal.width,
            value.width(),
            "width mismatch driving `{}`",
            signal.name
        );
        store_bits(&mut self.values, self.tape.slot_of(id), &value);
    }

    /// Drives an input from a `u64` (truncated to width) without any
    /// allocation.
    pub fn set_input_u64(&mut self, id: SignalId, value: u64) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        let slot = self.tape.slot_of(id);
        zero_slot(&mut self.values, slot);
        self.values[slot.offset as usize] = value & mask_of(slot.width);
    }

    /// The current value of any signal (after the last settle/step).
    pub fn value(&self, id: SignalId) -> BitVec {
        load_bits(&self.values, self.tape.slot_of(id))
    }

    /// The low 64 bits of a signal's current value, allocation-free.
    pub fn value_u64(&self, id: SignalId) -> u64 {
        self.values[self.tape.slot_of(id).offset as usize]
    }

    /// Recomputes all combinational signals from the current inputs and
    /// register values.
    pub fn settle(&mut self) {
        let tape = Arc::clone(&self.tape);
        run_values(&tape, &tape.settle, &mut self.values);
    }

    /// Commits all registers to their next-state values (a clock edge).
    /// Assumes [`settle`](Self::settle) ran for the current input values.
    pub fn clock(&mut self) {
        let tape = Arc::clone(&self.tape);
        run_values(&tape, &tape.clock, &mut self.values);
        self.cycle += 1;
    }

    /// Settles combinational logic, then clocks the registers.
    pub fn step(&mut self) {
        self.settle();
        self.clock();
    }
}

/// Compiled IFT simulator: the tape-backed counterpart of
/// [`TaintSimulator`](crate::TaintSimulator), tracking a per-bit taint
/// mask alongside every value over the same instruction tape.
#[derive(Debug)]
pub struct CompiledTaintSim<'m> {
    module: &'m Module,
    tape: Arc<SimTape>,
    values: Vec<u64>,
    taints: Vec<u64>,
    policy: FlowPolicy,
    /// Per-slot declassification flags (only signal slots are ever set).
    declassified: Vec<bool>,
    /// Declassified signals, for the settle-start input clearing.
    declassified_ids: Vec<SignalId>,
    cycle: u64,
}

impl<'m> CompiledTaintSim<'m> {
    /// Compiles `module` and creates an executor with no taint anywhere.
    pub fn new(module: &'m Module, policy: FlowPolicy) -> Self {
        Self::with_tape(module, Arc::new(SimTape::compile(module)), policy)
    }

    /// Creates an executor over a precompiled tape (must have been
    /// compiled from this exact `module`).
    ///
    /// # Panics
    ///
    /// Panics if the tape's signal count disagrees with the module's.
    pub fn with_tape(module: &'m Module, tape: Arc<SimTape>, policy: FlowPolicy) -> Self {
        assert_eq!(
            tape.signal_count,
            module.signal_count(),
            "tape was compiled from a different module"
        );
        let values = tape.init.clone();
        let taints = vec![0u64; tape.init.len()];
        let declassified = vec![false; tape.slots.len()];
        CompiledTaintSim {
            module,
            tape,
            values,
            taints,
            policy,
            declassified,
            declassified_ids: Vec::new(),
            cycle: 0,
        }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The active flow policy.
    pub fn policy(&self) -> FlowPolicy {
        self.policy
    }

    /// Completed clock cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns to the reset state with no taint anywhere (declassification
    /// marks are kept).
    pub fn reset(&mut self) {
        self.values.copy_from_slice(&self.tape.init);
        self.taints.iter_mut().for_each(|t| *t = 0);
        self.cycle = 0;
    }

    /// Marks a signal as declassified: its taint is cleared after every
    /// settle and clock.
    pub fn declassify(&mut self, id: SignalId) {
        self.declassified[self.tape.signal_slot[id.index()] as usize] = true;
        if !self.declassified_ids.contains(&id) {
            self.declassified_ids.push(id);
        }
    }

    /// Drives an input with an explicit taint mask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input or widths mismatch.
    pub fn set_input_labeled(&mut self, id: SignalId, labeled: Labeled) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        assert_eq!(signal.width, labeled.value.width(), "value width");
        assert_eq!(signal.width, labeled.taint.width(), "taint width");
        let slot = self.tape.slot_of(id);
        store_bits(&mut self.values, slot, &labeled.value);
        store_bits(&mut self.taints, slot, &labeled.taint);
    }

    /// Drives an input; `tainted` taints all bits (HIGH) or none (LOW).
    pub fn set_input(&mut self, id: SignalId, value: BitVec, tainted: bool) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        assert_eq!(signal.width, value.width(), "value width");
        let slot = self.tape.slot_of(id);
        store_bits(&mut self.values, slot, &value);
        let region = &mut self.taints[slot.offset as usize..][..slot.limbs as usize];
        if tainted {
            let (last, rest) = region.split_last_mut().expect("width > 0");
            for l in rest {
                *l = u64::MAX;
            }
            let rem = slot.width % 64;
            *last = if rem == 0 {
                u64::MAX
            } else {
                (1u64 << rem) - 1
            };
        } else {
            for l in region {
                *l = 0;
            }
        }
    }

    /// Drives an input from a `u64` (truncated to width) without any
    /// allocation.
    pub fn set_input_u64(&mut self, id: SignalId, value: u64, tainted: bool) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        let slot = self.tape.slot_of(id);
        zero_slot(&mut self.values, slot);
        self.values[slot.offset as usize] = value & mask_of(slot.width);
        zero_slot(&mut self.taints, slot);
        if tainted {
            let region = &mut self.taints[slot.offset as usize..][..slot.limbs as usize];
            let (last, rest) = region.split_last_mut().expect("width > 0");
            for l in rest {
                *l = u64::MAX;
            }
            let rem = slot.width % 64;
            *last = if rem == 0 {
                u64::MAX
            } else {
                (1u64 << rem) - 1
            };
        }
    }

    /// The functional value of a signal.
    pub fn value(&self, id: SignalId) -> BitVec {
        load_bits(&self.values, self.tape.slot_of(id))
    }

    /// The taint mask of a signal.
    pub fn taint(&self, id: SignalId) -> BitVec {
        load_bits(&self.taints, self.tape.slot_of(id))
    }

    /// `true` iff any bit of the signal is tainted (allocation-free).
    pub fn is_tainted(&self, id: SignalId) -> bool {
        let slot = self.tape.slot_of(id);
        self.taints[slot.offset as usize..][..slot.limbs as usize]
            .iter()
            .any(|&l| l != 0)
    }

    /// All currently tainted signals.
    pub fn tainted_signals(&self) -> Vec<SignalId> {
        self.module
            .signals()
            .filter(|(id, _)| self.is_tainted(*id))
            .map(|(id, _)| id)
            .collect()
    }

    /// Settles combinational logic, propagating taint. Declassified
    /// signals have their taint cleared as they are committed.
    pub fn settle(&mut self) {
        let tape = Arc::clone(&self.tape);
        // Declassified inputs are cleared up front.
        for &id in &self.declassified_ids {
            if self.module.signal(id).kind == SignalKind::Input {
                let slot = tape.slot_of(id);
                for l in &mut self.taints[slot.offset as usize..][..slot.limbs as usize] {
                    *l = 0;
                }
            }
        }
        run_labeled(
            &tape,
            &tape.settle,
            &mut self.values,
            &mut self.taints,
            self.policy,
            &self.declassified,
        );
    }

    /// Clocks the registers, committing value and taint. Assumes
    /// [`settle`](Self::settle) ran for the current input values.
    pub fn clock(&mut self) {
        let tape = Arc::clone(&self.tape);
        run_labeled(
            &tape,
            &tape.clock,
            &mut self.values,
            &mut self.taints,
            self.policy,
            &self.declassified,
        );
        self.cycle += 1;
    }

    /// Settle + clock.
    pub fn step(&mut self) {
        self.settle();
        self.clock();
    }
}

impl TaintEngine for CompiledTaintSim<'_> {
    fn drive_input(&mut self, id: SignalId, value: BitVec, tainted: bool) {
        self.set_input(id, value, tainted);
    }

    fn settle(&mut self) {
        CompiledTaintSim::settle(self);
    }

    fn clock(&mut self) {
        CompiledTaintSim::clock(self);
    }

    fn declassify(&mut self, id: SignalId) {
        CompiledTaintSim::declassify(self, id);
    }

    fn is_tainted(&self, id: SignalId) -> bool {
        CompiledTaintSim::is_tainted(self, id)
    }

    fn value_bits(&self, id: SignalId) -> BitVec {
        self.value(id)
    }

    fn taint_bits(&self, id: SignalId) -> BitVec {
        self.taint(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, TaintSimulator};
    use fastpath_rtl::ModuleBuilder;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let count = b.reg("count", 8, 0);
        let count_sig = b.sig(count);
        let one = b.lit(8, 1);
        let inc = b.add(count_sig, one);
        let en_sig = b.sig(en);
        b.set_next_if(count, en_sig, inc).expect("drive");
        let wrapped = b.eq_lit(count_sig, 0xFF);
        b.output("wrapped", wrapped);
        b.build().expect("valid")
    }

    #[test]
    fn compiled_counter_matches_interpreter() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let count = m.signal_by_name("count").expect("count");
        let mut interp = Simulator::new(&m);
        let mut comp = CompiledSim::new(&m);
        for cycle in 0..300u64 {
            let v = (cycle % 3 != 0) as u64;
            interp.set_input_u64(en, v);
            comp.set_input_u64(en, v);
            interp.step();
            comp.step();
            for (id, _) in m.signals() {
                assert_eq!(
                    interp.value(id),
                    &comp.value(id),
                    "cycle {cycle}, signal {}",
                    m.signal(id).name
                );
            }
        }
        assert_eq!(comp.value(count).to_u64(), 200);
        comp.reset();
        assert_eq!(comp.cycle(), 0);
        assert!(comp.value(count).is_zero());
    }

    #[test]
    fn register_to_register_move_is_staged() {
        // r2 <- r1 <- input: without staging, committing r1 before r2
        // would make r2 skip a cycle.
        let mut b = ModuleBuilder::new("shift2");
        let d = b.input("d", 4);
        let ds = b.sig(d);
        let r1 = b.reg("r1", 4, 0);
        let r2 = b.reg("r2", 4, 0);
        let r1s = b.sig(r1);
        b.set_next(r1, ds).expect("drive");
        b.set_next(r2, r1s).expect("drive");
        let m = b.build().expect("valid");
        let mut interp = Simulator::new(&m);
        let mut comp = CompiledSim::new(&m);
        for cycle in 0..10u64 {
            interp.set_input_u64(d, cycle);
            comp.set_input_u64(d, cycle);
            interp.step();
            comp.step();
            assert_eq!(interp.value(r1), &comp.value(r1), "r1 @{cycle}");
            assert_eq!(interp.value(r2), &comp.value(r2), "r2 @{cycle}");
        }
        assert_eq!(comp.value(r2).to_u64(), 8);
    }

    #[test]
    fn compiled_taint_and_masking_rules_match() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let a_sig = b.sig(a);
        let c_sig = b.sig(c);
        let anded = b.and(a_sig, c_sig);
        let out = b.output("out", anded);
        let m = b.build().expect("valid");
        let mut sim = CompiledTaintSim::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(a, 0xFF, true);
        sim.set_input_u64(c, 0x00, false);
        sim.settle();
        assert!(!sim.is_tainted(out));
        sim.set_input_u64(c, 0x0F, false);
        sim.settle();
        assert_eq!(sim.taint(out).to_u64(), 0x0F);
        let mut cons = CompiledTaintSim::new(&m, FlowPolicy::Conservative);
        cons.set_input_u64(a, 0xFF, true);
        cons.set_input_u64(c, 0x00, false);
        cons.settle();
        assert!(cons.is_tainted(out));
    }

    #[test]
    fn compiled_declassification_matches_interpreter() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 4);
        let d_sig = b.sig(d);
        let w = b.wire("w", d_sig);
        let w_sig = b.sig(w);
        let out = b.output("out", w_sig);
        let m = b.build().expect("valid");
        let mut interp = TaintSimulator::new(&m, FlowPolicy::Precise);
        let mut comp = CompiledTaintSim::new(&m, FlowPolicy::Precise);
        interp.declassify(w);
        comp.declassify(w);
        interp.set_input(d, BitVec::from_u64(4, 3), true);
        comp.set_input_u64(d, 3, true);
        interp.settle();
        comp.settle();
        for id in [d, w, out] {
            assert_eq!(interp.taint(id), &comp.taint(id));
        }
        assert!(!comp.is_tainted(w));
        assert!(!comp.is_tainted(out));
    }

    #[test]
    fn sim_engine_parses_and_displays() {
        assert_eq!("interp".parse::<SimEngine>(), Ok(SimEngine::Interp));
        assert_eq!("compiled".parse::<SimEngine>(), Ok(SimEngine::Compiled));
        assert!("jit".parse::<SimEngine>().is_err());
        assert_eq!(SimEngine::Interp.to_string(), "interp");
        assert_eq!(SimEngine::default(), SimEngine::Compiled);
        assert_eq!(SimEngine::Compiled.to_string(), "compiled");
    }

    #[test]
    fn small_helpers_behave_at_the_64_bit_boundary() {
        assert_eq!(mask_of(64), u64::MAX);
        assert_eq!(mask_of(1), 1);
        assert_eq!(mask_of(63), u64::MAX >> 1);
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(carry_smear(0, u64::MAX), 0);
        assert_eq!(carry_smear(0b100, 0xFF), 0xFC);
        assert_eq!(carry_smear(1 << 63, u64::MAX), 1 << 63);
    }
}
