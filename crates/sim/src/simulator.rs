//! Cycle-accurate functional simulation of a [`Module`].
//!
//! The simulator holds one value per signal. A cycle proceeds as:
//!
//! 1. the caller drives the primary inputs ([`Simulator::set_input`]);
//! 2. combinational wires and outputs settle in topological order
//!    ([`Simulator::settle`]);
//! 3. the clock edge commits every register's next-state expression
//!    ([`Simulator::clock`]).
//!
//! [`Simulator::step`] performs 2 + 3 in one call.

use fastpath_rtl::{BitVec, Module, SignalId, SignalKind};

/// A cycle-based two-valued simulator.
///
/// # Examples
///
/// ```
/// use fastpath_rtl::{BitVec, ModuleBuilder};
/// use fastpath_sim::Simulator;
///
/// # fn main() -> Result<(), fastpath_rtl::RtlError> {
/// let mut b = ModuleBuilder::new("ctr");
/// let count = b.reg("count", 8, 0);
/// let count_sig = b.sig(count);
/// let one = b.lit(8, 1);
/// let next = b.add(count_sig, one);
/// b.set_next(count, next)?;
/// let module = b.build()?;
/// let mut sim = Simulator::new(&module);
/// for _ in 0..5 {
///     sim.step();
/// }
/// assert_eq!(sim.value(count).to_u64(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    values: Vec<BitVec>,
    memo: Vec<Option<BitVec>>,
    cycle: u64,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator in the reset state: registers hold their reset
    /// values, inputs and combinational signals are zero (inputs must be
    /// driven before the first [`step`](Self::step)).
    pub fn new(module: &'m Module) -> Self {
        let values = module
            .signals()
            .map(|(_, s)| match (&s.init, s.kind) {
                (Some(init), SignalKind::Register) => init.clone(),
                _ => BitVec::zero(s.width),
            })
            .collect();
        Simulator {
            module,
            values,
            memo: vec![None; module.expr_count()],
            cycle: 0,
        }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The number of completed clock cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns to the reset state.
    pub fn reset(&mut self) {
        for (id, s) in self.module.signals() {
            self.values[id.index()] = match (&s.init, s.kind) {
                (Some(init), SignalKind::Register) => init.clone(),
                _ => BitVec::zero(s.width),
            };
        }
        self.cycle = 0;
    }

    /// Drives a primary input for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input or the width does not match.
    pub fn set_input(&mut self, id: SignalId, value: BitVec) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        assert_eq!(
            signal.width,
            value.width(),
            "width mismatch driving `{}`",
            signal.name
        );
        self.values[id.index()] = value;
    }

    /// Forces a register to a value, overriding its current state.
    ///
    /// Concrete counterexample replay starts from the arbitrary (not
    /// necessarily reset-reachable) state the inductive witness assigns,
    /// so the state must be writable directly.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a register or the width does not match.
    pub fn set_register(&mut self, id: SignalId, value: BitVec) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Register,
            "`{}` is not a register",
            signal.name
        );
        assert_eq!(
            signal.width,
            value.width(),
            "width mismatch driving `{}`",
            signal.name
        );
        self.values[id.index()] = value;
    }

    /// Convenience: drives an input with a `u64` (truncated to width).
    pub fn set_input_u64(&mut self, id: SignalId, value: u64) {
        let width = self.module.signal(id).width;
        self.set_input(id, BitVec::from_u64(width, value));
    }

    /// The current value of any signal (after the last settle/step).
    pub fn value(&self, id: SignalId) -> &BitVec {
        &self.values[id.index()]
    }

    /// Recomputes all combinational signals from the current inputs and
    /// register values.
    pub fn settle(&mut self) {
        self.memo.iter_mut().for_each(|m| *m = None);
        for i in 0..self.module.comb_order().len() {
            let sig = self.module.comb_order()[i];
            let driver = self.module.driver(sig).expect("comb signal driven");
            let value = self.module.eval_memo(driver, &self.values, &mut self.memo);
            self.values[sig.index()] = value;
        }
    }

    /// Commits all registers to their next-state values (a clock edge).
    /// Assumes [`settle`](Self::settle) ran for the current input values.
    pub fn clock(&mut self) {
        self.memo.iter_mut().for_each(|m| *m = None);
        let nexts: Vec<(SignalId, BitVec)> = self
            .module
            .state_signals()
            .into_iter()
            .map(|reg| {
                let driver = self.module.driver(reg).expect("reg driven");
                let v = self.module.eval_memo(driver, &self.values, &mut self.memo);
                (reg, v)
            })
            .collect();
        for (reg, v) in nexts {
            self.values[reg.index()] = v;
        }
        self.cycle += 1;
    }

    /// Settles combinational logic, then clocks the registers.
    pub fn step(&mut self) {
        self.settle();
        self.clock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let count = b.reg("count", 8, 0);
        let count_sig = b.sig(count);
        let one = b.lit(8, 1);
        let inc = b.add(count_sig, one);
        let en_sig = b.sig(en);
        b.set_next_if(count, en_sig, inc).expect("drive");
        let wrapped = b.eq_lit(count_sig, 0xFF);
        b.output("wrapped", wrapped);
        b.build().expect("valid")
    }

    use fastpath_rtl::Module;

    #[test]
    fn counter_counts_when_enabled() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let count = m.signal_by_name("count").expect("count");
        let mut sim = Simulator::new(&m);
        sim.set_input_u64(en, 1);
        for _ in 0..10 {
            sim.step();
        }
        assert_eq!(sim.value(count).to_u64(), 10);
        sim.set_input_u64(en, 0);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.value(count).to_u64(), 10);
    }

    #[test]
    fn outputs_settle_before_clock() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let wrapped = m.signal_by_name("wrapped").expect("wrapped");
        let mut sim = Simulator::new(&m);
        sim.set_input_u64(en, 1);
        for _ in 0..255 {
            sim.step();
        }
        sim.settle();
        assert!(sim.value(wrapped).is_true());
        sim.step();
        sim.settle();
        assert!(!sim.value(wrapped).is_true());
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let count = m.signal_by_name("count").expect("count");
        let mut sim = Simulator::new(&m);
        sim.set_input_u64(en, 1);
        sim.step();
        sim.step();
        assert_eq!(sim.cycle(), 2);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert!(sim.value(count).is_zero());
    }

    #[test]
    #[should_panic(expected = "is not an input")]
    fn driving_a_register_panics() {
        let m = counter_with_enable();
        let count = m.signal_by_name("count").expect("count");
        let mut sim = Simulator::new(&m);
        sim.set_input(count, BitVec::from_u64(8, 1));
    }

    #[test]
    fn set_register_overrides_state() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let count = m.signal_by_name("count").expect("count");
        let mut sim = Simulator::new(&m);
        sim.set_register(count, BitVec::from_u64(8, 42));
        sim.set_input_u64(en, 1);
        sim.step();
        assert_eq!(sim.value(count).to_u64(), 43);
    }

    #[test]
    #[should_panic(expected = "is not a register")]
    fn set_register_rejects_inputs() {
        let m = counter_with_enable();
        let en = m.signal_by_name("en").expect("en");
        let mut sim = Simulator::new(&m);
        sim.set_register(en, BitVec::from_u64(1, 1));
    }
}
