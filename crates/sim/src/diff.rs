//! Cross-engine differential checking.
//!
//! The compiled simulation engine ([`SimTape`] + [`CompiledSim`] /
//! [`CompiledTaintSim`]) must implement the exact same RTL and taint
//! semantics as the interpretive [`Simulator`] / [`TaintSimulator`]
//! oracle. The checkers here drive both backends with identical random
//! stimuli and compare every signal's value *and* taint mask bit for bit,
//! each cycle — they are shared between the proptest suite
//! (`tests/sim_engine_equivalence.rs`) and the `fastpath-fuzz`
//! differential oracle.
//!
//! Each checker returns `Err(description)` on the first divergence, so
//! callers can attach the failure to whatever reporting they use.

use crate::ift::IftSimulation;
use crate::simulator::Simulator;
use crate::taint::{FlowPolicy, TaintSimulator};
use crate::tape::{CompiledSim, CompiledTaintSim, SimEngine, SimTape};
use crate::testbench::RandomTestbench;
use fastpath_rtl::{BitVec, Module, SignalId, SignalKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn inputs_of(module: &Module) -> Vec<(SignalId, u32)> {
    module
        .signals()
        .filter(|(_, s)| s.kind == SignalKind::Input)
        .map(|(id, s)| (id, s.width))
        .collect()
}

fn random_value(rng: &mut StdRng, width: u32) -> BitVec {
    let limbs: Vec<u64> = (0..(width as usize).div_ceil(64))
        .map(|_| rng.gen())
        .collect();
    BitVec::from_limbs(width, &limbs)
}

/// Runs the plain interpreter and the compiled tape side by side for
/// `cycles` cycles of random stimuli; every signal's value must agree on
/// every cycle.
///
/// # Errors
///
/// Returns a description of the first diverging signal.
pub fn check_values(module: &Module, seed: u64, cycles: u64) -> Result<(), String> {
    let mut interp = Simulator::new(module);
    let mut comp = CompiledSim::new(module);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5117_AB1E);
    let inputs = inputs_of(module);
    for cycle in 0..cycles {
        for &(id, w) in &inputs {
            let v = random_value(&mut rng, w);
            interp.set_input(id, v.clone());
            comp.set_input(id, v);
        }
        interp.settle();
        comp.settle();
        for (id, s) in module.signals() {
            if interp.value(id) != &comp.value(id) {
                return Err(format!(
                    "{}: value of `{}` differs at cycle {} \
                     (interp {:?}, compiled {:?})",
                    module.name(),
                    s.name,
                    cycle,
                    interp.value(id),
                    comp.value(id)
                ));
            }
        }
        interp.clock();
        comp.clock();
    }
    Ok(())
}

/// Runs the taint interpreter and the compiled taint tape side by side
/// under the given policy, toggling every input's taint randomly per
/// cycle; values and taint masks must agree on every signal, every cycle.
///
/// # Errors
///
/// Returns a description of the first diverging signal.
pub fn check_taint(
    module: &Module,
    seed: u64,
    cycles: u64,
    policy: FlowPolicy,
    declassify: &[SignalId],
) -> Result<(), String> {
    let tape = Arc::new(SimTape::compile(module));
    let mut interp = TaintSimulator::new(module, policy);
    let mut comp = CompiledTaintSim::with_tape(module, Arc::clone(&tape), policy);
    for &d in declassify {
        interp.declassify(d);
        comp.declassify(d);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A17_7A17);
    let inputs = inputs_of(module);
    for cycle in 0..cycles {
        for &(id, w) in &inputs {
            let v = random_value(&mut rng, w);
            let tainted = rng.gen_bool(0.5);
            interp.set_input(id, v.clone(), tainted);
            comp.set_input(id, v, tainted);
        }
        interp.settle();
        comp.settle();
        for (id, s) in module.signals() {
            if interp.value(id) != &comp.value(id) {
                return Err(format!(
                    "{}: value of `{}` differs at cycle {} ({:?})",
                    module.name(),
                    s.name,
                    cycle,
                    policy
                ));
            }
            if interp.taint(id) != &comp.taint(id) {
                return Err(format!(
                    "{}: taint of `{}` differs at cycle {} ({:?})",
                    module.name(),
                    s.name,
                    cycle,
                    policy
                ));
            }
        }
        interp.clock();
        comp.clock();
    }
    Ok(())
}

/// Runs one [`IftSimulation`] through both engines with the same
/// testbench seed; the reports must be identical field by field.
///
/// # Errors
///
/// Returns a description of the first report field that differs.
pub fn check_ift_report(
    module: &Module,
    seed: u64,
    cycles: u64,
    policy: FlowPolicy,
    declassify: &[SignalId],
) -> Result<(), String> {
    let sim = IftSimulation::new(cycles)
        .with_policy(policy)
        .with_declassified(declassify);
    let mut tb = RandomTestbench::new(module, seed);
    let interp = sim.run_with_engine(module, &mut tb, SimEngine::Interp);
    let mut tb = RandomTestbench::new(module, seed);
    let comp = sim.run_with_engine(module, &mut tb, SimEngine::Compiled);
    let name = module.name();
    if interp.violations != comp.violations {
        return Err(format!("{name}: IFT violations differ ({policy:?})"));
    }
    if interp.tainted_state != comp.tainted_state {
        return Err(format!("{name}: tainted state differs ({policy:?})"));
    }
    if interp.untainted_state != comp.untainted_state {
        return Err(format!("{name}: untainted state differs ({policy:?})"));
    }
    if interp.first_taint_cycle != comp.first_taint_cycle {
        return Err(format!("{name}: first-taint cycles differ ({policy:?})"));
    }
    Ok(())
}

/// The full cross-engine equivalence battery: values, taint under both
/// policies (with the given declassification set), and the IFT reports.
///
/// # Errors
///
/// Returns the first divergence found by any sub-check.
pub fn check_engine_equivalence(
    module: &Module,
    seed: u64,
    cycles: u64,
    declassify: &[SignalId],
) -> Result<(), String> {
    check_values(module, seed, cycles)?;
    for policy in [FlowPolicy::Precise, FlowPolicy::Conservative] {
        check_taint(module, seed, cycles, policy, declassify)?;
        check_ift_report(module, seed, cycles, policy, declassify)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::random::{random_module, RandomModuleConfig};

    #[test]
    fn random_netlists_pass_the_battery() {
        for seed in 0..8 {
            let m = random_module(seed, RandomModuleConfig::default());
            check_engine_equivalence(&m, seed, 50, &[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn extended_generator_output_passes_the_battery() {
        let config = RandomModuleConfig {
            wide_signals: true,
            memories: true,
            ..RandomModuleConfig::default()
        };
        for seed in 0..8 {
            let m = random_module(seed, config);
            check_engine_equivalence(&m, seed, 50, &[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
