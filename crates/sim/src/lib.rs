//! # fastpath-sim
//!
//! Cycle-accurate simulation and Information Flow Tracking (IFT) for the
//! FastPath hybrid verification flow (paper Sec. III-B / IV-B).
//!
//! The crate offers two simulators over `fastpath-rtl` modules:
//!
//! - [`Simulator`]: plain two-valued functional simulation;
//! - [`TaintSimulator`]: IFT-enhanced simulation where every signal carries
//!   a per-bit taint label, under a [`FlowPolicy`] (precise cell-level rules
//!   or a conservative any-taint-propagates rule).
//!
//! Both have **compiled** counterparts — [`CompiledSim`] and
//! [`CompiledTaintSim`] — that execute a levelized instruction tape
//! ([`SimTape`]) over a flat `u64` arena instead of walking the
//! expression tree, with an allocation-free fast path for signals at most
//! 64 bits wide. The interpretive simulators are the reference oracle;
//! [`SimEngine`] selects the backend at flow level.
//!
//! On top of these, [`IftSimulation`] runs the FastPath IFT step: taint all
//! data inputs `X_D`, simulate a [`Testbench`], check `X_D =/=> Y_C`, and
//! extract the untainted state set `Z'` that seeds the UPEC-DIT induction.
//!
//! # Examples
//!
//! ```
//! use fastpath_rtl::ModuleBuilder;
//! use fastpath_sim::{IftSimulation, RandomTestbench};
//!
//! # fn main() -> Result<(), fastpath_rtl::RtlError> {
//! // A design whose handshake is independent of the data it processes.
//! let mut b = ModuleBuilder::new("demo");
//! let data = b.data_input("data", 16);
//! let acc = b.reg("acc", 16, 0);
//! let d = b.sig(data);
//! let a = b.sig(acc);
//! let sum = b.add(a, d);
//! b.set_next(acc, sum)?;
//! b.data_output("result", a);
//! let tick = b.reg("tick", 1, 0);
//! let t = b.sig(tick);
//! let nt = b.not(t);
//! b.set_next(tick, nt)?;
//! b.control_output("phase", t);
//! let module = b.build()?;
//!
//! let mut tb = RandomTestbench::new(&module, 42);
//! let report = IftSimulation::new(100).run(&module, &mut tb);
//! assert!(report.property_holds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod compile;
pub mod diff;
mod ift;
mod simulator;
mod taint;
mod tape;
mod testbench;
mod vcd;

pub use ift::{check_no_flow, observation_targets, IftReport, IftSimulation, IftViolation};
pub use simulator::Simulator;
pub use taint::{FlowPolicy, Labeled, TaintEngine, TaintSimulator};
pub use tape::{CompiledSim, CompiledTaintSim, SimEngine, SimTape};
pub use testbench::{RandomTestbench, Testbench};
pub use vcd::VcdRecorder;
