//! IFT-enhanced simulation: taint-label propagation alongside values.
//!
//! Every signal carries, in addition to its functional value, a *taint mask*
//! of the same width: bit `i` of the mask is set iff bit `i` of the value
//! may have been influenced by a tainted source (label HIGH in the paper's
//! terminology, Sec. III-B). Two propagation policies are provided:
//!
//! - [`FlowPolicy::Precise`] uses per-operator rules that account for
//!   controlling values (an untainted 0 into an AND kills taint, a mux with
//!   an untainted selector only propagates the chosen branch, equal mux
//!   branches mask a tainted selector, …).
//! - [`FlowPolicy::Conservative`] taints the whole result whenever any input
//!   bit is tainted. This reproduces the "overly conservative flow policy"
//!   false positive the paper reports for the hardened CVA6 divider.
//!
//! Both policies **over-approximate** true information flow, so an
//! untainted signal at the end of simulation genuinely received no
//! influence from the sources *for the stimuli exercised*.

use fastpath_rtl::{BinaryOp, BitVec, Expr, ExprId, Module, SignalId, SignalKind, UnaryOp};
use std::collections::HashSet;

/// The common interface of the interpretive [`TaintSimulator`] and the
/// compiled [`CompiledTaintSim`](crate::CompiledTaintSim): everything the
/// IFT step ([`IftSimulation`](crate::IftSimulation)) and the VCD recorder
/// need to drive a design and observe taint.
pub trait TaintEngine {
    /// Drives an input; `tainted` taints all bits (HIGH) or none (LOW).
    fn drive_input(&mut self, id: SignalId, value: BitVec, tainted: bool);
    /// Settles combinational logic, propagating taint.
    fn settle(&mut self);
    /// Clocks the registers, committing value and taint.
    fn clock(&mut self);
    /// Marks a signal as declassified (taint cleared as computed).
    fn declassify(&mut self, id: SignalId);
    /// `true` iff any bit of the signal is currently tainted.
    fn is_tainted(&self, id: SignalId) -> bool;
    /// An owned copy of the signal's current value.
    fn value_bits(&self, id: SignalId) -> BitVec;
    /// An owned copy of the signal's current taint mask.
    fn taint_bits(&self, id: SignalId) -> BitVec;
}

/// Taint propagation policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FlowPolicy {
    /// Cell-level precise rules (default).
    #[default]
    Precise,
    /// Any tainted input bit taints the entire output.
    Conservative,
}

/// A value/taint pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Labeled {
    /// Functional value.
    pub value: BitVec,
    /// Taint mask (same width; set bit = HIGH label).
    pub taint: BitVec,
}

impl Labeled {
    /// An untainted value.
    pub fn clean(value: BitVec) -> Self {
        let taint = BitVec::zero(value.width());
        Labeled { value, taint }
    }

    /// A fully tainted value.
    pub fn tainted(value: BitVec) -> Self {
        let taint = BitVec::ones(value.width());
        Labeled { value, taint }
    }

    /// `true` iff any bit is tainted.
    pub fn is_tainted(&self) -> bool {
        !self.taint.is_zero()
    }
}

/// IFT-enhanced simulator: like
/// [`Simulator`](crate::Simulator) but tracking a taint label per bit.
#[derive(Debug)]
pub struct TaintSimulator<'m> {
    module: &'m Module,
    values: Vec<BitVec>,
    taints: Vec<BitVec>,
    memo: Vec<Option<Labeled>>,
    policy: FlowPolicy,
    declassified: HashSet<SignalId>,
    cycle: u64,
}

impl<'m> TaintSimulator<'m> {
    /// Creates an IFT simulator in the reset state with no taint anywhere.
    pub fn new(module: &'m Module, policy: FlowPolicy) -> Self {
        let values: Vec<BitVec> = module
            .signals()
            .map(|(_, s)| match (&s.init, s.kind) {
                (Some(init), SignalKind::Register) => init.clone(),
                _ => BitVec::zero(s.width),
            })
            .collect();
        let taints = module
            .signals()
            .map(|(_, s)| BitVec::zero(s.width))
            .collect();
        TaintSimulator {
            module,
            values,
            taints,
            memo: vec![None; module.expr_count()],
            policy,
            declassified: HashSet::new(),
            cycle: 0,
        }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The active flow policy.
    pub fn policy(&self) -> FlowPolicy {
        self.policy
    }

    /// Completed clock cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Marks a signal as declassified: its taint is cleared after every
    /// settle and clock. This models a *flow policy* restriction (e.g.
    /// "flows into the data result are intended").
    pub fn declassify(&mut self, id: SignalId) {
        self.declassified.insert(id);
    }

    /// Drives an input with an explicit taint mask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input or widths mismatch.
    pub fn set_input_labeled(&mut self, id: SignalId, labeled: Labeled) {
        let signal = self.module.signal(id);
        assert_eq!(
            signal.kind,
            SignalKind::Input,
            "`{}` is not an input",
            signal.name
        );
        assert_eq!(signal.width, labeled.value.width(), "value width");
        assert_eq!(signal.width, labeled.taint.width(), "taint width");
        self.values[id.index()] = labeled.value;
        self.taints[id.index()] = labeled.taint;
    }

    /// Drives an input; `tainted` taints all bits (HIGH) or none (LOW).
    pub fn set_input(&mut self, id: SignalId, value: BitVec, tainted: bool) {
        let labeled = if tainted {
            Labeled::tainted(value)
        } else {
            Labeled::clean(value)
        };
        self.set_input_labeled(id, labeled);
    }

    /// Convenience `u64` variant of [`set_input`](Self::set_input).
    pub fn set_input_u64(&mut self, id: SignalId, value: u64, tainted: bool) {
        let width = self.module.signal(id).width;
        self.set_input(id, BitVec::from_u64(width, value), tainted);
    }

    /// The functional value of a signal.
    pub fn value(&self, id: SignalId) -> &BitVec {
        &self.values[id.index()]
    }

    /// The taint mask of a signal.
    pub fn taint(&self, id: SignalId) -> &BitVec {
        &self.taints[id.index()]
    }

    /// `true` iff any bit of the signal is tainted.
    pub fn is_tainted(&self, id: SignalId) -> bool {
        !self.taints[id.index()].is_zero()
    }

    /// All currently tainted signals.
    pub fn tainted_signals(&self) -> Vec<SignalId> {
        self.module
            .signals()
            .filter(|(id, _)| self.is_tainted(*id))
            .map(|(id, _)| id)
            .collect()
    }

    /// Settles combinational logic, propagating taint.
    ///
    /// Declassified signals have their taint cleared *as they are computed*,
    /// so downstream consumers within the same cycle see them as LOW.
    pub fn settle(&mut self) {
        // Declassified inputs are cleared up front.
        for &id in &self.declassified {
            if self.module.signal(id).kind == SignalKind::Input {
                let width = self.module.signal(id).width;
                self.taints[id.index()] = BitVec::zero(width);
            }
        }
        self.memo.iter_mut().for_each(|m| *m = None);
        for i in 0..self.module.comb_order().len() {
            let sig = self.module.comb_order()[i];
            let driver = self.module.driver(sig).expect("comb driven");
            let labeled = self.eval(driver);
            self.values[sig.index()] = labeled.value;
            self.taints[sig.index()] = if self.declassified.contains(&sig) {
                BitVec::zero(labeled.taint.width())
            } else {
                labeled.taint
            };
            // No memo invalidation is needed: consumers of `sig` come later
            // in topological order, so `Expr::Signal(sig)` is first
            // memoized only after the (possibly declassified) label above
            // has been committed.
        }
    }

    /// Clocks the registers, committing value and taint.
    pub fn clock(&mut self) {
        self.memo.iter_mut().for_each(|m| *m = None);
        let nexts: Vec<(SignalId, Labeled)> = self
            .module
            .state_signals()
            .into_iter()
            .map(|reg| {
                let driver = self.module.driver(reg).expect("reg driven");
                (reg, self.eval(driver))
            })
            .collect();
        for (reg, labeled) in nexts {
            self.values[reg.index()] = labeled.value;
            self.taints[reg.index()] = if self.declassified.contains(&reg) {
                BitVec::zero(labeled.taint.width())
            } else {
                labeled.taint
            };
        }
        self.cycle += 1;
    }

    /// Settle + clock.
    pub fn step(&mut self) {
        self.settle();
        self.clock();
    }

    fn eval(&mut self, root: ExprId) -> Labeled {
        if let Some(l) = &self.memo[root.index()] {
            return l.clone();
        }
        let labeled = self.eval_uncached(root);
        self.memo[root.index()] = Some(labeled.clone());
        labeled
    }

    fn eval_uncached(&mut self, root: ExprId) -> Labeled {
        // Clone to end the borrow of the arena before recursing.
        let expr = self.module.expr(root).clone();
        match expr {
            Expr::Const(v) => Labeled::clean(v),
            Expr::Signal(s) => Labeled {
                value: self.values[s.index()].clone(),
                taint: self.taints[s.index()].clone(),
            },
            Expr::Unary(op, a) => {
                let a = self.eval(a);
                label_unary(self.policy, op, &a)
            }
            Expr::Binary(op, a, b) => {
                let a = self.eval(a);
                let b = self.eval(b);
                label_binary(self.policy, op, &a, &b)
            }
            Expr::Mux {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.eval(cond);
                let t = self.eval(then_expr);
                let e = self.eval(else_expr);
                label_mux(self.policy, &c, &t, &e)
            }
            Expr::Slice { arg, hi, lo } => {
                let a = self.eval(arg);
                Labeled {
                    value: a.value.slice(hi, lo),
                    taint: a.taint.slice(hi, lo),
                }
            }
            Expr::Concat(hi, lo) => {
                let h = self.eval(hi);
                let l = self.eval(lo);
                Labeled {
                    value: h.value.concat(&l.value),
                    taint: h.taint.concat(&l.taint),
                }
            }
            Expr::Zext { arg, width } => {
                let a = self.eval(arg);
                Labeled {
                    value: a.value.zext(width),
                    taint: a.taint.zext(width),
                }
            }
            Expr::Sext { arg, width } => {
                let a = self.eval(arg);
                Labeled {
                    value: a.value.sext(width),
                    // Replicated sign bits inherit the sign bit's taint,
                    // which is exactly sign-extension of the mask.
                    taint: a.taint.sext(width),
                }
            }
        }
    }
}

impl TaintEngine for TaintSimulator<'_> {
    fn drive_input(&mut self, id: SignalId, value: BitVec, tainted: bool) {
        self.set_input(id, value, tainted);
    }

    fn settle(&mut self) {
        TaintSimulator::settle(self);
    }

    fn clock(&mut self) {
        TaintSimulator::clock(self);
    }

    fn declassify(&mut self, id: SignalId) {
        TaintSimulator::declassify(self, id);
    }

    fn is_tainted(&self, id: SignalId) -> bool {
        TaintSimulator::is_tainted(self, id)
    }

    fn value_bits(&self, id: SignalId) -> BitVec {
        self.value(id).clone()
    }

    fn taint_bits(&self, id: SignalId) -> BitVec {
        self.taint(id).clone()
    }
}

/// The conservative policy's single rule: any tainted input taints the
/// whole result.
fn conservative(value: BitVec, inputs: &[&Labeled]) -> Labeled {
    if inputs.iter().any(|l| l.is_tainted()) {
        Labeled::tainted(value)
    } else {
        Labeled::clean(value)
    }
}

/// Per-op taint kernel for unary operators, shared between the
/// interpretive [`TaintSimulator`] and the compiled tape's wide fallback.
pub(crate) fn label_unary(policy: FlowPolicy, op: UnaryOp, a: &Labeled) -> Labeled {
    use fastpath_rtl::UnaryOp::*;
    let value = match op {
        Not => !&a.value,
        Neg => a.value.wrapping_neg(),
        RedAnd => a.value.reduce_and(),
        RedOr => a.value.reduce_or(),
        RedXor => a.value.reduce_xor(),
    };
    if policy == FlowPolicy::Conservative {
        return conservative(value, &[a]);
    }
    let taint = match op {
        Not => a.taint.clone(),
        Neg => carry_taint(&a.taint),
        RedAnd => {
            // A definite (untainted) 0 bit forces the result to 0.
            let forced_zero = (0..a.value.width()).any(|i| !a.taint.bit(i) && !a.value.bit(i));
            BitVec::from_bool(!forced_zero && !a.taint.is_zero())
        }
        RedOr => {
            // A definite 1 bit forces the result to 1.
            let forced_one = (0..a.value.width()).any(|i| !a.taint.bit(i) && a.value.bit(i));
            BitVec::from_bool(!forced_one && !a.taint.is_zero())
        }
        RedXor => BitVec::from_bool(!a.taint.is_zero()),
    };
    Labeled { value, taint }
}

/// Per-op taint kernel for binary operators (see [`label_unary`]).
pub(crate) fn label_binary(policy: FlowPolicy, op: BinaryOp, a: &Labeled, b: &Labeled) -> Labeled {
    use fastpath_rtl::BinaryOp::*;
    let value = fastpath_rtl::eval_binary(op, &a.value, &b.value);
    if policy == FlowPolicy::Conservative {
        return conservative(value, &[a, b]);
    }
    let taint = match op {
        And => {
            // Tainted bit passes only if the other side could be 1.
            let tt = &a.taint & &b.taint;
            let ta = &a.taint & &b.value;
            let tb = &b.taint & &a.value;
            &(&tt | &ta) | &tb
        }
        Or => {
            // Tainted bit passes only if the other side could be 0.
            let tt = &a.taint & &b.taint;
            let ta = &a.taint & &!&b.value;
            let tb = &b.taint & &!&a.value;
            &(&tt | &ta) | &tb
        }
        Xor => &a.taint | &b.taint,
        Add | Sub => carry_taint(&(&a.taint | &b.taint)),
        Mul => {
            if a.taint.is_zero() && b.taint.is_zero() {
                BitVec::zero(value.width())
            } else if (a.taint.is_zero() && a.value.is_zero())
                || (b.taint.is_zero() && b.value.is_zero())
            {
                // Multiplication by a definite zero yields zero.
                BitVec::zero(value.width())
            } else {
                carry_taint(&(&a.taint | &b.taint))
            }
        }
        Shl | Lshr | Ashr => {
            if !b.taint.is_zero() {
                // Taint-steered shift amount: unless the shifted value
                // is a definite zero, the whole result is tainted.
                if a.taint.is_zero() && a.value.is_zero() {
                    Labeled::clean(value.clone()).taint
                } else {
                    BitVec::ones(value.width())
                }
            } else {
                let amount = b.value.try_to_u64().unwrap_or(u64::MAX);
                match op {
                    Shl => a.taint.shl(amount),
                    Lshr => a.taint.lshr(amount),
                    Ashr => a.taint.ashr(amount),
                    _ => unreachable!(),
                }
            }
        }
        Eq | Ne => {
            // If any bit position is untainted on both sides and the
            // values differ there, the comparison outcome is fixed.
            let both_clean = &!&a.taint & &!&b.taint;
            let diff = &a.value ^ &b.value;
            let determined = !(&both_clean & &diff).is_zero();
            let any_taint = !a.taint.is_zero() || !b.taint.is_zero();
            BitVec::from_bool(!determined && any_taint)
        }
        Ult | Ule | Slt | Sle => BitVec::from_bool(!a.taint.is_zero() || !b.taint.is_zero()),
    };
    Labeled { value, taint }
}

/// Per-op taint kernel for the 2:1 mux (see [`label_unary`]).
pub(crate) fn label_mux(policy: FlowPolicy, c: &Labeled, t: &Labeled, e: &Labeled) -> Labeled {
    let take_then = c.value.is_true();
    let value = if take_then {
        t.value.clone()
    } else {
        e.value.clone()
    };
    if policy == FlowPolicy::Conservative {
        return conservative(value, &[c, t, e]);
    }
    if !c.is_tainted() {
        let taint = if take_then {
            t.taint.clone()
        } else {
            e.taint.clone()
        };
        return Labeled { value, taint };
    }
    // Tainted selector: a bit leaks iff the branches can differ there.
    let branch_diff = &t.value ^ &e.value;
    let taint = &(&t.taint | &e.taint) | &branch_diff;
    Labeled { value, taint }
}

/// Models carry propagation: taint spreads from the lowest tainted bit to
/// all more-significant bits.
pub(crate) fn carry_taint(taint: &BitVec) -> BitVec {
    let width = taint.width();
    let mut out = BitVec::zero(width);
    let mut propagating = false;
    for i in 0..width {
        propagating |= taint.bit(i);
        if propagating {
            out.set_bit(i, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// Builds `out = f(a, b)` for a closure over the builder, returning the
    /// module and the three signal ids.
    fn binop_module(
        f: impl Fn(&mut ModuleBuilder, ExprId, ExprId) -> ExprId,
        width: u32,
    ) -> (fastpath_rtl::Module, SignalId, SignalId, SignalId) {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", width);
        let c = b.input("b", width);
        let a_sig = b.sig(a);
        let c_sig = b.sig(c);
        let out_expr = f(&mut b, a_sig, c_sig);
        let out = b.output("out", out_expr);
        (b.build().expect("valid"), a, c, out)
    }

    #[test]
    fn and_with_untainted_zero_blocks_taint() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.and(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(a, 0xFF, true); // tainted secret
        sim.set_input_u64(b, 0x00, false); // untainted mask of 0
        sim.settle();
        assert!(!sim.is_tainted(out));
        sim.set_input_u64(b, 0x0F, false);
        sim.settle();
        assert_eq!(sim.taint(out).to_u64(), 0x0F);
    }

    #[test]
    fn conservative_policy_taints_through_zero_mask() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.and(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Conservative);
        sim.set_input_u64(a, 0xFF, true);
        sim.set_input_u64(b, 0x00, false);
        sim.settle();
        assert!(sim.is_tainted(out)); // the false positive
    }

    #[test]
    fn or_with_untainted_ones_blocks_taint() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.or(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(a, 0x5A, true);
        sim.set_input_u64(b, 0xFF, false);
        sim.settle();
        assert!(!sim.is_tainted(out));
    }

    #[test]
    fn xor_unions_taint() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.xor(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        let mut labeled = Labeled::clean(BitVec::from_u64(8, 0xAA));
        labeled.taint = BitVec::from_u64(8, 0x0F);
        sim.set_input_labeled(a, labeled);
        sim.set_input_u64(b, 0x55, false);
        sim.settle();
        assert_eq!(sim.taint(out).to_u64(), 0x0F);
    }

    #[test]
    fn add_spreads_taint_upward_only() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.add(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        let mut labeled = Labeled::clean(BitVec::from_u64(8, 0x10));
        labeled.taint = BitVec::from_u64(8, 0x10); // bit 4 tainted
        sim.set_input_labeled(a, labeled);
        sim.set_input_u64(b, 0x01, false);
        sim.settle();
        assert_eq!(sim.taint(out).to_u64(), 0xF0); // bits 4..7
    }

    #[test]
    fn untainted_shift_amount_shifts_mask() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.shl(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        let mut labeled = Labeled::clean(BitVec::from_u64(8, 0x01));
        labeled.taint = BitVec::from_u64(8, 0x01);
        sim.set_input_labeled(a, labeled);
        sim.set_input_u64(b, 3, false);
        sim.settle();
        assert_eq!(sim.taint(out).to_u64(), 0x08);
    }

    #[test]
    fn tainted_shift_amount_taints_everything() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.lshr(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(a, 0xA5, false);
        sim.set_input_u64(b, 1, true);
        sim.settle();
        assert!(sim.taint(out).is_ones());
    }

    #[test]
    fn eq_on_determined_bits_is_untainted() {
        let (m, a, b, out) = binop_module(|bld, x, y| bld.eq(x, y), 8);
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        // High nibble untainted and differs -> outcome fixed at "not equal".
        let mut labeled = Labeled::clean(BitVec::from_u64(8, 0x1F));
        labeled.taint = BitVec::from_u64(8, 0x0F);
        sim.set_input_labeled(a, labeled);
        sim.set_input_u64(b, 0xF0, false);
        sim.settle();
        assert!(!sim.is_tainted(out));
        // Make them agree on untainted bits -> outcome depends on taint.
        let mut labeled = Labeled::clean(BitVec::from_u64(8, 0xF3));
        labeled.taint = BitVec::from_u64(8, 0x0F);
        sim.set_input_labeled(a, labeled);
        sim.settle();
        assert!(sim.is_tainted(out));
    }

    #[test]
    fn mux_untainted_selector_keeps_branch_taint() {
        let mut bld = ModuleBuilder::new("m");
        let sel = bld.input("sel", 1);
        let a = bld.input("a", 8);
        let b = bld.input("b", 8);
        let sel_sig = bld.sig(sel);
        let a_sig = bld.sig(a);
        let b_sig = bld.sig(b);
        let mx = bld.mux(sel_sig, a_sig, b_sig);
        let out = bld.output("out", mx);
        let m = bld.build().expect("valid");
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(sel, 0, false);
        sim.set_input_u64(a, 1, true);
        sim.set_input_u64(b, 2, false);
        sim.settle();
        assert!(!sim.is_tainted(out)); // untainted branch selected
        sim.set_input_u64(sel, 1, false);
        sim.settle();
        assert!(sim.is_tainted(out));
    }

    #[test]
    fn mux_tainted_selector_with_equal_branches_is_clean() {
        let mut bld = ModuleBuilder::new("m");
        let sel = bld.input("sel", 1);
        let a = bld.input("a", 8);
        let sel_sig = bld.sig(sel);
        let a_sig = bld.sig(a);
        let mx = bld.mux(sel_sig, a_sig, a_sig);
        let out = bld.output("out", mx);
        let m = bld.build().expect("valid");
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(sel, 1, true); // tainted selector
        sim.set_input_u64(a, 7, false);
        sim.settle();
        assert!(!sim.is_tainted(out)); // branches identical -> no leak
    }

    #[test]
    fn taint_persists_in_registers() {
        let mut bld = ModuleBuilder::new("m");
        let d = bld.input("d", 4);
        let d_sig = bld.sig(d);
        let q = bld.reg("q", 4, 0);
        bld.set_next(q, d_sig).expect("drive");
        let m = bld.build().expect("valid");
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.set_input_u64(d, 5, true);
        sim.step();
        assert!(sim.is_tainted(q));
        // Even after the input goes clean, the stored taint remains until
        // overwritten.
        sim.set_input_u64(d, 0, false);
        sim.settle();
        assert!(sim.is_tainted(q));
        sim.clock();
        assert!(!sim.is_tainted(q));
    }

    #[test]
    fn declassification_clears_taint() {
        let mut bld = ModuleBuilder::new("m");
        let d = bld.input("d", 4);
        let d_sig = bld.sig(d);
        let w = bld.wire("w", d_sig);
        let w_sig = bld.sig(w);
        let out = bld.output("out", w_sig);
        let m = bld.build().expect("valid");
        let mut sim = TaintSimulator::new(&m, FlowPolicy::Precise);
        sim.declassify(w);
        sim.set_input_u64(d, 3, true);
        sim.settle();
        // The declassified wire and everything downstream of it are LOW.
        assert!(!sim.is_tainted(w));
        assert!(!sim.is_tainted(out));
    }

    use fastpath_rtl::ExprId;
}
