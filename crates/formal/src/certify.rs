//! Certified UPEC verdicts.
//!
//! Types carrying the result of independently checking one
//! [`Upec2Safety`](crate::Upec2Safety) check with the `fastpath-cert`
//! checker: a per-check [`CheckCertificate`] (or the [`CertError`] that
//! rejected it) bundled with the ordinary outcome in
//! [`CertifiedOutcome`], plus accumulated [`CertStats`].

use crate::upec::UpecOutcome;
use fastpath_cert::{CertError, CheckerStats};

/// How one check's verdict was independently validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckCertificate {
    /// Every difference monitor folded to constant false in the AIG, so
    /// no SAT instance was ever built. The verdict rests on structural
    /// hashing, not on the solver — recorded honestly as its own kind
    /// rather than dressed up as a proof.
    TrivialUnsat,
    /// The solver's UNSAT answer was replayed by the forward RUP checker:
    /// every learnt clause verified, and assuming this check's activation
    /// literal propagates to a conflict.
    UnsatProof {
        /// Length of the trace prefix that constitutes the certificate.
        steps: usize,
    },
    /// The solver's SAT answer was validated by evaluating every axiom
    /// clause (and the activation assumption) under the returned model.
    SatModel {
        /// Number of clauses the model was checked against.
        clauses: usize,
    },
}

/// An outcome plus the result of independently certifying it.
#[derive(Clone, Debug)]
pub struct CertifiedOutcome {
    /// The verdict, exactly as the uncertified engine would return it.
    pub outcome: UpecOutcome,
    /// The certificate, or why certification failed. A failure means the
    /// solver's answer could not be independently validated — a solver
    /// bug, not a property of the design.
    pub certificate: Result<CheckCertificate, CertError>,
}

impl CertifiedOutcome {
    /// `true` if the verdict was independently validated.
    pub fn is_certified(&self) -> bool {
        self.certificate.is_ok()
    }
}

/// Certification work counters, accumulated per engine and aggregated
/// across designs by the flow layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertStats {
    /// Checks that went through certification.
    pub certified_checks: u64,
    /// UNSAT verdicts certified by a RUP proof replay.
    pub unsat_proofs: u64,
    /// UNSAT verdicts that were trivial (all monitors constant false).
    pub trivial_unsat: u64,
    /// SAT verdicts certified by model evaluation.
    pub sat_models: u64,
    /// Checks whose certificate was rejected.
    pub cert_failures: u64,
    /// Artifact file pairs written (when an artifact directory is set).
    pub artifacts_written: u64,
    /// Artifact writes that failed with an I/O error.
    pub artifact_failures: u64,
    /// The independent checker's own work counters.
    pub checker: CheckerStats,
}

impl CertStats {
    /// Folds another engine's counters into this one.
    pub fn merge(&mut self, other: &CertStats) {
        self.certified_checks += other.certified_checks;
        self.unsat_proofs += other.unsat_proofs;
        self.trivial_unsat += other.trivial_unsat;
        self.sat_models += other.sat_models;
        self.cert_failures += other.cert_failures;
        self.artifacts_written += other.artifacts_written;
        self.artifact_failures += other.artifact_failures;
        self.checker.merge(&other.checker);
    }
}

impl std::ops::AddAssign for CertStats {
    fn add_assign(&mut self, rhs: CertStats) {
        self.merge(&rhs);
    }
}
