//! SecIC3: an IC3/PDR engine specialized for the 2-safety UPEC product.
//!
//! One-step induction over a fully symbolic starting state is the flow's
//! reference oracle, but it rejects every property whose inductive
//! strengthening it cannot see: the symbolic `t` frame includes unreachable
//! states, and designs whose security argument rests on reachability
//! facts ("the debug mask is tied off", "the shadow register mirrors the
//! latch") terminate `Constrained` and pay manual inspections. [`Ic3Engine`]
//! closes that gap mechanically: it runs IC3/PDR over the *fully split*
//! 2-safety product — both instances start from the concrete reset state,
//! no `Z'` leaf sharing — and derives the missing strengthening as a
//! conjunction of **relational clauses** over the product's state bits.
//!
//! # Property shape
//!
//! The engine proves a *transition* safety property, not a state property:
//! a frame state is fine, a frame *step* is bad when it makes a `Z'`
//! register differ at `t+1`, a control output differ at `t` or `t+1`, or a
//! conditional equality break at `t+1` — exactly the monitor disjunction
//! of the induction engine's check. Consequently the inductive invariant
//! that closes the proof satisfies precisely the theorem the induction
//! engine re-validates:
//!
//! ```text
//! Inv(t) ∧ constraints(t, t+1) ∧ invariants(t) ∧ T  →  Inv(t+1) ∧ ¬Bad-step
//! ```
//!
//! The flow never trusts this engine's internals. A successful
//! [`Ic3Engine::prove`] only yields a candidate [`RelationalInvariant`];
//! the caller re-validates it through the standard (certifiable) induction
//! check via [`crate::Upec2Safety::add_relational_clauses`], so an IC3 bug
//! can cause a failed discharge but never an unsound verdict.
//!
//! # Mechanics
//!
//! - **Product**: elaborated once per engine through the same machinery as
//!   the induction template ([`build_frame_with_leaves`] / [`next_state`]),
//!   with split per-instance register leaves and the shared-control /
//!   split-data input policy of the 2-safety model. Spec growth
//!   (constraints, invariants, conditional equalities) is incremental on
//!   the persistent AIG and solver, mirroring the refinement loop.
//! - **Frames**: delta-encoded lemma sets over one incremental CDCL
//!   solver. Each frame level gets an activation literal; a lemma lives at
//!   its highest proven level `j` as the clause `¬act_j ∨ ¬cube`, and a
//!   query against frame `F_m` assumes `{act_j : j ≥ m}`. Frame 0 is the
//!   concrete reset state, assumed bit by bit.
//! - **Generalization**: counterexamples-to-induction are first shrunk by
//!   ternary simulation (drop a state bit, three-valued re-evaluation must
//!   keep the requirement definite), then minimized by literal dropping
//!   with down-generalization (join the candidate with the SAT model on
//!   failure), always preserving syntactic disjointness from reset.
//! - **Determinism**: the internal solver runs at portfolio width 1 with
//!   per-query conflict budgets, obligations are processed in a fixed
//!   `(level, sequence)` order, and all shrink loops walk fixed literal
//!   orders under deterministic operation budgets — verdicts, lemmas and
//!   [`Ic3Stats`] are byte-identical across `--jobs` and portfolio widths.

use crate::aig::{Aig, AigLit};
use crate::blast::{build_frame_with_leaves, next_state, Frame};
use crate::tseitin::CnfEncoder;
use crate::upec::{alloc_input, blast_predicate};
use crate::words::eq_word;
use fastpath_rtl::{ExprId, Module, SignalId, SignalKind};
use fastpath_sat::{Lit, SolveResult, Var};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which formal engine decides the UPEC obligations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UpecEngine {
    /// 1-step induction only (the reference oracle): non-inductive
    /// obligations terminate `Constrained`.
    #[default]
    Induction,
    /// Induction first, then SecIC3 escalation: when the refinement loop
    /// would fall back to constraining or inspection, IC3 attempts to
    /// discharge the residual obligation with a machine-derived relational
    /// invariant, re-validated through the induction engine.
    Ic3,
}

impl std::str::FromStr for UpecEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "induction" => Ok(UpecEngine::Induction),
            "ic3" => Ok(UpecEngine::Ic3),
            other => Err(format!(
                "unknown UPEC engine `{other}` (expected `induction` or `ic3`)"
            )),
        }
    }
}

impl std::fmt::Display for UpecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UpecEngine::Induction => "induction",
            UpecEngine::Ic3 => "ic3",
        })
    }
}

/// Cumulative IC3 effort counters, merged across discharge attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ic3Stats {
    /// Frame levels opened across all proofs.
    pub frames: u64,
    /// Counterexamples-to-induction extracted from bad-state queries.
    pub ctis: u64,
    /// Lemmas learned (blocked generalized cubes).
    pub lemmas: u64,
    /// Literals removed by generalization (ternary drops + MIC drops).
    pub generalization_drops: u64,
    /// Lemmas pushed forward during propagation.
    pub pushes: u64,
}

impl Ic3Stats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &Ic3Stats) {
        self.frames += other.frames;
        self.ctis += other.ctis;
        self.lemmas += other.lemmas;
        self.generalization_drops += other.generalization_drops;
        self.pushes += other.pushes;
    }
}

/// One literal of a relational clause: a single bit of one instance's
/// copy of a register, at time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationalLit {
    /// Register position in [`Module::state_signals`] order.
    pub reg: usize,
    /// Product instance, `0` or `1`.
    pub inst: usize,
    /// Bit index within the register.
    pub bit: u32,
    /// `true` for the positive literal (bit is 1), `false` for negated.
    pub positive: bool,
}

/// A disjunction of [`RelationalLit`]s over the 2-safety product state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationalClause {
    /// The clause's literals.
    pub lits: Vec<RelationalLit>,
}

/// A machine-derived inductive strengthening: a conjunction of relational
/// clauses that holds in every reachable state of the constrained
/// 2-safety product and is closed under the transition relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelationalInvariant {
    /// The clauses, in the deterministic order IC3 derived them.
    pub clauses: Vec<RelationalClause>,
}

impl RelationalInvariant {
    /// `true` iff every clause is satisfied by the all-equal reset state
    /// (the product's initial state). IC3 derives only reset-disjoint
    /// lemmas, so this holds by construction; callers use it as an
    /// independent base-case check on cached or replayed invariants.
    pub fn holds_at_reset(&self, module: &Module) -> bool {
        let state_ids = module.state_signals();
        self.clauses.iter().all(|clause| {
            clause.lits.iter().any(|lit| {
                state_ids.get(lit.reg).is_some_and(|&reg| {
                    let signal = module.signal(reg);
                    lit.bit < signal.width
                        && signal
                            .init
                            .as_ref()
                            .is_some_and(|init| init.bit(lit.bit) == lit.positive)
                })
            })
        })
    }

    /// `true` iff every literal names an existing register bit of the
    /// module and a valid instance. Decoded cache entries are validated
    /// with this before being replayed into an engine.
    pub fn is_well_formed(&self, module: &Module) -> bool {
        let state_ids = module.state_signals();
        self.clauses.iter().all(|clause| {
            !clause.lits.is_empty()
                && clause.lits.iter().all(|lit| {
                    lit.inst < 2
                        && state_ids
                            .get(lit.reg)
                            .is_some_and(|&reg| lit.bit < module.signal(reg).width)
                })
        })
    }
}

/// The result of one [`Ic3Engine::prove`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ic3Outcome {
    /// An inductive invariant closed the proof; the property holds in all
    /// reachable states of the constrained product. The invariant is a
    /// *candidate* until the caller re-validates it.
    Proved(RelationalInvariant),
    /// A concrete path from reset violates the property — the obligation
    /// is genuinely non-dischargeable under the current spec.
    Counterexample,
    /// A deterministic effort budget ran out before convergence.
    Diverged,
}

/// Maximum frame levels before a proof attempt gives up as
/// [`Ic3Outcome::Diverged`]. Security obligations with small relational
/// strengthenings converge in a handful of frames; anything needing more
/// is better left to inspection than to an unbounded search.
const IC3_MAX_LEVELS: usize = 20;

/// Conflict budget per SAT query, the same determinism device as the word
/// encoding's fallback budget: conflict counts don't depend on wall time,
/// so budget exhaustion — reported as [`Ic3Outcome::Diverged`] — is
/// reproducible across machines and runs.
const IC3_QUERY_CONFLICT_BUDGET: u64 = 8192;

/// Total SAT queries per `prove` call (blocking, generalization and
/// propagation combined) before the attempt diverges.
const IC3_TOTAL_QUERY_BUDGET: u64 = 1_000;

/// Total solver conflicts per `prove` call, summed across its queries.
/// The query count alone bounds cheap proofs poorly: on large products a
/// divergent attempt can spend the full per-query conflict budget on
/// thousands of queries. Conflict totals are deterministic, so this is a
/// reproducible wall-clock proxy that caps a failed attempt at roughly
/// seconds regardless of product size.
const IC3_TOTAL_CONFLICT_BUDGET: u64 = 50_000;

/// Total ternary-simulation node visits per `prove` call. When exhausted,
/// remaining shrink candidates are deterministically skipped (cubes stay
/// larger; MIC still minimizes them with solver queries).
const IC3_TERNARY_VISIT_BUDGET: u64 = 50_000_000;

/// Down-generalization join iterations per dropped literal.
const IC3_DOWN_MAX_ITERS: usize = 4;

/// Ternary value encoding for the three-valued AIG walker.
const T_FALSE: u8 = 0;
const T_TRUE: u8 = 1;
const T_X: u8 = 2;

/// A cube over flat product state-bit indices, sorted ascending. `true`
/// means the bit is 1 in every state of the cube.
type Cube = Vec<(u32, bool)>;

/// One flat state bit of the product: a register bit of one instance.
#[derive(Debug)]
struct StateBit {
    /// Register position in `state_signals` order.
    reg: usize,
    /// Instance 0 or 1.
    inst: usize,
    /// Bit within the register.
    bit: u32,
    /// The bit's AIG input at `t`.
    at_t: AigLit,
    /// The bit's next-state function (value at `t+1`).
    at_t1: AigLit,
    /// Frozen SAT literal for `at_t` (positive phase).
    sat_t: Lit,
    /// The bit's concrete reset value.
    reset: bool,
}

/// One delta-encoded frame level: its activation literal and the lemmas
/// whose highest proven level this is.
#[derive(Debug)]
struct Level {
    act: Var,
    lemmas: Vec<Cube>,
}

/// The IC3/PDR engine over the fully split 2-safety product of one
/// design. Create once per design, grow the spec incrementally, and call
/// [`prove`](Self::prove) per escalation attempt — the product AIG, its
/// CNF encoding and everything the solver learned persist across calls,
/// while frame activation literals are retired per call.
#[derive(Debug)]
pub struct Ic3Engine<'m> {
    module: &'m Module,
    aig: Aig,
    encoder: CnfEncoder,
    state_ids: Vec<SignalId>,
    /// Flat product state bits: register-major, instance 0 before 1, bit
    /// ascending. Cube indices index this table.
    bits: Vec<StateBit>,
    /// Reset-state assumption literals, one per flat bit.
    init_assumps: Vec<Lit>,
    /// All product input bits (both frames, both instances) for ternary
    /// seeding from SAT models.
    input_lits: Vec<AigLit>,
    frame0_t: Frame,
    frame1_t: Frame,
    frame0_t1: Frame,
    frame1_t1: Frame,
    next0: Vec<Vec<AigLit>>,
    next1: Vec<Vec<AigLit>>,
    /// Per-control-output difference monitors (`t` or `t+1` differs),
    /// built once; structurally-fine outputs fold to constant false and
    /// are dropped.
    out_diff: Vec<AigLit>,
    /// Per-conditional-equality violation monitors at `t+1`.
    cond_viol: Vec<AigLit>,
    /// Memoized per-register next-state difference monitors.
    reg_diff: Vec<Option<AigLit>>,
    /// Frame levels of the in-flight proof (index = level; 0 is reset).
    levels: Vec<Level>,
    /// SAT queries spent in the in-flight proof.
    queries: u64,
    /// Solver conflict total at the start of the in-flight proof.
    conflicts_at_prove: u64,
    /// Ternary node visits spent in the in-flight proof.
    tern_visits: u64,
    tern_preset: Vec<u8>,
    tern_values: Vec<u8>,
    stats: Ic3Stats,
}

impl<'m> Ic3Engine<'m> {
    /// Elaborates the split 2-safety product for `module`.
    pub fn new(module: &'m Module) -> Self {
        let mut aig = Aig::new();
        let mut encoder = CnfEncoder::new();
        let state_ids = module.state_signals();
        let n = module.signal_count();

        // Split register leaves first so their node indices are small and
        // stable regardless of later spec growth.
        let mut reg_leaves: Vec<(Vec<AigLit>, Vec<AigLit>)> = Vec::new();
        for &reg in &state_ids {
            let width = module.signal(reg).width;
            let b0: Vec<AigLit> = (0..width).map(|_| aig.input()).collect();
            let b1: Vec<AigLit> = (0..width).map(|_| aig.input()).collect();
            reg_leaves.push((b0, b1));
        }

        // Inputs at `t`: shared control, split data — the 2-safety input
        // policy of the induction template.
        let mut input_lits = Vec::new();
        let mut leaves0: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut leaves1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        for (id, signal) in module.signals() {
            if signal.kind == SignalKind::Input {
                let (b0, b1) = alloc_input(&mut aig, signal.role, signal.width);
                input_lits.extend(b0.iter().copied());
                input_lits.extend(b1.iter().copied());
                leaves0[id.index()] = b0;
                leaves1[id.index()] = b1;
            }
        }
        for (i, &reg) in state_ids.iter().enumerate() {
            leaves0[reg.index()] = reg_leaves[i].0.clone();
            leaves1[reg.index()] = reg_leaves[i].1.clone();
        }
        let frame0_t = build_frame_with_leaves(&mut aig, module, leaves0);
        let frame1_t = build_frame_with_leaves(&mut aig, module, leaves1);
        let next0 = next_state(&mut aig, module, &frame0_t);
        let next1 = next_state(&mut aig, module, &frame1_t);

        // Frames at `t+1`: next-state register leaves plus fresh inputs.
        let mut leaves0_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut leaves1_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        for (i, &reg) in state_ids.iter().enumerate() {
            leaves0_t1[reg.index()] = next0[i].clone();
            leaves1_t1[reg.index()] = next1[i].clone();
        }
        for (id, signal) in module.signals() {
            if signal.kind == SignalKind::Input {
                let (b0, b1) = alloc_input(&mut aig, signal.role, signal.width);
                input_lits.extend(b0.iter().copied());
                input_lits.extend(b1.iter().copied());
                leaves0_t1[id.index()] = b0;
                leaves1_t1[id.index()] = b1;
            }
        }
        let frame0_t1 = build_frame_with_leaves(&mut aig, module, leaves0_t1);
        let frame1_t1 = build_frame_with_leaves(&mut aig, module, leaves1_t1);

        // Output monitors: a control output diverging at `t` or `t+1`.
        let mut out_diff = Vec::new();
        for y in module.control_outputs() {
            let eq_a = eq_word(&mut aig, frame0_t.signal(y), frame1_t.signal(y));
            let eq_b = eq_word(&mut aig, frame0_t1.signal(y), frame1_t1.signal(y));
            let both = aig.and(eq_a, eq_b);
            let diff = !both;
            if diff != AigLit::FALSE {
                out_diff.push(diff);
            }
        }

        // Flat state-bit table with frozen SAT handles (needed for reset
        // assumptions, cube clauses and model extraction).
        let mut bits = Vec::new();
        let mut init_assumps = Vec::new();
        for (i, &reg) in state_ids.iter().enumerate() {
            let signal = module.signal(reg);
            let init = signal.init.as_ref().expect("register init");
            for inst in 0..2 {
                let leaves = if inst == 0 {
                    &reg_leaves[i].0
                } else {
                    &reg_leaves[i].1
                };
                for bit in 0..signal.width {
                    let at_t = leaves[bit as usize];
                    let sat_t = encoder.lit(&aig, at_t);
                    let reset = init.bit(bit);
                    init_assumps.push(if reset { sat_t } else { !sat_t });
                    bits.push(StateBit {
                        reg: i,
                        inst,
                        bit,
                        at_t,
                        at_t1: if inst == 0 {
                            next0[i][bit as usize]
                        } else {
                            next1[i][bit as usize]
                        },
                        sat_t,
                        reset,
                    });
                }
            }
        }

        let reg_count = state_ids.len();
        Ic3Engine {
            module,
            aig,
            encoder,
            state_ids,
            bits,
            init_assumps,
            input_lits,
            frame0_t,
            frame1_t,
            frame0_t1,
            frame1_t1,
            next0,
            next1,
            out_diff,
            cond_viol: Vec::new(),
            reg_diff: vec![None; reg_count],
            levels: Vec::new(),
            queries: 0,
            conflicts_at_prove: 0,
            tern_visits: 0,
            tern_preset: Vec::new(),
            tern_values: Vec::new(),
            stats: Ic3Stats::default(),
        }
    }

    /// Cumulative effort counters across all `prove` calls.
    pub fn stats(&self) -> Ic3Stats {
        self.stats
    }

    /// Asserts a software constraint on both instances in both frames
    /// (unguarded: the spec only ever grows, matching the flow).
    pub fn add_software_constraint(&mut self, expr: ExprId) {
        let module = self.module;
        for frame in [
            &self.frame0_t,
            &self.frame1_t,
            &self.frame0_t1,
            &self.frame1_t1,
        ] {
            let lit = blast_predicate(&mut self.aig, module, frame, expr);
            self.encoder.assert_true(&self.aig, lit);
        }
    }

    /// Asserts an invariant on both instances at `t`. Mirroring the
    /// induction engine, invariants are `t`-frame assumptions only — IC3's
    /// consecution theorem then matches the re-validation check's premise.
    pub fn add_invariant(&mut self, expr: ExprId) {
        let module = self.module;
        for frame in [&self.frame0_t, &self.frame1_t] {
            let lit = blast_predicate(&mut self.aig, module, frame, expr);
            self.encoder.assert_true(&self.aig, lit);
        }
    }

    /// Registers a conditional equality's violation monitor: condition
    /// holds in both instances at `t+1` but the target register's next
    /// states differ. The equality is deliberately *not* assumed at `t`
    /// (a larger reachable set is sound, and the re-validation check's
    /// extra `t` premise only helps).
    pub fn add_conditional_equality(&mut self, cond: ExprId, signal: SignalId) {
        let module = self.module;
        let c0 = blast_predicate(&mut self.aig, module, &self.frame0_t1, cond);
        let c1 = blast_predicate(&mut self.aig, module, &self.frame1_t1, cond);
        let both = self.aig.and(c0, c1);
        let idx = self
            .state_ids
            .iter()
            .position(|&r| r == signal)
            .expect("conditional equality must target a register");
        let eqn = eq_word(&mut self.aig, &self.next0[idx], &self.next1[idx]);
        let viol = {
            let ne = !eqn;
            self.aig.and(both, ne)
        };
        if viol != AigLit::FALSE {
            self.cond_viol.push(viol);
        }
    }

    /// Runs IC3 for the partitioning `z_prime`: prove that no reachable
    /// product step diverges a `Z'` register, a control output, or a
    /// conditional equality.
    pub fn prove(&mut self, z_prime: &[SignalId]) -> Ic3Outcome {
        self.queries = 0;
        self.conflicts_at_prove = self.encoder.solver().stats().conflicts;
        self.tern_visits = 0;
        let out = self.prove_inner(z_prime);
        // Retire this proof's frame stack: the unit `¬act` permanently
        // satisfies every lemma clause of the level, so the next prove
        // starts from clean frames while learned clauses carry over.
        let levels = std::mem::take(&mut self.levels);
        for level in levels {
            self.encoder.add_clause(&[level.act.negative()]);
        }
        out
    }

    fn prove_inner(&mut self, z_prime: &[SignalId]) -> Ic3Outcome {
        let bad = self.build_bad(z_prime);
        if bad == AigLit::FALSE {
            // Structurally nothing to diverge: trivially safe.
            return Ic3Outcome::Proved(RelationalInvariant::default());
        }
        let n = self.aig.node_count();
        self.tern_preset.resize(n, T_X);
        self.tern_values.resize(n, T_X);
        let bad_sat = self.encoder.lit(&self.aig, bad);

        // Base: can reset itself step into Bad? (Bad spans t and t+1, so
        // this covers both the 0-step and 1-step base cases.)
        let mut assumps = self.init_assumps.clone();
        assumps.push(bad_sat);
        match self.solve(&assumps) {
            Err(o) => return o,
            Ok(SolveResult::Sat) => return Ic3Outcome::Counterexample,
            Ok(SolveResult::Unsat) => {}
        }

        // Level 0 is the reset state (assumed, no activation literal, but
        // a placeholder keeps indices aligned); level 1 starts empty.
        self.levels = Vec::new();
        for _ in 0..2 {
            let act = self.encoder.fresh_var();
            self.levels.push(Level {
                act,
                lemmas: Vec::new(),
            });
        }

        for k in 1..=IC3_MAX_LEVELS {
            self.stats.frames += 1;
            if let Err(o) = self.block_all(k, bad, bad_sat) {
                return o;
            }
            let act = self.encoder.fresh_var();
            self.levels.push(Level {
                act,
                lemmas: Vec::new(),
            });
            match self.propagate(k) {
                Err(o) => return o,
                Ok(Some(fixpoint)) => {
                    let mut clauses = Vec::new();
                    for level in &self.levels[fixpoint + 1..] {
                        for cube in &level.lemmas {
                            clauses.push(cube_to_clause(&self.bits, cube));
                        }
                    }
                    return Ic3Outcome::Proved(RelationalInvariant { clauses });
                }
                Ok(None) => {}
            }
        }
        Ic3Outcome::Diverged
    }

    /// The bad-step monitor for `z_prime`: some `Z'` register differs at
    /// `t+1`, some control output differs at `t` or `t+1`, or some
    /// conditional equality is violated at `t+1`.
    fn build_bad(&mut self, z_prime: &[SignalId]) -> AigLit {
        let mut in_z = vec![false; self.module.signal_count()];
        for &z in z_prime {
            in_z[z.index()] = true;
        }
        let mut terms = Vec::new();
        for i in 0..self.state_ids.len() {
            if !in_z[self.state_ids[i].index()] {
                continue;
            }
            let diff = match self.reg_diff[i] {
                Some(d) => d,
                None => {
                    let eq = eq_word(&mut self.aig, &self.next0[i], &self.next1[i]);
                    let d = !eq;
                    self.reg_diff[i] = Some(d);
                    d
                }
            };
            if diff != AigLit::FALSE {
                terms.push(diff);
            }
        }
        terms.extend(self.out_diff.iter().copied());
        terms.extend(self.cond_viol.iter().copied());
        self.aig.or_all(&terms)
    }

    /// Blocks every CTI reachable in frame `k`'s over-approximation.
    fn block_all(&mut self, k: usize, bad: AigLit, bad_sat: Lit) -> Result<(), Ic3Outcome> {
        loop {
            let mut assumps = self.act_assumps(k);
            assumps.push(bad_sat);
            match self.solve(&assumps)? {
                SolveResult::Unsat => return Ok(()),
                SolveResult::Sat => {
                    self.stats.ctis += 1;
                    let mut cube = self.model_cube();
                    self.seed_ternary(&cube);
                    if !self.init_disjoint(&cube) {
                        // The over-approximation claims reset steps into
                        // Bad, which the base check refuted: an artifact
                        // of unassigned model bits. Don't block a cube
                        // containing reset — give up instead.
                        return Err(Ic3Outcome::Diverged);
                    }
                    self.ternary_shrink(&mut cube, &[(bad, true)]);
                    self.block_obligations(cube, k)?;
                }
            }
        }
    }

    /// Recursively blocks `cube` at `level` through the obligation queue.
    fn block_obligations(&mut self, cube: Cube, k: usize) -> Result<(), Ic3Outcome> {
        let mut queue: BinaryHeap<Reverse<(usize, u64, Cube)>> = BinaryHeap::new();
        let mut seq = 0u64;
        queue.push(Reverse((k, seq, cube)));
        while let Some(Reverse((lvl, _, cube))) = queue.pop() {
            if lvl == 0 {
                return Err(Ic3Outcome::Counterexample);
            }
            match self.block_query(&cube, lvl, true)? {
                None => {
                    // Inductive relative to F_{lvl-1}: generalize, learn,
                    // and chase the same cube at the next level.
                    let lemma = self.mic(cube.clone(), lvl)?;
                    self.insert_lemma(lemma, lvl);
                    self.stats.lemmas += 1;
                    if lvl < k {
                        seq += 1;
                        queue.push(Reverse((lvl + 1, seq, cube)));
                    }
                }
                Some(mut pred) => {
                    if lvl == 1 {
                        // The predecessor lies in the concrete reset
                        // state: a real path from reset reaches Bad.
                        return Err(Ic3Outcome::Counterexample);
                    }
                    if !self.init_disjoint(&pred) {
                        return Err(Ic3Outcome::Counterexample);
                    }
                    let req: Vec<(AigLit, bool)> = cube
                        .iter()
                        .map(|&(idx, val)| (self.bits[idx as usize].at_t1, val))
                        .collect();
                    self.ternary_shrink(&mut pred, &req);
                    seq += 1;
                    queue.push(Reverse((lvl - 1, seq, pred)));
                    seq += 1;
                    queue.push(Reverse((lvl, seq, cube)));
                }
            }
        }
        Ok(())
    }

    /// The relative-induction query `F_{lvl-1} ∧ ¬cube ∧ T ∧ cube'`.
    /// `Ok(None)` means UNSAT (blocked); `Ok(Some(pred))` returns the
    /// model's full `t`-state cube, with the ternary simulator seeded
    /// from the model when `seed` is set.
    fn block_query(
        &mut self,
        cube: &Cube,
        lvl: usize,
        seed: bool,
    ) -> Result<Option<Cube>, Ic3Outcome> {
        let q = self.encoder.fresh_var();
        let mut clause = vec![q.negative()];
        for &(idx, val) in cube {
            let sat_t = self.bits[idx as usize].sat_t;
            clause.push(if val { !sat_t } else { sat_t });
        }
        self.encoder.add_clause(&clause);
        let mut assumps = if lvl == 1 {
            self.init_assumps.clone()
        } else {
            self.act_assumps(lvl - 1)
        };
        assumps.push(q.positive());
        for &(idx, val) in cube {
            let at_t1 = self.bits[idx as usize].at_t1;
            let l = self.encoder.lit(&self.aig, at_t1);
            assumps.push(if val { l } else { !l });
        }
        let result = self.solve(&assumps);
        let out = match result {
            Err(o) => Err(o),
            Ok(SolveResult::Unsat) => Ok(None),
            Ok(SolveResult::Sat) => {
                let pred = self.model_cube();
                if seed {
                    self.seed_ternary(&pred);
                }
                Ok(Some(pred))
            }
        };
        self.encoder.add_clause(&[q.negative()]);
        out
    }

    /// MIC: minimal inductive cube by literal dropping with bounded
    /// down-generalization, in deterministic literal order.
    fn mic(&mut self, mut cube: Cube, lvl: usize) -> Result<Cube, Ic3Outcome> {
        let mut i = 0;
        while i < cube.len() && cube.len() > 1 {
            let mut cand = cube.clone();
            cand.remove(i);
            if !self.init_disjoint(&cand) {
                i += 1;
                continue;
            }
            match self.down(cand, lvl)? {
                Some(better) => {
                    self.stats.generalization_drops += (cube.len() - better.len()) as u64;
                    cube = better;
                    // Position i now holds the next un-examined literal.
                }
                None => i += 1,
            }
        }
        Ok(cube)
    }

    /// Down-generalization: join the candidate with SAT models until it
    /// becomes relatively inductive or the iteration budget runs out.
    fn down(&mut self, mut cand: Cube, lvl: usize) -> Result<Option<Cube>, Ic3Outcome> {
        for _ in 0..IC3_DOWN_MAX_ITERS {
            match self.block_query(&cand, lvl, false)? {
                None => return Ok(Some(cand)),
                Some(model) => {
                    cand.retain(|entry| model.binary_search(entry).is_ok());
                    if cand.is_empty() || !self.init_disjoint(&cand) {
                        return Ok(None);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Lemma propagation after frame `k` is blocked: push every lemma
    /// whose consecution holds one level up. Returns the fixpoint level if
    /// some level's delta emptied.
    fn propagate(&mut self, k: usize) -> Result<Option<usize>, Ic3Outcome> {
        for j in 1..=k {
            let lemmas = std::mem::take(&mut self.levels[j].lemmas);
            let mut kept = Vec::new();
            for lemma in lemmas {
                let mut assumps = self.act_assumps(j);
                for &(idx, val) in &lemma {
                    let at_t1 = self.bits[idx as usize].at_t1;
                    let l = self.encoder.lit(&self.aig, at_t1);
                    assumps.push(if val { l } else { !l });
                }
                match self.solve(&assumps) {
                    Err(o) => {
                        // Put the lemma back before bailing so the frame
                        // stack retires consistently.
                        kept.push(lemma);
                        self.levels[j].lemmas.extend(kept);
                        return Err(o);
                    }
                    Ok(SolveResult::Unsat) => {
                        self.insert_lemma(lemma, j + 1);
                        self.stats.pushes += 1;
                    }
                    Ok(SolveResult::Sat) => kept.push(lemma),
                }
            }
            self.levels[j].lemmas = kept;
            if self.levels[j].lemmas.is_empty() {
                return Ok(Some(j));
            }
        }
        Ok(None)
    }

    /// Adds `cube`'s blocking clause at `lvl` (both to the solver, under
    /// the level's activation literal, and to the level's lemma list).
    fn insert_lemma(&mut self, cube: Cube, lvl: usize) {
        let act = self.levels[lvl].act;
        let mut clause = vec![act.negative()];
        for &(idx, val) in &cube {
            let sat_t = self.bits[idx as usize].sat_t;
            clause.push(if val { !sat_t } else { sat_t });
        }
        self.encoder.add_clause(&clause);
        self.levels[lvl].lemmas.push(cube);
    }

    /// Activation assumptions for frame `from` (delta encoding: every
    /// level at or above `from`).
    fn act_assumps(&self, from: usize) -> Vec<Lit> {
        self.levels[from..]
            .iter()
            .map(|level| level.act.positive())
            .collect()
    }

    /// One budgeted solver call, with global query accounting. Budget
    /// exhaustion — per query or total — is a deterministic divergence.
    fn solve(&mut self, assumps: &[Lit]) -> Result<SolveResult, Ic3Outcome> {
        self.queries += 1;
        if self.queries > IC3_TOTAL_QUERY_BUDGET {
            return Err(Ic3Outcome::Diverged);
        }
        let spent = self
            .encoder
            .solver()
            .stats()
            .conflicts
            .saturating_sub(self.conflicts_at_prove);
        if spent > IC3_TOTAL_CONFLICT_BUDGET {
            return Err(Ic3Outcome::Diverged);
        }
        match self
            .encoder
            .solve_with_budget(assumps, IC3_QUERY_CONFLICT_BUDGET)
        {
            None => Err(Ic3Outcome::Diverged),
            Some(r) => Ok(r),
        }
    }

    /// The full `t`-state cube of the current SAT model (bits the solver
    /// left unassigned are omitted — any value works for them).
    fn model_cube(&self) -> Cube {
        let mut cube = Vec::new();
        for (i, bit) in self.bits.iter().enumerate() {
            if let Some(v) = self.encoder.model_value(bit.at_t) {
                cube.push((i as u32, v));
            }
        }
        cube
    }

    /// `true` iff some literal of `cube` differs from the reset state.
    fn init_disjoint(&self, cube: &Cube) -> bool {
        cube.iter()
            .any(|&(idx, val)| val != self.bits[idx as usize].reset)
    }

    /// Seeds the ternary simulator from the current SAT model: inputs at
    /// their model values, state bits at `cube`'s values, everything else
    /// unknown.
    fn seed_ternary(&mut self, cube: &Cube) {
        for i in 0..self.input_lits.len() {
            let l = self.input_lits[i];
            self.tern_preset[l.node()] = match self.encoder.model_value(l) {
                Some(true) => T_TRUE,
                Some(false) => T_FALSE,
                None => T_X,
            };
        }
        for bit in &self.bits {
            self.tern_preset[bit.at_t.node()] = T_X;
        }
        for &(idx, val) in cube {
            let node = self.bits[idx as usize].at_t.node();
            self.tern_preset[node] = if val { T_TRUE } else { T_FALSE };
        }
    }

    /// Drops cube literals whose removal keeps every requirement literal
    /// ternary-definite at its required value, never dropping the last
    /// reset-differing literal. Fixed order, budgeted.
    fn ternary_shrink(&mut self, cube: &mut Cube, req: &[(AigLit, bool)]) {
        if cube.len() <= 1 || req.is_empty() {
            return;
        }
        let limit = req.iter().map(|&(l, _)| l.node()).max().unwrap_or(0) + 1;
        let pass_cost = limit as u64;
        if self.tern_visits + pass_cost > IC3_TERNARY_VISIT_BUDGET {
            return;
        }
        ternary_pass(&self.aig, &self.tern_preset, &mut self.tern_values, limit);
        self.tern_visits += pass_cost;
        if !req_holds(&self.tern_values, req) {
            // Unassigned model bits already make the requirement
            // indefinite; nothing can be dropped on top of that.
            return;
        }
        let mut diff_count = cube
            .iter()
            .filter(|&&(idx, val)| val != self.bits[idx as usize].reset)
            .count();
        let mut i = 0;
        while i < cube.len() && cube.len() > 1 {
            let (idx, val) = cube[i];
            let is_diff = val != self.bits[idx as usize].reset;
            if is_diff && diff_count == 1 {
                i += 1;
                continue;
            }
            if self.tern_visits + pass_cost > IC3_TERNARY_VISIT_BUDGET {
                break;
            }
            let node = self.bits[idx as usize].at_t.node();
            self.tern_preset[node] = T_X;
            ternary_pass(&self.aig, &self.tern_preset, &mut self.tern_values, limit);
            self.tern_visits += pass_cost;
            if req_holds(&self.tern_values, req) {
                cube.remove(i);
                if is_diff {
                    diff_count -= 1;
                }
                self.stats.generalization_drops += 1;
            } else {
                self.tern_preset[node] = if val { T_TRUE } else { T_FALSE };
                i += 1;
            }
        }
    }
}

/// Converts a blocked cube into its relational clause (the negation).
fn cube_to_clause(bits: &[StateBit], cube: &Cube) -> RelationalClause {
    RelationalClause {
        lits: cube
            .iter()
            .map(|&(idx, val)| {
                let b = &bits[idx as usize];
                RelationalLit {
                    reg: b.reg,
                    inst: b.inst,
                    bit: b.bit,
                    positive: !val,
                }
            })
            .collect(),
    }
}

/// Three-valued AND over `{0, 1, X}`.
fn tand(a: u8, b: u8) -> u8 {
    if a == T_FALSE || b == T_FALSE {
        T_FALSE
    } else if a == T_TRUE && b == T_TRUE {
        T_TRUE
    } else {
        T_X
    }
}

/// Three-valued literal read (complement maps X to X).
fn tlit(values: &[u8], lit: AigLit) -> u8 {
    let v = values[lit.node()];
    if lit.is_complemented() {
        match v {
            T_FALSE => T_TRUE,
            T_TRUE => T_FALSE,
            _ => T_X,
        }
    } else {
        v
    }
}

/// One forward three-valued evaluation pass over nodes `[0, limit)`.
/// Fanins precede their AND gates (the AIG is built topologically), so a
/// single sweep settles every node.
fn ternary_pass(aig: &Aig, preset: &[u8], values: &mut [u8], limit: usize) {
    if limit == 0 {
        return;
    }
    values[0] = T_FALSE;
    for node in 1..limit {
        values[node] = match aig.and_fanins(node) {
            Some((a, b)) => tand(tlit(values, a), tlit(values, b)),
            None => preset[node],
        };
    }
}

/// `true` iff every requirement literal is ternary-definite at its
/// required value.
fn req_holds(values: &[u8], req: &[(AigLit, bool)]) -> bool {
    req.iter()
        .all(|&(l, v)| tlit(values, l) == if v { T_TRUE } else { T_FALSE })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// Leaks only while `mask` is 1 — but `mask` resets to 0 and never
    /// changes, so the leak is unreachable. 1-step induction cannot see
    /// that (its symbolic `t` state includes `mask = 1`); IC3 derives the
    /// strengthening `mask0 = 0 ∧ mask1 = 0`.
    fn masked_leak() -> Module {
        let mut b = ModuleBuilder::new("masked");
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let acc = b.reg("acc", 4, 0);
        b.set_next(acc, d).expect("drive");
        let a = b.sig(acc);
        let mask = b.reg("mask", 1, 0);
        let m = b.sig(mask);
        b.set_next(mask, m).expect("drive");
        let zero = b.lit(4, 0);
        let gated = b.mux(m, a, zero);
        let leak = b.red_or(gated);
        b.control_output("leak", leak);
        b.build().expect("valid")
    }

    /// Genuinely leaky: the control output reads data state directly.
    fn leaky() -> Module {
        let mut b = ModuleBuilder::new("leak");
        let data = b.data_input("data", 2);
        let d = b.sig(data);
        let acc = b.reg("acc", 2, 0);
        b.set_next(acc, d).expect("drive");
        let a = b.sig(acc);
        let low = b.bit(a, 0);
        b.control_output("tap", low);
        b.build().expect("valid")
    }

    /// A free-running counter drives the only control output; IC3 must
    /// derive the relational equality `cnt0 = cnt1` bit by bit.
    fn counter() -> Module {
        let mut b = ModuleBuilder::new("cnt");
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let acc = b.reg("acc", 4, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        let cnt = b.reg("cnt", 3, 0);
        let c = b.sig(cnt);
        let one = b.lit(3, 1);
        let inc = b.add(c, one);
        b.set_next(cnt, inc).expect("drive");
        let busy = b.eq_lit(c, 0);
        b.control_output("busy", busy);
        b.build().expect("valid")
    }

    #[test]
    fn masked_leak_is_not_inductive_but_ic3_proves_it() {
        let m = masked_leak();
        let mask = m.signal_by_name("mask").expect("mask");
        // Reference: 1-step induction rejects Z' = {mask}.
        let mut upec = crate::Upec2Safety::new(&m, &crate::UpecSpec::default());
        assert!(!upec.check(&[mask]).holds(), "induction must fail");
        // IC3 proves it with a reset-true invariant.
        let mut ic3 = Ic3Engine::new(&m);
        match ic3.prove(&[mask]) {
            Ic3Outcome::Proved(inv) => {
                assert!(!inv.clauses.is_empty());
                assert!(inv.holds_at_reset(&m));
                assert!(inv.is_well_formed(&m));
            }
            other => panic!("expected proof, got {other:?}"),
        }
        let stats = ic3.stats();
        assert!(stats.lemmas > 0);
        assert!(stats.frames > 0);
        assert!(stats.ctis > 0);
    }

    #[test]
    fn leaky_design_yields_a_counterexample() {
        let m = leaky();
        let mut ic3 = Ic3Engine::new(&m);
        assert_eq!(ic3.prove(&[]), Ic3Outcome::Counterexample);
    }

    #[test]
    fn counter_equality_invariant_is_derived() {
        let m = counter();
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut ic3 = Ic3Engine::new(&m);
        match ic3.prove(&[cnt]) {
            Ic3Outcome::Proved(inv) => {
                assert!(inv.holds_at_reset(&m));
                // The strengthening must tie the two counter instances
                // together: some clause mentions both instances.
                assert!(inv
                    .clauses
                    .iter()
                    .any(|c| c.lits.iter().any(|l| l.inst == 0)
                        && c.lits.iter().any(|l| l.inst == 1)));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn prove_is_deterministic_and_repeatable() {
        let m = masked_leak();
        let mask = m.signal_by_name("mask").expect("mask");
        let run = || {
            let mut ic3 = Ic3Engine::new(&m);
            let out = ic3.prove(&[mask]);
            (out, ic3.stats())
        };
        let (o1, s1) = run();
        let (o2, s2) = run();
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        // A second prove on the same engine still proves (frames are
        // retired between calls). Its lemmas may differ — the solver
        // carries learned clauses — but that sequence is itself replayed
        // identically on every run, which is what the fresh-engine
        // equality above pins down.
        let mut ic3 = Ic3Engine::new(&m);
        assert!(matches!(ic3.prove(&[mask]), Ic3Outcome::Proved(_)));
        assert!(matches!(ic3.prove(&[mask]), Ic3Outcome::Proved(_)));
    }

    #[test]
    fn planted_non_invariant_clause_fails_reset_check() {
        let m = masked_leak();
        let state_ids = m.state_signals();
        let mask_pos = state_ids
            .iter()
            .position(|&r| m.signal(r).name == "mask")
            .expect("mask position");
        // "mask0 is 1" is false at reset.
        let planted = RelationalInvariant {
            clauses: vec![RelationalClause {
                lits: vec![RelationalLit {
                    reg: mask_pos,
                    inst: 0,
                    bit: 0,
                    positive: true,
                }],
            }],
        };
        assert!(!planted.holds_at_reset(&m));
        // Out-of-range literals are rejected as malformed.
        let malformed = RelationalInvariant {
            clauses: vec![RelationalClause {
                lits: vec![RelationalLit {
                    reg: state_ids.len(),
                    inst: 0,
                    bit: 0,
                    positive: true,
                }],
            }],
        };
        assert!(!malformed.is_well_formed(&m));
    }

    #[test]
    fn engine_name_round_trips() {
        for e in [UpecEngine::Induction, UpecEngine::Ic3] {
            assert_eq!(e.to_string().parse::<UpecEngine>(), Ok(e));
        }
        assert!("pdr".parse::<UpecEngine>().is_err());
        assert_eq!(UpecEngine::default(), UpecEngine::Induction);
    }
}
