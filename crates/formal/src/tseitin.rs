//! Tseitin encoding of AIG cones into a CDCL solver.
//!
//! [`CnfEncoder`] maps AIG literals to SAT literals lazily: only the cone
//! of influence of the literals the caller asks about is encoded, and each
//! node is encoded once even across multiple queries (the UPEC engine
//! relies on this for its incremental fixed-point loop).

use crate::aig::{Aig, AigLit};
use fastpath_sat::{Lit, Proof, SolveResult, Solver, Var};

/// An incremental AIG→CNF encoder wrapping a [`Solver`].
#[derive(Debug)]
pub struct CnfEncoder {
    solver: Solver,
    node_vars: Vec<Option<Var>>,
}

impl Default for CnfEncoder {
    fn default() -> Self {
        CnfEncoder::new()
    }
}

impl CnfEncoder {
    /// Creates an empty encoder.
    ///
    /// Bounded variable elimination is switched off on the underlying
    /// solver: the refinement loop keeps encoding new cone slices over
    /// variables a previous pass may have eliminated, and every such
    /// `add_clause` forces a restore that permanently freezes the
    /// variable — the eliminate/restore churn (plus the resolvents it
    /// leaves behind) costs far more than elimination saves on this
    /// incremental workload. The other inprocessing techniques
    /// (vivification, subsumption, root simplification) stay on.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        solver.set_variable_elimination(false);
        // Width 1 from the start: see `set_portfolio`.
        solver.set_portfolio(1);
        CnfEncoder {
            solver,
            node_vars: Vec::new(),
        }
    }

    /// Access to the underlying solver (e.g. for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Number of solver variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of original (non-learnt, non-deleted) clauses in the
    /// solver. Learned clauses are excluded, so before/after snapshots
    /// measure exactly what an encoding step added.
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Turns on DRUP proof logging on the underlying solver. Must be
    /// called before anything is encoded (see
    /// [`fastpath_sat::Solver::enable_proof_logging`]).
    pub fn enable_proof_logging(&mut self) {
        self.solver.enable_proof_logging();
    }

    /// Turns on the proof trace's buffered DRUP text renderer (see
    /// [`fastpath_sat::Solver::enable_proof_text`]); a no-op until
    /// proof logging is enabled.
    pub fn enable_proof_text(&mut self) {
        self.solver.enable_proof_text();
    }

    /// The solver's proof trace, if logging is enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.solver.proof()
    }

    /// The current proof-trace length (0 when logging is disabled).
    pub fn proof_len(&self) -> usize {
        self.solver.proof_len()
    }

    /// The raw SAT model of the most recent satisfiable solve, indexed by
    /// solver variable.
    pub fn model(&self) -> &[bool] {
        self.solver.model()
    }

    /// Configures a parallel solver portfolio of `workers` diversified
    /// workers for every subsequent solve. `0` and `1` both mean "no
    /// race", but the encoder never drops below width 1: the UPEC
    /// engine's verdict trajectory must be byte-identical at every
    /// width, and width 1 (a lone speculative clone whose state is
    /// adopted only on SAT) is the canonical trajectory a width-`N`
    /// race reproduces. See [`fastpath_sat::Solver::set_portfolio`].
    pub fn set_portfolio(&mut self, workers: usize) {
        self.solver.set_portfolio(workers.max(1));
    }

    /// Sets the cube-and-conquer scheduling width on the underlying
    /// solver (`0` disables cubing; see [`fastpath_sat::Solver::set_cube`]
    /// for the determinism rules — results are identical for every
    /// non-zero width).
    pub fn set_cube(&mut self, jobs: usize) {
        self.solver.set_cube(jobs);
    }

    /// Sets the conflict budget of the canonical attempt that precedes
    /// any cube split (see [`fastpath_sat::Solver::set_cube_trigger`]).
    pub fn set_cube_trigger(&mut self, conflicts: u64) {
        self.solver.set_cube_trigger(conflicts);
    }

    /// RUP-probes an externally supplied clause against the underlying
    /// solver and imports it on success (see
    /// [`fastpath_sat::Solver::import_clause`]). Must be called between
    /// solves.
    pub fn import_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.import_clause(lits)
    }

    /// The SAT variable already encoding an AIG node, if its cone has
    /// been Tseitin-encoded; never encodes anything. The clause-store
    /// import/export paths use this to translate between cone-local
    /// numberings and solver variables without forcing elaboration.
    pub fn node_sat_var(&self, node: usize) -> Option<Var> {
        *self.node_vars.get(node)?
    }

    /// Visits every live learnt clause of length at most `max_len` on
    /// the underlying solver (see
    /// [`fastpath_sat::Solver::for_each_learnt`]).
    pub fn for_each_learnt(&self, max_len: usize, f: impl FnMut(&[Lit])) {
        self.solver.for_each_learnt(max_len, f);
    }

    /// Allocates a fresh, unconstrained SAT variable (for selectors,
    /// activation guards etc.). The variable is frozen: guards recur as
    /// assumptions and retirement units across checks, so inprocessing
    /// must never eliminate them.
    pub fn fresh_var(&mut self) -> Var {
        let v = self.solver.new_var();
        self.solver.freeze(v);
        v
    }

    /// Adds a clause over SAT literals directly.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
    }

    /// Returns the SAT literal equisatisfiably representing `lit`,
    /// Tseitin-encoding its cone on first use.
    ///
    /// The returned variable is frozen: it is a cone *interface*
    /// variable the caller holds a handle to (for assumptions, monitor
    /// clauses, or model inspection across later checks), so bounded
    /// variable elimination must keep it. Interior Tseitin variables of
    /// the cone stay eliminable.
    pub fn lit(&mut self, aig: &Aig, lit: AigLit) -> Lit {
        let var = self.node_var(aig, lit.node());
        self.solver.freeze(var);
        var.lit(!lit.is_complemented())
    }

    fn node_var(&mut self, aig: &Aig, node: usize) -> Var {
        if self.node_vars.len() < aig.node_count() {
            self.node_vars.resize(aig.node_count(), None);
        }
        if let Some(v) = self.node_vars[node] {
            return v;
        }
        // Iterative DFS to avoid recursion depth issues on deep AIGs.
        let mut stack = vec![(node, false)];
        while let Some((n, expanded)) = stack.pop() {
            if self.node_vars[n].is_some() {
                continue;
            }
            match aig.and_fanins(n) {
                None => {
                    // Input or constant node.
                    let v = self.solver.new_var();
                    if n == 0 {
                        // Node 0 is the constant FALSE.
                        self.solver.add_clause(&[v.negative()]);
                    }
                    self.node_vars[n] = Some(v);
                }
                Some((a, b)) => {
                    if !expanded {
                        stack.push((n, true));
                        if self.node_vars[a.node()].is_none() {
                            stack.push((a.node(), false));
                        }
                        if self.node_vars[b.node()].is_none() {
                            stack.push((b.node(), false));
                        }
                    } else {
                        let va = self.node_vars[a.node()].expect("fanin a encoded");
                        let vb = self.node_vars[b.node()].expect("fanin b encoded");
                        let la = va.lit(!a.is_complemented());
                        let lb = vb.lit(!b.is_complemented());
                        let v = self.solver.new_var();
                        // v <-> (la & lb)
                        self.solver.add_clause(&[v.negative(), la]);
                        self.solver.add_clause(&[v.negative(), lb]);
                        self.solver.add_clause(&[v.positive(), !la, !lb]);
                        self.node_vars[n] = Some(v);
                    }
                }
            }
        }
        self.node_vars[node].expect("node encoded")
    }

    /// Asserts that an AIG literal is true (a hard constraint).
    pub fn assert_true(&mut self, aig: &Aig, lit: AigLit) {
        let l = self.lit(aig, lit);
        self.solver.add_clause(&[l]);
    }

    /// Solves under SAT-literal assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }

    /// Solves under SAT-literal assumptions with a conflict budget;
    /// `None` when the budget ran out before an answer. See
    /// [`Solver::solve_with_budget`].
    pub fn solve_with_budget(
        &mut self,
        assumptions: &[Lit],
        conflict_budget: u64,
    ) -> Option<SolveResult> {
        self.solver.solve_with_budget(assumptions, conflict_budget)
    }

    /// The model value of an already-encoded AIG literal after a SAT
    /// result. `None` if the literal's cone was never encoded.
    pub fn model_value(&self, lit: AigLit) -> Option<bool> {
        let var = (*self.node_vars.get(lit.node())?)?;
        let v = self.solver.value(var)?;
        Some(v ^ lit.is_complemented())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_simple_cone() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.and(a, b);
        let mut enc = CnfEncoder::new();
        enc.assert_true(&aig, c);
        assert_eq!(enc.solve_with(&[]), SolveResult::Sat);
        assert_eq!(enc.model_value(a), Some(true));
        assert_eq!(enc.model_value(b), Some(true));
        assert_eq!(enc.model_value(c), Some(true));
    }

    #[test]
    fn constant_false_is_respected() {
        let mut aig = Aig::new();
        let a = aig.input();
        let never = aig.and(a, AigLit::FALSE);
        assert_eq!(never, AigLit::FALSE);
        let mut enc = CnfEncoder::new();
        enc.assert_true(&aig, never);
        assert_eq!(enc.solve_with(&[]), SolveResult::Unsat);
    }

    #[test]
    fn xor_unsat_when_forced_equal() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        let same = aig.xnor(a, b);
        let mut enc = CnfEncoder::new();
        enc.assert_true(&aig, x);
        enc.assert_true(&aig, same);
        assert_eq!(enc.solve_with(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_toggle_behaviour() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        let mut enc = CnfEncoder::new();
        let la = enc.lit(&aig, a);
        let lb = enc.lit(&aig, b);
        let lx = enc.lit(&aig, x);
        assert_eq!(enc.solve_with(&[lx, la, lb]), SolveResult::Unsat);
        assert_eq!(enc.solve_with(&[lx, la, !lb]), SolveResult::Sat);
        assert_eq!(enc.solve_with(&[!lx, la, lb]), SolveResult::Sat);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut aig = Aig::new();
        let mut acc = aig.input();
        let mut keep = Vec::new();
        for _ in 0..50_000 {
            let x = aig.input();
            keep.push(x);
            acc = aig.and(acc, x);
        }
        let mut enc = CnfEncoder::new();
        enc.assert_true(&aig, acc);
        assert_eq!(enc.solve_with(&[]), SolveResult::Sat);
    }
}
