//! The UPEC-DIT 2-safety inductive engine (paper Sec. III-C / IV-C).
//!
//! [`Upec2Safety`] builds the 2-safety computational model once: two
//! instances of the design under verification, both starting from a fully
//! *symbolic* state at time `t` (implicitly modelling every reachable — and
//! some unreachable — histories), with
//!
//! - control inputs `X_C` **shared** between the instances (equality by
//!   construction),
//! - data inputs `X_D` free and independent per instance,
//! - software constraints asserted on both instances during `[t, t+1]`,
//! - invariants asserted at `t` (property refinements against spurious
//!   counterexamples from the symbolic state).
//!
//! [`Upec2Safety::check`] then decides the key property of the paper's
//! Listing 1 for a given candidate partitioning `Z'`:
//!
//! ```text
//! assume  at t:        two_safety_eq(Z')
//! assume  during:      software_constraints()
//! prove   at t+1:      two_safety_eq(Z')
//! prove   during:      two_safety_eq(Y_C)
//! ```
//!
//! Each call is a single incremental SAT query (the paper reports <10 s per
//! check; here it is milliseconds on the bundled designs) using selector
//! assumptions, so the iterative refinement loop never re-encodes the model.

use crate::aig::{Aig, AigLit};
use crate::blast::{build_frame_with_leaves, next_state, Frame};
use crate::tseitin::CnfEncoder;
use crate::words::eq_word;
use fastpath_rtl::{
    BitVec, ExprId, Module, SignalId, SignalKind, SignalRole,
};
use fastpath_sat::{Lit, SolveResult};

/// Declarative inputs to the 2-safety model beyond the module itself.
#[derive(Clone, Debug, Default)]
pub struct UpecSpec {
    /// 1-bit expressions that must hold on both instances in both frames
    /// (the derived software usage constraints).
    pub software_constraints: Vec<ExprId>,
    /// 1-bit expressions assumed at time `t` on both instances to exclude
    /// unreachable symbolic states.
    pub invariants: Vec<ExprId>,
    /// Conditional 2-safety equalities `(cond, signal)`: *assumed* at `t`
    /// and *proven* at `t+1` — whenever `cond` holds in both instances,
    /// `signal` is equal between them. These express facts like "the
    /// operand buffer is equal whenever its secrecy flag is clear", which
    /// single-instance invariants cannot state.
    pub conditional_equalities: Vec<(ExprId, SignalId)>,
}

/// Witness values for one state signal in a counterexample.
#[derive(Clone, Debug)]
pub struct StateWitness {
    /// The signal.
    pub signal: SignalId,
    /// Value in instance 1 at time `t`.
    pub inst0: BitVec,
    /// Value in instance 2 at time `t`.
    pub inst1: BitVec,
}

/// A failed 2-safety check: something observable diverged.
#[derive(Clone, Debug)]
pub struct UpecCounterexample {
    /// State signals in `Z'` that differ between the instances at `t+1`.
    pub divergent_state: Vec<SignalId>,
    /// Control outputs that differ in `[t, t+1]`.
    pub divergent_outputs: Vec<SignalId>,
    /// Values of every state signal at time `t` in both instances.
    pub state_values: Vec<StateWitness>,
    /// Values of every primary input at time `t` in both instances
    /// (control inputs are equal by construction).
    pub input_values_t: Vec<StateWitness>,
    /// Values of every primary input at time `t+1` in both instances.
    pub input_values_t1: Vec<StateWitness>,
    /// Conditional equalities (by index into the spec) whose *proof
    /// obligation* failed at `t+1` in this counterexample.
    pub violated_cond_eqs: Vec<usize>,
}

/// Outcome of one inductive check.
#[derive(Clone, Debug)]
pub enum UpecOutcome {
    /// The property holds: `Z'` is a fixed point and `Y_C` never diverges.
    Holds,
    /// The property fails with the given witness.
    Counterexample(UpecCounterexample),
}

impl UpecOutcome {
    /// `true` for [`UpecOutcome::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, UpecOutcome::Holds)
    }
}

/// The 2-safety UPEC-DIT model over one module.
///
/// Each [`check`](Self::check) elaborates a fresh 2-safety model in which
/// the registers of the candidate partitioning `Z'` are *shared* between
/// the two instances (equality by construction, exactly UPEC's
/// computational model: only the tracked difference is free). Structural
/// hashing then collapses the identical parts of the two cones, so the
/// difference monitors of unaffected signals fold to constant false and
/// the SAT instance only contains logic genuinely influenced by the data.
#[derive(Debug)]
pub struct Upec2Safety<'m> {
    module: &'m Module,
    spec: UpecSpec,
    /// Artifacts of the most recent check (for witness extraction).
    aig: Aig,
    encoder: CnfEncoder,
    state_bits_t: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
    input_bits_t: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
    input_bits_t1: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
    last_aig_nodes: usize,
    checks: u64,
    stats: fastpath_sat::SolverStats,
}

impl<'m> Upec2Safety<'m> {
    /// Creates the engine for a module and its specification.
    ///
    /// Inputs whose role is neither `DataIn` nor `DataOut` (including
    /// unannotated ones) are treated as control and shared between the
    /// instances — "everything not confidential is attacker-controlled".
    pub fn new(module: &'m Module, spec: &UpecSpec) -> Self {
        Upec2Safety {
            module,
            spec: spec.clone(),
            aig: Aig::new(),
            encoder: CnfEncoder::new(),
            state_bits_t: Vec::new(),
            input_bits_t: Vec::new(),
            input_bits_t1: Vec::new(),
            last_aig_nodes: 0,
            checks: 0,
            stats: fastpath_sat::SolverStats::default(),
        }
    }

    /// The number of `check` calls performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Solver statistics accumulated over all checks.
    pub fn solver_stats(&self) -> fastpath_sat::SolverStats {
        self.stats
    }

    /// Size of the most recent check's AIG (elaboration cost indicator).
    pub fn aig_nodes(&self) -> usize {
        self.last_aig_nodes
    }

    /// Runs the inductive property of Listing 1 for the candidate
    /// partitioning `z_prime`.
    ///
    /// Returns [`UpecOutcome::Holds`] iff, assuming all signals of
    /// `z_prime` equal at `t` (plus constraints/invariants), no signal of
    /// `z_prime` differs at `t+1` and no control output differs during
    /// `[t, t+1]`.
    pub fn check(&mut self, z_prime: &[SignalId]) -> UpecOutcome {
        self.check_internal(z_prime, true)
    }

    /// Like [`check`](Self::check) but only monitors the `Z'` next-state
    /// equalities, not the control outputs. The original UPEC-DIT
    /// iterative-partitioning procedure inspects internal propagations in
    /// discovery order before concluding anything about the outputs; the
    /// formal-only baseline uses this mode for its inner iterations.
    pub fn check_state_only(&mut self, z_prime: &[SignalId]) -> UpecOutcome {
        self.check_internal(z_prime, false)
    }

    fn check_internal(
        &mut self,
        z_prime: &[SignalId],
        include_outputs: bool,
    ) -> UpecOutcome {
        self.checks += 1;
        let module = self.module;
        let in_z: Vec<bool> = {
            let mut v = vec![false; module.signal_count()];
            for &z in z_prime {
                v[z.index()] = true;
            }
            v
        };

        let mut aig = Aig::new();
        let n = module.signal_count();

        // --- leaves at time t: Z' registers shared, others split ---------
        let mut leaves0: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut leaves1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut state_bits_t = Vec::new();
        let mut input_bits_t = Vec::new();
        let mut input_bits_t1 = Vec::new();
        for (id, signal) in module.signals() {
            match signal.kind {
                SignalKind::Register => {
                    let b0: Vec<AigLit> =
                        (0..signal.width).map(|_| aig.input()).collect();
                    let b1: Vec<AigLit> = if in_z[id.index()] {
                        b0.clone()
                    } else {
                        (0..signal.width).map(|_| aig.input()).collect()
                    };
                    state_bits_t.push((id, b0.clone(), b1.clone()));
                    leaves0[id.index()] = b0;
                    leaves1[id.index()] = b1;
                }
                SignalKind::Input => {
                    let (b0, b1) =
                        alloc_input(&mut aig, signal.role, signal.width);
                    input_bits_t.push((id, b0.clone(), b1.clone()));
                    leaves0[id.index()] = b0;
                    leaves1[id.index()] = b1;
                }
                _ => {}
            }
        }
        let frame0_t = build_frame_with_leaves(&mut aig, module, leaves0);
        let frame1_t = build_frame_with_leaves(&mut aig, module, leaves1);

        // --- transition to t+1 -------------------------------------------
        let next0 = next_state(&mut aig, module, &frame0_t);
        let next1 = next_state(&mut aig, module, &frame1_t);
        let state_ids = module.state_signals();
        let mut leaves0_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut leaves1_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        for (reg, (n0, n1)) in
            state_ids.iter().zip(next0.iter().zip(next1.iter()))
        {
            leaves0_t1[reg.index()] = n0.clone();
            leaves1_t1[reg.index()] = n1.clone();
        }
        for (id, signal) in module.signals() {
            if signal.kind == SignalKind::Input {
                let (b0, b1) =
                    alloc_input(&mut aig, signal.role, signal.width);
                input_bits_t1.push((id, b0.clone(), b1.clone()));
                leaves0_t1[id.index()] = b0;
                leaves1_t1[id.index()] = b1;
            }
        }
        let frame0_t1 = build_frame_with_leaves(&mut aig, module, leaves0_t1);
        let frame1_t1 = build_frame_with_leaves(&mut aig, module, leaves1_t1);

        // --- constraints, invariants, conditional equalities --------------
        let mut encoder = CnfEncoder::new();
        for &constraint in &self.spec.software_constraints {
            for frame in [&frame0_t, &frame1_t, &frame0_t1, &frame1_t1] {
                let lit = blast_predicate(&mut aig, module, frame, constraint);
                encoder.assert_true(&aig, lit);
            }
        }
        for &invariant in &self.spec.invariants {
            for frame in [&frame0_t, &frame1_t] {
                let lit = blast_predicate(&mut aig, module, frame, invariant);
                encoder.assert_true(&aig, lit);
            }
        }
        let mut cond_eq_violation = Vec::new();
        for &(cond, signal) in &self.spec.conditional_equalities {
            let c0 = blast_predicate(&mut aig, module, &frame0_t, cond);
            let c1 = blast_predicate(&mut aig, module, &frame1_t, cond);
            let both = aig.and(c0, c1);
            let eq = eq_word(
                &mut aig,
                frame0_t.signal(signal),
                frame1_t.signal(signal),
            );
            let implied = {
                let nb = !both;
                aig.or(nb, eq)
            };
            encoder.assert_true(&aig, implied);
            let c0n = blast_predicate(&mut aig, module, &frame0_t1, cond);
            let c1n = blast_predicate(&mut aig, module, &frame1_t1, cond);
            let bothn = aig.and(c0n, c1n);
            let idx = state_ids
                .iter()
                .position(|&r| r == signal)
                .expect("conditional equality must target a register");
            let eqn = eq_word(&mut aig, &next0[idx], &next1[idx]);
            let viol = {
                let ne = !eqn;
                aig.and(bothn, ne)
            };
            cond_eq_violation.push(viol);
        }

        // --- monitors ------------------------------------------------------
        let mut diff_next = Vec::new();
        for (i, &reg) in state_ids.iter().enumerate() {
            if in_z[reg.index()] {
                let eq_next = eq_word(&mut aig, &next0[i], &next1[i]);
                diff_next.push((reg, !eq_next));
            }
        }
        let mut diff_out = Vec::new();
        for y in module.control_outputs() {
            let eq_a =
                eq_word(&mut aig, frame0_t.signal(y), frame1_t.signal(y));
            let eq_b = eq_word(
                &mut aig,
                frame0_t1.signal(y),
                frame1_t1.signal(y),
            );
            let both = aig.and(eq_a, eq_b);
            diff_out.push((y, !both));
        }

        // --- solve ----------------------------------------------------------
        let mut monitored: Vec<Lit> = Vec::new();
        let mut monitor_map: Vec<(usize, AigLit)> = Vec::new();
        for (k, &(_, d)) in diff_next.iter().enumerate() {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(&aig, d));
                monitor_map.push((k, d));
            }
        }
        if include_outputs {
            for &(_, d) in &diff_out {
                if d != AigLit::FALSE {
                    monitored.push(encoder.lit(&aig, d));
                }
            }
        }
        for &d in &cond_eq_violation {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(&aig, d));
            }
        }
        self.last_aig_nodes = aig.node_count();

        let outcome = if monitored.is_empty() {
            SolveResult::Unsat
        } else {
            encoder.add_clause(&monitored);
            encoder.solve_with(&[])
        };
        let result = match outcome {
            SolveResult::Unsat => UpecOutcome::Holds,
            SolveResult::Sat => {
                let divergent_state = diff_next
                    .iter()
                    .filter(|&&(_, l)| {
                        encoder.model_value(l).unwrap_or(false)
                    })
                    .map(|&(s, _)| s)
                    .collect();
                // Outputs are only meaningful monitors when requested; in
                // state-only mode their cones may coincide with encoded
                // state cones, which would misreport them as targets.
                let divergent_outputs = if include_outputs {
                    diff_out
                        .iter()
                        .filter(|&&(_, l)| {
                            encoder.model_value(l).unwrap_or(false)
                        })
                        .map(|&(s, _)| s)
                        .collect()
                } else {
                    Vec::new()
                };
                let violated_cond_eqs = cond_eq_violation
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| {
                        encoder.model_value(l).unwrap_or(false)
                    })
                    .map(|(i, _)| i)
                    .collect();
                let witness = |bits: &[(SignalId, Vec<AigLit>, Vec<AigLit>)]| {
                    bits.iter()
                        .map(|(s, b0, b1)| StateWitness {
                            signal: *s,
                            inst0: word_value(&encoder, b0),
                            inst1: word_value(&encoder, b1),
                        })
                        .collect::<Vec<_>>()
                };
                UpecOutcome::Counterexample(UpecCounterexample {
                    divergent_state,
                    divergent_outputs,
                    state_values: witness(&state_bits_t),
                    input_values_t: witness(&input_bits_t),
                    input_values_t1: witness(&input_bits_t1),
                    violated_cond_eqs,
                })
            }
        };
        let stats = encoder.solver().stats();
        self.stats.conflicts += stats.conflicts;
        self.stats.decisions += stats.decisions;
        self.stats.propagations += stats.propagations;
        self.stats.restarts += stats.restarts;
        self.stats.learnt_clauses += stats.learnt_clauses;
        let _ = monitor_map;
        self.aig = aig;
        self.encoder = encoder;
        self.state_bits_t = state_bits_t;
        self.input_bits_t = input_bits_t;
        self.input_bits_t1 = input_bits_t1;
        result
    }
}

fn word_value(encoder: &CnfEncoder, bits: &[AigLit]) -> BitVec {
    let mut v = BitVec::zero(bits.len().max(1) as u32);
    for (i, &b) in bits.iter().enumerate() {
        if encoder.model_value(b).unwrap_or(false) {
            v.set_bit(i as u32, true);
        }
    }
    v
}

fn alloc_input(
    aig: &mut Aig,
    role: SignalRole,
    width: u32,
) -> (Vec<AigLit>, Vec<AigLit>) {
    match role {
        SignalRole::DataIn => {
            // Confidential: free and independent per instance.
            let b0 = (0..width).map(|_| aig.input()).collect();
            let b1 = (0..width).map(|_| aig.input()).collect();
            (b0, b1)
        }
        _ => {
            // Control (or unannotated): shared, hence equal by construction.
            let shared: Vec<AigLit> =
                (0..width).map(|_| aig.input()).collect();
            (shared.clone(), shared)
        }
    }
}

fn blast_predicate(
    aig: &mut Aig,
    module: &Module,
    frame: &Frame,
    expr: ExprId,
) -> AigLit {
    let word = crate::blast::blast_expr_in_frame(aig, module, frame, expr);
    assert_eq!(word.len(), 1, "constraints and invariants must be 1 bit");
    word[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// Oblivious: output timing driven by a free-running counter.
    fn oblivious() -> Module {
        let mut b = ModuleBuilder::new("obl");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        b.data_output("result", a);
        let cnt = b.reg("cnt", 4, 0);
        let c = b.sig(cnt);
        let one = b.lit(4, 1);
        let inc = b.add(c, one);
        b.set_next(cnt, inc).expect("drive");
        let busy = b.eq_lit(c, 0);
        b.control_output("busy", busy);
        b.build().expect("valid")
    }

    /// Leaky: the control output looks at the (data) accumulator.
    fn leaky() -> Module {
        let mut b = ModuleBuilder::new("leak");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        let odd = b.bit(a, 0);
        b.control_output("parity", odd);
        b.build().expect("valid")
    }

    #[test]
    fn oblivious_design_holds_with_data_state_excluded() {
        let m = oblivious();
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // Z' = {cnt}: acc is known-tainted data state.
        let outcome = upec.check(&[cnt]);
        assert!(outcome.holds(), "{outcome:?}");
    }

    #[test]
    fn full_state_check_finds_data_propagation() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // Baseline starting point: all state in Z'. The data input reaches
        // `acc`, so the check must produce a counterexample diverging there.
        match upec.check(&[acc, cnt]) {
            UpecOutcome::Counterexample(cex) => {
                assert_eq!(cex.divergent_state, vec![acc]);
                assert!(cex.divergent_outputs.is_empty());
            }
            UpecOutcome::Holds => panic!("expected divergence on acc"),
        }
        // After removing acc (the paper's refinement step), it holds.
        assert!(upec.check(&[cnt]).holds());
    }

    #[test]
    fn leaky_design_shows_output_divergence() {
        let m = leaky();
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // acc is data state (excluded); the parity output still reads it.
        match upec.check(&[]) {
            UpecOutcome::Counterexample(cex) => {
                let parity = m.signal_by_name("parity").expect("parity");
                assert_eq!(cex.divergent_outputs, vec![parity]);
            }
            UpecOutcome::Holds => panic!("expected output divergence"),
        }
    }

    #[test]
    fn witness_values_differ_where_expected() {
        let m = leaky();
        let acc = m.signal_by_name("acc").expect("acc");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        let UpecOutcome::Counterexample(cex) = upec.check(&[]) else {
            panic!("expected counterexample");
        };
        let w = cex
            .state_values
            .iter()
            .find(|w| w.signal == acc)
            .expect("acc witness");
        assert_ne!(w.inst0, w.inst1, "acc must differ to flip parity");
    }

    #[test]
    fn software_constraint_can_restore_obliviousness() {
        // A design that leaks only when mode==1; constraining mode==0
        // makes it data-oblivious. Constraint expressions are built in the
        // module's own arena (the pattern the designs crate uses).
        let mut b = ModuleBuilder::new("modal");
        let mode = b.control_input("mode", 1);
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let acc = b.reg("acc", 4, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let m_sig = b.sig(mode);
        let zero = b.lit(4, 0);
        let acc_or_zero = b.mux(m_sig, a, zero);
        let leak_bit = b.red_or(acc_or_zero);
        b.control_output("leak", leak_bit);
        let mode_off = b.eq_lit(m_sig, 0); // the software constraint
        let module = b.build().expect("valid");

        // Unconstrained: leaks even with acc excluded from Z'.
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        assert!(!upec.check(&[]).holds());

        // With the derived constraint `mode == 0`: data-oblivious.
        let spec = UpecSpec {
            software_constraints: vec![mode_off],
            invariants: vec![],
            conditional_equalities: vec![],
        };
        let mut upec = Upec2Safety::new(&module, &spec);
        assert!(upec.check(&[]).holds());
    }

    #[test]
    fn invariant_excludes_spurious_counterexample() {
        // A one-hot FSM: states 01 and 10 are the only reachable encodings,
        // and the control output leaks data only in the unreachable state
        // 11. The symbolic initial state produces a spurious counterexample
        // unless the one-hot invariant is supplied — the paper's
        // "refine the property with an invariant" case.
        let mut b = ModuleBuilder::new("onehot");
        let data = b.data_input("data", 1);
        let d = b.sig(data);
        let state = b.reg("state", 2, 0b01);
        let s = b.sig(state);
        let s0 = b.bit(s, 0);
        let s1 = b.bit(s, 1);
        // 01 <-> 10 toggle.
        let swapped = b.concat(s0, s1);
        b.set_next(state, swapped).expect("drive");
        let data_reg = b.reg("data_reg", 1, 0);
        b.set_next(data_reg, d).expect("drive");
        let dr = b.sig(data_reg);
        let both = b.and(s0, s1);
        let leak = b.and(both, dr);
        b.control_output("leak", leak);
        let onehot = b.xor(s0, s1); // exactly one bit set
        let module = b.build().expect("valid");

        let state_id = module.signal_by_name("state").expect("state");
        // Without the invariant: spurious counterexample from state 11.
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        assert!(!upec.check(&[state_id]).holds());

        // With the one-hot invariant: holds.
        let spec = UpecSpec {
            software_constraints: vec![],
            invariants: vec![onehot],
            conditional_equalities: vec![],
        };
        let mut upec = Upec2Safety::new(&module, &spec);
        assert!(upec.check(&[state_id]).holds());
    }
}
