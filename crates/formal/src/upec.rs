//! The UPEC-DIT 2-safety inductive engine (paper Sec. III-C / IV-C).
//!
//! [`Upec2Safety`] builds the 2-safety computational model once: two
//! instances of the design under verification, both starting from a fully
//! *symbolic* state at time `t` (implicitly modelling every reachable — and
//! some unreachable — histories), with
//!
//! - control inputs `X_C` **shared** between the instances (equality by
//!   construction),
//! - data inputs `X_D` free and independent per instance,
//! - software constraints asserted on both instances during `[t, t+1]`,
//! - invariants asserted at `t` (property refinements against spurious
//!   counterexamples from the symbolic state).
//!
//! [`Upec2Safety::check`] then decides the key property of the paper's
//! Listing 1 for a given candidate partitioning `Z'`:
//!
//! ```text
//! assume  at t:        two_safety_eq(Z')
//! assume  during:      software_constraints()
//! prove   at t+1:      two_safety_eq(Z')
//! prove   during:      two_safety_eq(Y_C)
//! ```
//!
//! # Cached elaboration and incremental solving
//!
//! The refinement loop of Listing 1 calls `check` with a shrinking `Z'`
//! many times on the same design. In the default
//! [`ElaborationMode::Cached`] the engine therefore splits the model into
//! a `Z'`-independent *template* and a cheap per-check *instantiation*:
//!
//! - The template — instance 0's frame at `t`, its next-state functions,
//!   its frame at `t+1`, and the leaf pools for both instances — is
//!   elaborated once per engine lifetime into a persistent AIG.
//! - Each `check` derives instance 1 by **leaf substitution**: a register
//!   in `Z'` reuses instance 0's leaf (equality by construction), every
//!   other register keeps its private split leaf. Re-deriving instance
//!   1's cones over the persistent AIG is mostly structural-hash lookups
//!   (see [`ElaborationStats`]): cones untouched by the substitution hash
//!   to their existing nodes — including collapsing onto instance 0's
//!   cones — and their Tseitin encoding in the persistent CNF is reused
//!   as-is.
//! - One SAT solver lives for the engine's whole lifetime. `Z'`-independent
//!   obligations (constraints and invariants on instance 0) are asserted
//!   once; per-check obligations (everything touching instance 1, plus
//!   the difference monitors) are guarded by a fresh activation literal
//!   `g` and solved under the assumption `g`. Retiring a check is a unit
//!   clause `¬g`, so learned clauses — which are implied by the clause
//!   database alone — stay valid across the whole refinement loop.
//!
//! [`ElaborationMode::Fresh`] re-elaborates everything per check (the
//! pre-caching behaviour); it serves as the reference in equivalence
//! tests and cold-elaboration benchmarks.

use crate::aig::{Aig, AigLit};
use crate::blast::{build_frame_with_leaves, next_state, Frame, LazyFrame};
use crate::certify::{CertStats, CertifiedOutcome, CheckCertificate};
use crate::ic3::RelationalClause;
use crate::reuse::{ClauseStore, MAX_REUSE_CLAUSE_LEN};
use crate::tseitin::CnfEncoder;
use crate::words::eq_word;
use fastpath_cert::{artifacts, CertError, Checker, HintedTracker};
use fastpath_rtl::{
    canonical_form, comb_cone_mask, BitVec, Digest, ExprId, Module, SignalId, SignalKind,
    SignalRole,
};
use fastpath_sat::{Cnf, Lit, SolveResult, SolverStats, Var};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative inputs to the 2-safety model beyond the module itself.
#[derive(Clone, Debug, Default)]
pub struct UpecSpec {
    /// 1-bit expressions that must hold on both instances in both frames
    /// (the derived software usage constraints).
    pub software_constraints: Vec<ExprId>,
    /// 1-bit expressions assumed at time `t` on both instances to exclude
    /// unreachable symbolic states.
    pub invariants: Vec<ExprId>,
    /// Conditional 2-safety equalities `(cond, signal)`: *assumed* at `t`
    /// and *proven* at `t+1` — whenever `cond` holds in both instances,
    /// `signal` is equal between them. These express facts like "the
    /// operand buffer is equal whenever its secrecy flag is clear", which
    /// single-instance invariants cannot state.
    pub conditional_equalities: Vec<(ExprId, SignalId)>,
}

/// Witness values for one state signal in a counterexample.
#[derive(Clone, Debug)]
pub struct StateWitness {
    /// The signal.
    pub signal: SignalId,
    /// Value in instance 1 at time `t`.
    pub inst0: BitVec,
    /// Value in instance 2 at time `t`.
    pub inst1: BitVec,
}

/// A failed 2-safety check: something observable diverged.
#[derive(Clone, Debug)]
pub struct UpecCounterexample {
    /// State signals in `Z'` that differ between the instances at `t+1`.
    pub divergent_state: Vec<SignalId>,
    /// Control outputs that differ in `[t, t+1]`.
    pub divergent_outputs: Vec<SignalId>,
    /// Values of every state signal at time `t` in both instances.
    pub state_values: Vec<StateWitness>,
    /// Values of every primary input at time `t` in both instances
    /// (control inputs are equal by construction).
    pub input_values_t: Vec<StateWitness>,
    /// Values of every primary input at time `t+1` in both instances.
    pub input_values_t1: Vec<StateWitness>,
    /// Conditional equalities (by index into the spec) whose *proof
    /// obligation* failed at `t+1` in this counterexample.
    pub violated_cond_eqs: Vec<usize>,
}

/// Outcome of one inductive check.
#[derive(Clone, Debug)]
pub enum UpecOutcome {
    /// The property holds: `Z'` is a fixed point and `Y_C` never diverges.
    Holds,
    /// The property fails with the given witness.
    Counterexample(UpecCounterexample),
}

impl UpecOutcome {
    /// `true` for [`UpecOutcome::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, UpecOutcome::Holds)
    }
}

/// How [`Upec2Safety`] elaborates the 2-safety model across checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElaborationMode {
    /// Elaborate a `Z'`-independent template once, instantiate instance 1
    /// per check by leaf substitution over a persistent AIG, and solve
    /// every check on one long-lived SAT solver with activation literals.
    /// The default.
    Cached,
    /// Re-elaborate the full model and a fresh solver on every check —
    /// the reference semantics for equivalence testing and the baseline
    /// for cold-elaboration benchmarks.
    Fresh,
}

/// Elaboration-cache effectiveness counters, exposed next to
/// [`Upec2Safety::aig_nodes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElaborationStats {
    /// AIG nodes created by one-time work: the `Z'`-independent template
    /// plus frame-0-side constraint/invariant obligations.
    pub template_nodes: usize,
    /// AIG nodes created by per-check instantiation, accumulated over all
    /// checks.
    pub check_nodes: usize,
    /// AIG nodes created by the most recent check alone.
    pub last_check_nodes: usize,
    /// How many times a template was elaborated (1 for a cached engine's
    /// lifetime; once per check in fresh mode).
    pub template_builds: u64,
    /// Structural-hash hits: `and` calls answered by the persistent AIG
    /// instead of creating a node. Replaying instance 1's cones over the
    /// template turns almost all elaboration work into hits.
    pub strash_hits: u64,
    /// Structural-hash misses: `and` calls that created a node.
    pub strash_misses: u64,
}

impl ElaborationStats {
    /// Folds another engine's counters into this one (for aggregating
    /// across designs or parallel workers).
    pub fn merge(&mut self, other: &ElaborationStats) {
        self.template_nodes += other.template_nodes;
        self.check_nodes += other.check_nodes;
        self.last_check_nodes = other.last_check_nodes;
        self.template_builds += other.template_builds;
        self.strash_hits += other.strash_hits;
        self.strash_misses += other.strash_misses;
    }
}

impl std::ops::AddAssign for ElaborationStats {
    fn add_assign(&mut self, rhs: ElaborationStats) {
        self.merge(&rhs);
    }
}

/// How `Z'` is lowered into the 2-safety SAT instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UpecEncoding {
    /// Flat bit equality by leaf substitution: a register in `Z'` shares
    /// instance 0's leaves, and each check re-derives instance 1's cones
    /// over the persistent AIG. The reference oracle.
    #[default]
    Bits,
    /// Guarded word-level equivalence predicates: instance 1 is built
    /// exactly once with fully split leaves, each register `r` gets a
    /// persistent predicate `sel_r ⇒ words equal`, and a check merely
    /// *assumes* the selectors of the current `Z'`. Refinement weakens
    /// guards by flipping assumptions instead of re-elaborating anything,
    /// and only the fan-in cones actually monitored are ever bit-blasted
    /// (see [`crate::blast::LazyFrame`]).
    Words,
}

impl std::str::FromStr for UpecEncoding {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bits" => Ok(UpecEncoding::Bits),
            "words" => Ok(UpecEncoding::Words),
            other => Err(format!(
                "unknown UPEC encoding `{other}` (expected `bits` or `words`)"
            )),
        }
    }
}

impl std::fmt::Display for UpecEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UpecEncoding::Bits => "bits",
            UpecEncoding::Words => "words",
        })
    }
}

/// Conflict budget for a word-mode check before it falls back to the
/// bit-level path. The split product trades structural folding for reuse:
/// on cones where bit mode's shared leaves would have folded both
/// instances to one, the solver must instead derive the equivalence by
/// search. Healthy word checks across the Table I designs stay around a
/// thousand conflicts; pathological ones (deep dirty cones over many
/// selected registers) run tens of thousands, and the bit path answers
/// them almost for free. The budget is deterministic — conflict counts
/// don't depend on wall time — so verdicts and refinement traces stay
/// reproducible.
const WORD_CONFLICT_BUDGET: u64 = 8192;

/// Product-size counters: how much AIG / CNF each check actually costs,
/// split into one-time construction (template, static word product, spec
/// obligations) and recurring per-check work. The word-level encoding's
/// whole point is driving the per-check columns toward zero; `bench_diff`
/// gates on these so the pruning win is measured, not eyeballed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProductStats {
    /// Number of checks measured.
    pub checks: u64,
    /// AIG nodes created by per-check work, summed over all checks.
    pub check_aig_nodes: u64,
    /// SAT variables allocated by per-check work, summed over all checks.
    pub check_sat_vars: u64,
    /// CNF clauses added by per-check work, summed over all checks.
    pub check_sat_clauses: u64,
    /// SAT variables allocated by one-time construction.
    pub one_time_sat_vars: u64,
    /// CNF clauses added by one-time construction.
    pub one_time_sat_clauses: u64,
    /// Guarded word-equivalence predicates instantiated (0 in bit mode).
    pub predicates: u64,
    /// Guard literals assumed across all checks (the activation literal
    /// plus, in word mode, one selector per state register).
    pub guard_assumptions: u64,
    /// Word-mode checks that exhausted the conflict budget on the split
    /// product and were re-run through the bit-level path (0 in bit
    /// mode).
    pub word_fallbacks: u64,
}

impl ProductStats {
    /// Folds another engine's counters into this one.
    pub fn merge(&mut self, other: &ProductStats) {
        self.checks += other.checks;
        self.check_aig_nodes += other.check_aig_nodes;
        self.check_sat_vars += other.check_sat_vars;
        self.check_sat_clauses += other.check_sat_clauses;
        self.one_time_sat_vars += other.one_time_sat_vars;
        self.one_time_sat_clauses += other.one_time_sat_clauses;
        self.predicates += other.predicates;
        self.guard_assumptions += other.guard_assumptions;
        self.word_fallbacks += other.word_fallbacks;
    }
}

impl std::ops::AddAssign for ProductStats {
    fn add_assign(&mut self, rhs: ProductStats) {
        self.merge(&rhs);
    }
}

/// The incremental replay checker behind certification, in one of two
/// configurations. [`CertChecker::Hinted`] (the default) records conflict
/// cores during replay so a check's artifact is emitted backward-trimmed
/// with inline LRAT-style hints; [`CertChecker::Forward`]
/// (`--cert-forward`) is the plain checker whose artifacts are full
/// forward-replay DRUP renders.
#[derive(Debug)]
enum CertChecker {
    Hinted(HintedTracker),
    Forward(Checker),
}

impl CertChecker {
    fn new(forward: bool) -> Self {
        if forward {
            CertChecker::Forward(Checker::new())
        } else {
            CertChecker::Hinted(HintedTracker::new())
        }
    }

    fn feed(&mut self, steps: &[fastpath_sat::ProofStep]) -> Result<(), CertError> {
        match self {
            CertChecker::Hinted(t) => t.feed(steps),
            CertChecker::Forward(c) => c.feed(steps),
        }
    }

    fn verify_unsat(&mut self, assumptions: &[Lit]) -> Result<(), CertError> {
        match self {
            CertChecker::Hinted(t) => t.verify_unsat(assumptions),
            CertChecker::Forward(c) => c.verify_unsat(assumptions),
        }
    }

    fn stats(&self) -> fastpath_cert::CheckerStats {
        match self {
            CertChecker::Hinted(t) => t.stats(),
            CertChecker::Forward(c) => c.stats(),
        }
    }
}

/// Live certification state: the incremental checker plus accumulated
/// counters. The checker consumes each new slice of the solver's proof
/// trace exactly once (`consumed` marks progress), so certifying a
/// refinement loop's many checks on one long-lived solver stays linear in
/// the trace instead of quadratic.
#[derive(Debug)]
struct CertState {
    checker: CertChecker,
    /// Trace steps already fed to `checker`.
    consumed: usize,
    /// Accumulated counters; `stats.checker` holds only the counters of
    /// checkers already discarded by fresh-mode resets — the live
    /// checker's are folded in on read.
    stats: CertStats,
    /// Wall-clock spent in hinted (backward-emitting) certification.
    backward_time: Duration,
    /// Wall-clock spent in forward-replay certification.
    forward_time: Duration,
    /// Where to write per-check DIMACS + proof/model artifacts, if
    /// requested.
    artifact_dir: Option<PathBuf>,
    artifact_prefix: String,
    /// Whether to retain the most recent check's artifact text in memory
    /// (for proof caches), independent of `artifact_dir`.
    capture: bool,
    last_artifact: Option<ProofArtifact>,
}

impl CertState {
    fn new(forward: bool) -> Self {
        CertState {
            checker: CertChecker::new(forward),
            consumed: 0,
            stats: CertStats::default(),
            backward_time: Duration::ZERO,
            forward_time: Duration::ZERO,
            artifact_dir: None,
            artifact_prefix: String::new(),
            capture: false,
            last_artifact: None,
        }
    }
}

/// An in-memory copy of the textual certificate of one successfully
/// certified non-trivial UNSAT check: the exact DIMACS formula the
/// verdict is about (activation assumption baked in as a unit) plus its
/// refutation.
///
/// With hinted certification (the default) the pair is the
/// backward-trimmed UNSAT core and a hinted proof checkable by
/// [`fastpath_cert::check_hinted_unsat_artifact`]; with forward
/// certification it is the full formula and a plain DRUP render for
/// [`fastpath_cert::artifacts::revalidate_unsat_artifact`]. A proof cache
/// stores the pair; on a later hit it is replayed so the cached verdict
/// is re-certified rather than trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofArtifact {
    /// DIMACS CNF text of the formula the verdict is about.
    pub cnf: String,
    /// Textual refutation of that formula: hinted when `hinted`, plain
    /// DRUP otherwise.
    pub drup: String,
    /// Whether `drup` carries inline LRAT-style hints.
    pub hinted: bool,
}

/// Cross-run learnt-clause reuse state: the persistent store plus the
/// engine's per-register cone identities (WL-canonical signal labels, in
/// `state_signals()` order) and the once-per-solver import bookkeeping.
#[derive(Debug)]
struct ReuseState {
    store: Arc<ClauseStore>,
    /// Cone key per register: the WL-canonical label of the register
    /// signal, identical across renames, reorderings, and machines.
    labels: Vec<Digest>,
    /// Registers whose stored clauses were already probed against the
    /// current solver (imports happen once per solver lifetime).
    tried: Vec<bool>,
}

/// The `Z'`-independent half of the 2-safety model, elaborated once.
#[derive(Debug)]
struct Template {
    /// Per register: `(signal, instance-0 leaf, instance-1 split leaf)`.
    /// A check picks instance 1's actual leaf from the last two.
    state_leaves: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
    /// Instance 1 input leaves at `t`, indexed by signal.
    inputs1_t: Vec<Vec<AigLit>>,
    /// Instance 1 input leaves at `t+1`, indexed by signal.
    inputs1_t1: Vec<Vec<AigLit>>,
    /// Instance 0 at time `t`.
    frame0_t: Frame,
    /// Instance 0 next-state words, in `state_signals()` order.
    next0: Vec<Vec<AigLit>>,
    /// Instance 0 at time `t+1`.
    frame0_t1: Frame,
    /// Input witnesses `(signal, inst0, inst1)` at `t` and `t+1`.
    input_bits_t: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
    input_bits_t1: Vec<(SignalId, Vec<AigLit>, Vec<AigLit>)>,
}

/// The time-frame boundary of a combinational cone: whether it reads any
/// confidential (split-leaf) input, and the registers on its edge.
///
/// This is the cone-pruning oracle of the word encoding. A difference
/// monitor over the cone can only be satisfied when the boundary meets a
/// *divergence source* — a data input, or a register outside the current
/// `Z'` whose split leaves are free. When every boundary register is
/// covered by an assumed guarded equivalence predicate (and no data input
/// is read), both instances compute the same function of pairwise-equal
/// leaves, so the predicate holds by propagation and is skipped without
/// ever being built or solved — the structural analogue of the constant
/// folding that shared leaves buy the bit encoding.
#[derive(Clone, Debug)]
struct ConeBoundary {
    /// The cone reads at least one `DataIn` input (split per instance).
    reads_data: bool,
    /// Registers on the cone's time-frame edge.
    regs: Vec<SignalId>,
}

impl ConeBoundary {
    /// Computes the boundary of the combinational cone of `targets`.
    fn of(module: &Module, targets: &[SignalId]) -> ConeBoundary {
        let mask = comb_cone_mask(module, targets);
        let mut reads_data = false;
        let mut regs = Vec::new();
        for (id, signal) in module.signals() {
            if !mask[id.index()] {
                continue;
            }
            match signal.kind {
                SignalKind::Register => regs.push(id),
                SignalKind::Input => reads_data |= signal.role == SignalRole::DataIn,
                _ => {}
            }
        }
        ConeBoundary { reads_data, regs }
    }

    /// Computes the boundary of `reg`'s next-state function.
    fn of_next(module: &Module, reg: SignalId) -> ConeBoundary {
        match module.driver(reg) {
            Some(driver) => ConeBoundary::of(module, &module.expr_supports(driver)),
            None => ConeBoundary {
                reads_data: false,
                regs: Vec::new(),
            },
        }
    }

    /// Whether the boundary meets a divergence source under `in_z`.
    fn dirty(&self, in_z: &[bool]) -> bool {
        self.reads_data || self.regs.iter().any(|r| !in_z[r.index()])
    }
}

/// The static word-level half of the product ([`UpecEncoding::Words`]):
/// one fully-split instance 1 plus per-register guarded equivalence
/// predicates, built lazily cone by cone and then reused — as-is — by
/// every subsequent check.
#[derive(Debug)]
struct WordProduct {
    /// For each register in `state_signals()` order: the index of its
    /// entry in `Template::state_leaves`.
    leaf_idx: Vec<usize>,
    /// Per register (`state_signals()` order): the selector variable of
    /// its guarded equivalence predicate `sel ⇒ inst0 == inst1`, created
    /// the first time the register appears in a `Z'`. Registers that never
    /// enter `Z'` (IFT-tainted data state) never pay for a predicate.
    selectors: Vec<Option<fastpath_sat::Var>>,
    /// Instance 1 at `t`: split leaves for every register, template input
    /// leaves, cones elaborated on demand.
    frame1_t: LazyFrame,
    /// Instance 1 at `t+1`: register leaves are patched in from `next1`
    /// on demand.
    frame1_t1: LazyFrame,
    /// Instance 1 next-state words (`state_signals()` order), on demand.
    next1: Vec<Option<Vec<AigLit>>>,
    /// Difference monitors `inst0.next != inst1.next` per register, on
    /// demand — only ever built for *dirty* cones (see [`ConeBoundary`]).
    diff_next: Vec<Option<AigLit>>,
    /// Per register (`state_signals()` order): the boundary of its
    /// next-state fan-in cone, computed once on first use.
    next_cone: Vec<Option<ConeBoundary>>,
    /// The module's control outputs, pinning the index space of
    /// `out_cone` / `diff_out`.
    outs: Vec<SignalId>,
    /// Per control output: its combinational fan-in boundary.
    out_cone: Vec<Option<ConeBoundary>>,
    /// Control-output difference monitors over `[t, t+1]`, built on the
    /// output's first dirty appearance.
    diff_out: Vec<Option<AigLit>>,
    /// Conditional-equality violation monitors at `t+1`, grown with the
    /// spec.
    cond_eq_violation: Vec<AigLit>,
    /// How many spec entries already have their instance-1-side
    /// obligations asserted (word obligations are `Z'`-independent, so
    /// they are asserted once, unguarded, like the frame-0 side).
    w_constraints: usize,
    w_invariants: usize,
    w_cond_eqs: usize,
}

/// The 2-safety UPEC-DIT model over one module.
///
/// Each [`check`](Self::check) instantiates a 2-safety model in which the
/// registers of the candidate partitioning `Z'` are *shared* between the
/// two instances (equality by construction, exactly UPEC's computational
/// model: only the tracked difference is free). Structural hashing then
/// collapses the identical parts of the two cones, so the difference
/// monitors of unaffected signals fold to constant false and the SAT
/// instance only contains logic genuinely influenced by the data.
///
/// In the default [`ElaborationMode::Cached`] the engine keeps one AIG
/// and one SAT solver alive for its whole lifetime (see the module docs);
/// the specification may grow between checks through
/// [`add_software_constraint`](Self::add_software_constraint),
/// [`add_invariant`](Self::add_invariant), and
/// [`add_conditional_equality`](Self::add_conditional_equality), so a
/// refinement loop never rebuilds the engine.
#[derive(Debug)]
pub struct Upec2Safety<'m> {
    module: &'m Module,
    spec: UpecSpec,
    mode: ElaborationMode,
    encoding: UpecEncoding,
    aig: Aig,
    encoder: CnfEncoder,
    template: Option<Template>,
    /// The static word-level product, when `encoding` is `Words`.
    product: Option<WordProduct>,
    /// Product-size counters (see [`ProductStats`]).
    product_stats: ProductStats,
    /// How many spec entries already have their frame-0-side (one-time)
    /// obligations asserted on the persistent solver.
    f0_constraints: usize,
    f0_invariants: usize,
    last_aig_nodes: usize,
    checks: u64,
    /// Portfolio width applied to every encoder (0 = sequential);
    /// reapplied after fresh-mode resets.
    sat_portfolio: usize,
    /// Cube-and-conquer width applied to every encoder (0 = off);
    /// reapplied after fresh-mode resets.
    sat_cube: usize,
    /// Override of the cube trigger's canonical-attempt conflict budget.
    sat_cube_trigger: Option<u64>,
    /// Solver statistics of encoders discarded by fresh-mode resets.
    stats_at_reset: SolverStats,
    /// Elaboration counters of AIGs discarded by fresh-mode resets, plus
    /// node accounting for the live AIG.
    elab: ElaborationStats,
    /// Independent certification, when enabled.
    cert: Option<CertState>,
    /// Forward-replay certification instead of the hinted default.
    cert_forward: bool,
    /// Cross-run learnt-clause reuse, when a store is attached.
    reuse: Option<ReuseState>,
    /// Relational clauses staged for the *next* check only (an IC3
    /// discharge re-validation); consumed and guarded per check.
    pending_relational: Vec<RelationalClause>,
}

impl<'m> Upec2Safety<'m> {
    /// Creates the engine for a module and its specification, in the
    /// default [`ElaborationMode::Cached`].
    ///
    /// Inputs whose role is neither `DataIn` nor `DataOut` (including
    /// unannotated ones) are treated as control and shared between the
    /// instances — "everything not confidential is attacker-controlled".
    pub fn new(module: &'m Module, spec: &UpecSpec) -> Self {
        Self::with_mode(module, spec, ElaborationMode::Cached)
    }

    /// Creates the engine with an explicit [`ElaborationMode`].
    pub fn with_mode(module: &'m Module, spec: &UpecSpec, mode: ElaborationMode) -> Self {
        Upec2Safety {
            module,
            spec: spec.clone(),
            mode,
            encoding: UpecEncoding::Bits,
            aig: Aig::new(),
            encoder: CnfEncoder::new(),
            template: None,
            product: None,
            product_stats: ProductStats::default(),
            f0_constraints: 0,
            f0_invariants: 0,
            last_aig_nodes: 0,
            checks: 0,
            sat_portfolio: 0,
            sat_cube: 0,
            sat_cube_trigger: None,
            stats_at_reset: SolverStats::default(),
            elab: ElaborationStats::default(),
            cert: None,
            cert_forward: false,
            reuse: None,
            pending_relational: Vec::new(),
        }
    }

    /// Races every SAT check over a portfolio of `workers` diversified
    /// solver configurations (0 or 1 = sequential). Verdicts, models,
    /// methods, and inspection counts are identical to the sequential
    /// run for every width — see the determinism notes on
    /// [`fastpath_sat::Solver::set_portfolio`] — so this only changes
    /// wall-clock, never results. Composes with certification: each
    /// worker keeps a self-contained proof trace.
    pub fn set_sat_portfolio(&mut self, workers: usize) {
        self.sat_portfolio = workers;
        self.encoder.set_portfolio(workers);
    }

    /// Splits hard checks into cube trees conquered by `jobs` schedulers
    /// (0 disables cubing). Verdicts, models, learned state, and proofs
    /// are byte-identical for every non-zero width — see
    /// [`fastpath_sat::Solver::set_cube`] — so, like the portfolio, this
    /// only changes wall-clock. Composes with certification: stitched
    /// cube proofs splice into the single trace the checker consumes.
    pub fn set_sat_cube(&mut self, jobs: usize) {
        self.sat_cube = jobs;
        self.encoder.set_cube(jobs);
    }

    /// Overrides the conflict budget of the canonical attempt that
    /// precedes any cube split (see
    /// [`fastpath_sat::Solver::set_cube_trigger`]). Changing the trigger
    /// changes which checks split, hence the proof trace — it is part of
    /// the determinism contract, not a free tuning knob.
    pub fn set_sat_cube_trigger(&mut self, conflicts: u64) {
        self.sat_cube_trigger = Some(conflicts);
        self.encoder.set_cube_trigger(conflicts);
    }

    /// Switches certification to forward replay with full DRUP artifact
    /// renders (the pre-hinted behaviour); hinted backward checking is
    /// the default. Call order with
    /// [`enable_certification`](Self::enable_certification) does not
    /// matter, but the mode is fixed once checks run.
    ///
    /// # Panics
    ///
    /// Panics if any check has already run.
    pub fn set_cert_forward(&mut self, forward: bool) {
        assert_eq!(
            self.checks, 0,
            "certification mode must be chosen before the first check"
        );
        self.cert_forward = forward;
        if let Some(cert) = &mut self.cert {
            cert.checker = CertChecker::new(forward);
            if forward {
                self.encoder.enable_proof_text();
            }
        }
    }

    /// Attaches a persistent learnt-clause store: before each check,
    /// clauses recorded by earlier runs over structurally identical
    /// next-state cones are translated onto this design's variables and
    /// RUP-probed into the solver (sound regardless of translation
    /// correctness — a probe failure just skips the clause); after the
    /// run, [`export_learnt_clauses`](Self::export_learnt_clauses)
    /// publishes this solver's own short cone-local learnt clauses back.
    ///
    /// Imports only read the store's immutable base snapshot and happen
    /// before any solving, so verdicts and proofs stay byte-identical
    /// across every `--jobs`/`--sat-portfolio`/`--cube-jobs` combination;
    /// cross-design clauses materialize on the *next* run against the
    /// saved store.
    pub fn set_clause_store(&mut self, store: Arc<ClauseStore>) {
        let canon = canonical_form(self.module);
        let state_ids = self.module.state_signals();
        let labels: Vec<Digest> = state_ids.iter().map(|&r| canon.signal_label(r)).collect();
        let tried = vec![false; state_ids.len()];
        self.reuse = Some(ReuseState {
            store,
            labels,
            tried,
        });
    }

    /// Wall-clock spent certifying, split `(hinted backward, forward
    /// replay)`. Exactly one side accumulates per engine, depending on
    /// [`set_cert_forward`](Self::set_cert_forward); both zero when
    /// certification is off. Kept out of [`CertStats`] so deterministic
    /// reports never embed timings.
    pub fn cert_times(&self) -> (Duration, Duration) {
        self.cert
            .as_ref()
            .map_or((Duration::ZERO, Duration::ZERO), |c| {
                (c.backward_time, c.forward_time)
            })
    }

    /// Selects how `Z'` is lowered into the SAT instance (see
    /// [`UpecEncoding`]). Defaults to [`UpecEncoding::Bits`], the
    /// reference oracle.
    ///
    /// # Panics
    ///
    /// Panics if any check has already run — the two encodings build the
    /// product differently and cannot be mixed on one solver.
    pub fn set_encoding(&mut self, encoding: UpecEncoding) {
        assert_eq!(
            self.checks, 0,
            "encoding must be chosen before the first check"
        );
        self.encoding = encoding;
    }

    /// The encoding currently in force.
    pub fn encoding(&self) -> UpecEncoding {
        self.encoding
    }

    /// Product-size counters accumulated over all checks (see
    /// [`ProductStats`]).
    pub fn product_stats(&self) -> ProductStats {
        self.product_stats
    }

    /// Turns on independent certification: the solver logs a DRUP-style
    /// proof trace and every subsequent check's verdict is replayed
    /// through the `fastpath-cert` checker (see
    /// [`check_certified`](Self::check_certified)). Plain
    /// [`check`](Self::check) calls also certify internally once enabled,
    /// so [`cert_stats`](Self::cert_stats) covers them too.
    ///
    /// # Panics
    ///
    /// Panics if any check has already run — the trace must cover the
    /// whole formula.
    pub fn enable_certification(&mut self) {
        assert_eq!(
            self.checks, 0,
            "certification must be enabled before the first check"
        );
        if self.cert.is_none() {
            self.encoder.enable_proof_logging();
            if self.cert_forward {
                // Forward artifacts render full DRUP text; the buffered
                // renderer amortizes that across the run.
                self.encoder.enable_proof_text();
            }
            self.cert = Some(CertState::new(self.cert_forward));
        }
    }

    /// `true` once [`enable_certification`](Self::enable_certification)
    /// has been called.
    pub fn certification_enabled(&self) -> bool {
        self.cert.is_some()
    }

    /// Requests per-check artifact dumps: each certified check writes
    /// `{prefix}check{N}.cnf` (the exact DIMACS formula solved, with the
    /// activation assumption as a unit) plus `.drup` (UNSAT) or `.model`
    /// (SAT) into `dir`, in formats external checkers such as `drat-trim`
    /// consume. Trivially-UNSAT checks solve nothing and dump nothing.
    ///
    /// # Panics
    ///
    /// Panics if certification is not enabled.
    pub fn set_artifact_output(&mut self, dir: PathBuf, prefix: impl Into<String>) {
        let cert = self
            .cert
            .as_mut()
            .expect("artifact output requires enable_certification()");
        cert.artifact_dir = Some(dir);
        cert.artifact_prefix = prefix.into();
        // On-disk dumps are always plain DRUP (the format drat-trim
        // consumes), even under hinted certification, so the buffered
        // renderer pays off here too. Backfills already-logged steps.
        self.encoder.enable_proof_text();
    }

    /// Retains each non-trivial UNSAT check's `(CNF, DRUP)` text in
    /// memory so a proof cache can store it; read it back with
    /// [`take_last_artifact`](Self::take_last_artifact) after the check.
    ///
    /// # Panics
    ///
    /// Panics if certification is not enabled.
    pub fn enable_artifact_capture(&mut self) {
        let cert = self
            .cert
            .as_mut()
            .expect("artifact capture requires enable_certification()");
        cert.capture = true;
    }

    /// Takes the artifact captured by the most recent check, if that
    /// check was a successfully certified non-trivial UNSAT (SAT and
    /// trivially-UNSAT checks capture nothing — their verdicts are
    /// re-validated by replay and by construction respectively).
    pub fn take_last_artifact(&mut self) -> Option<ProofArtifact> {
        self.cert.as_mut().and_then(|c| c.last_artifact.take())
    }

    /// Accumulated certification counters, if certification is enabled.
    pub fn cert_stats(&self) -> Option<CertStats> {
        self.cert.as_ref().map(|cert| {
            let mut stats = cert.stats;
            stats.checker.merge(&cert.checker.stats());
            stats
        })
    }

    /// The engine's elaboration mode.
    pub fn mode(&self) -> ElaborationMode {
        self.mode
    }

    /// The number of `check` calls performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The specification currently in force.
    pub fn spec(&self) -> &UpecSpec {
        &self.spec
    }

    /// Solver statistics accumulated over all checks.
    pub fn solver_stats(&self) -> SolverStats {
        let mut s = self.stats_at_reset;
        s.merge(&self.encoder.solver().stats());
        s
    }

    /// Size of the elaborated AIG after the most recent check. In cached
    /// mode this is the persistent AIG (template plus everything the
    /// checks added); in fresh mode it is the last check's private AIG —
    /// the seed engine's "elaboration cost" indicator.
    pub fn aig_nodes(&self) -> usize {
        self.last_aig_nodes
    }

    /// Elaboration-cache effectiveness counters (see
    /// [`ElaborationStats`]).
    pub fn elaboration_stats(&self) -> ElaborationStats {
        let mut e = self.elab;
        e.strash_hits += self.aig.strash_hits();
        e.strash_misses += self.aig.strash_misses();
        e
    }

    /// Forces the one-time template elaboration now (it otherwise happens
    /// lazily on the first check). Lets callers time elaboration apart
    /// from solving. In word mode this also sets up the static guarded
    /// product skeleton (individual cones still materialize on demand).
    pub fn elaborate(&mut self) {
        self.ensure_template();
        if self.encoding == UpecEncoding::Words {
            self.ensure_word_product();
        }
    }

    /// Adds a derived software constraint to the specification. It takes
    /// effect from the next check; previously learned clauses stay valid
    /// because the clause database only grows.
    pub fn add_software_constraint(&mut self, expr: ExprId) {
        self.spec.software_constraints.push(expr);
    }

    /// Adds an invariant to the specification (effective from the next
    /// check).
    pub fn add_invariant(&mut self, expr: ExprId) {
        self.spec.invariants.push(expr);
    }

    /// Adds a conditional 2-safety equality to the specification
    /// (effective from the next check).
    pub fn add_conditional_equality(&mut self, cond: ExprId, signal: SignalId) {
        self.spec.conditional_equalities.push((cond, signal));
    }

    /// Stages machine-derived relational clauses (an IC3 candidate
    /// invariant, see [`crate::Ic3Engine`]) for the **next check only**.
    /// That check then decides IC3's consecution theorem: each clause is
    /// assumed over the product state at `t` and its negation joins the
    /// monitored disjunction at `t+1`, so `Holds` certifies
    /// `Inv ∧ premises ∧ T → Inv' ∧ ¬Bad` through the standard
    /// (certifiable) induction path. Everything is guarded by the check's
    /// activation literal and retired with it — a failed re-validation
    /// leaves no trace on later checks.
    pub fn add_relational_clauses(&mut self, clauses: &[RelationalClause]) {
        self.pending_relational.extend_from_slice(clauses);
    }

    /// Runs the inductive property of Listing 1 for the candidate
    /// partitioning `z_prime`.
    ///
    /// Returns [`UpecOutcome::Holds`] iff, assuming all signals of
    /// `z_prime` equal at `t` (plus constraints/invariants), no signal of
    /// `z_prime` differs at `t+1` and no control output differs during
    /// `[t, t+1]`.
    pub fn check(&mut self, z_prime: &[SignalId]) -> UpecOutcome {
        self.check_internal(z_prime, true).0
    }

    /// Like [`check`](Self::check) but only monitors the `Z'` next-state
    /// equalities, not the control outputs. The original UPEC-DIT
    /// iterative-partitioning procedure inspects internal propagations in
    /// discovery order before concluding anything about the outputs; the
    /// formal-only baseline uses this mode for its inner iterations.
    pub fn check_state_only(&mut self, z_prime: &[SignalId]) -> UpecOutcome {
        self.check_internal(z_prime, false).0
    }

    /// [`check`](Self::check) with its verdict independently certified.
    ///
    /// # Panics
    ///
    /// Panics unless
    /// [`enable_certification`](Self::enable_certification) was called.
    pub fn check_certified(&mut self, z_prime: &[SignalId]) -> CertifiedOutcome {
        let (outcome, certificate) = self.check_internal(z_prime, true);
        CertifiedOutcome {
            outcome,
            certificate: certificate.expect("certification enabled"),
        }
    }

    /// [`check_state_only`](Self::check_state_only) with its verdict
    /// independently certified.
    ///
    /// # Panics
    ///
    /// Panics unless
    /// [`enable_certification`](Self::enable_certification) was called.
    pub fn check_state_only_certified(&mut self, z_prime: &[SignalId]) -> CertifiedOutcome {
        let (outcome, certificate) = self.check_internal(z_prime, false);
        CertifiedOutcome {
            outcome,
            certificate: certificate.expect("certification enabled"),
        }
    }

    /// Discards all cached state (fresh-mode per-check amnesia), folding
    /// the outgoing solver/AIG counters into the running totals.
    fn reset(&mut self) {
        self.stats_at_reset.merge(&self.encoder.solver().stats());
        self.elab.strash_hits += self.aig.strash_hits();
        self.elab.strash_misses += self.aig.strash_misses();
        self.aig = Aig::new();
        self.encoder = CnfEncoder::new();
        self.encoder.set_portfolio(self.sat_portfolio);
        self.encoder.set_cube(self.sat_cube);
        if let Some(trigger) = self.sat_cube_trigger {
            self.encoder.set_cube_trigger(trigger);
        }
        self.template = None;
        self.product = None;
        self.f0_constraints = 0;
        self.f0_invariants = 0;
        if let Some(cert) = &mut self.cert {
            // A fresh solver means a fresh trace: fold the outgoing
            // checker's counters and start a matching fresh checker.
            cert.stats.checker.merge(&cert.checker.stats());
            cert.checker = CertChecker::new(self.cert_forward);
            cert.consumed = 0;
            self.encoder.enable_proof_logging();
            if self.cert_forward || cert.artifact_dir.is_some() {
                self.encoder.enable_proof_text();
            }
        }
        if let Some(reuse) = &mut self.reuse {
            // Fresh solver, fresh import bookkeeping: the stored clauses
            // are probed against the new solver once its cones exist.
            reuse.tried.iter_mut().for_each(|t| *t = false);
        }
    }

    /// Elaborates the `Z'`-independent template if it does not exist yet,
    /// then asserts the frame-0-side obligations of any spec entries added
    /// since the last check. Both are one-time work on the persistent
    /// AIG/solver, accounted as `template_nodes`.
    fn ensure_template(&mut self) {
        let module = self.module;
        let nodes_before = self.aig.node_count();
        let vars_before = self.encoder.num_vars();
        let clauses_before = self.encoder.num_clauses();
        if self.template.is_none() {
            let aig = &mut self.aig;
            let n = module.signal_count();
            let mut leaves0: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            let mut inputs1_t: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            let mut inputs1_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            let mut state_leaves = Vec::new();
            let mut input_bits_t = Vec::new();
            let mut input_bits_t1 = Vec::new();
            for (id, signal) in module.signals() {
                match signal.kind {
                    SignalKind::Register => {
                        let b0: Vec<AigLit> = (0..signal.width).map(|_| aig.input()).collect();
                        let s1: Vec<AigLit> = (0..signal.width).map(|_| aig.input()).collect();
                        state_leaves.push((id, b0.clone(), s1));
                        leaves0[id.index()] = b0;
                    }
                    SignalKind::Input => {
                        let (b0, b1) = alloc_input(aig, signal.role, signal.width);
                        input_bits_t.push((id, b0.clone(), b1.clone()));
                        leaves0[id.index()] = b0;
                        inputs1_t[id.index()] = b1;
                    }
                    _ => {}
                }
            }
            let frame0_t = build_frame_with_leaves(aig, module, leaves0);
            let next0 = next_state(aig, module, &frame0_t);
            let state_ids = module.state_signals();
            let mut leaves0_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            for (reg, n0) in state_ids.iter().zip(next0.iter()) {
                leaves0_t1[reg.index()] = n0.clone();
            }
            for (id, signal) in module.signals() {
                if signal.kind == SignalKind::Input {
                    let (b0, b1) = alloc_input(aig, signal.role, signal.width);
                    input_bits_t1.push((id, b0.clone(), b1.clone()));
                    leaves0_t1[id.index()] = b0;
                    inputs1_t1[id.index()] = b1;
                }
            }
            let frame0_t1 = build_frame_with_leaves(aig, module, leaves0_t1);
            self.template = Some(Template {
                state_leaves,
                inputs1_t,
                inputs1_t1,
                frame0_t,
                next0,
                frame0_t1,
                input_bits_t,
                input_bits_t1,
            });
            self.elab.template_builds += 1;
        }
        // Frame-0-side obligations for spec entries not yet encoded:
        // Z'-independent, so asserted once, unguarded. (The solver only
        // ever *gains* assumptions, matching the flow's monotonically
        // growing specification.)
        let tmpl = self.template.as_ref().expect("template just built");
        let aig = &mut self.aig;
        let encoder = &mut self.encoder;
        for &constraint in &self.spec.software_constraints[self.f0_constraints..] {
            for frame in [&tmpl.frame0_t, &tmpl.frame0_t1] {
                let lit = blast_predicate(aig, module, frame, constraint);
                encoder.assert_true(aig, lit);
            }
        }
        self.f0_constraints = self.spec.software_constraints.len();
        for &invariant in &self.spec.invariants[self.f0_invariants..] {
            let lit = blast_predicate(aig, module, &tmpl.frame0_t, invariant);
            encoder.assert_true(aig, lit);
        }
        self.f0_invariants = self.spec.invariants.len();
        self.elab.template_nodes += aig.node_count() - nodes_before;
        self.product_stats.one_time_sat_vars += (self.encoder.num_vars() - vars_before) as u64;
        self.product_stats.one_time_sat_clauses +=
            self.encoder.num_clauses().saturating_sub(clauses_before) as u64;
    }

    fn check_internal(
        &mut self,
        z_prime: &[SignalId],
        include_outputs: bool,
    ) -> (UpecOutcome, Option<Result<CheckCertificate, CertError>>) {
        self.checks += 1;
        if self.mode == ElaborationMode::Fresh {
            self.reset();
        }
        self.ensure_template();
        if self.encoding == UpecEncoding::Words {
            self.ensure_word_product();
        }
        // Stored clauses over cones the previous checks materialized are
        // probed in now, at decision level 0, before anything solves —
        // the one point where imports cannot perturb verdict trajectories.
        self.import_reusable_clauses();
        // Product-size accounting: everything the one-time ensure steps
        // added is already booked as `one_time_*`; the deltas from here to
        // the end of the check are its recurring cost.
        let vars_before = self.encoder.num_vars();
        let clauses_before = self.encoder.num_clauses();
        let nodes_before = self.aig.node_count();
        // Staged relational clauses pin *individual* split leaves of both
        // instances, so the word product's equality predicates add no
        // abstraction value to a strengthened check — and its structural
        // folding can leave an instance-1 leaf the clause references
        // disconnected from the monitored cones, weakening the check.
        // Strengthened checks therefore always decide through the bit
        // path (on the same incremental solver), which keeps the verdict
        // byte-identical across encodings by construction.
        let out = match self.encoding {
            UpecEncoding::Bits => self.check_bits(z_prime, include_outputs),
            UpecEncoding::Words if self.pending_relational.is_empty() => {
                self.check_words(z_prime, include_outputs)
            }
            UpecEncoding::Words => self.check_bits(z_prime, include_outputs),
        };
        self.product_stats.checks += 1;
        self.product_stats.check_sat_vars +=
            self.encoder.num_vars().saturating_sub(vars_before) as u64;
        self.product_stats.check_sat_clauses +=
            self.encoder.num_clauses().saturating_sub(clauses_before) as u64;
        self.product_stats.check_aig_nodes +=
            self.aig.node_count().saturating_sub(nodes_before) as u64;
        out
    }

    /// The flat bit-equality check ([`UpecEncoding::Bits`]): derive
    /// instance 1 per check by leaf substitution and guard everything with
    /// one activation literal.
    fn check_bits(
        &mut self,
        z_prime: &[SignalId],
        include_outputs: bool,
    ) -> (UpecOutcome, Option<Result<CheckCertificate, CertError>>) {
        let module = self.module;
        let n = module.signal_count();
        let mut in_z = vec![false; n];
        for &z in z_prime {
            in_z[z.index()] = true;
        }

        let tmpl = self.template.as_ref().expect("template built");
        let aig = &mut self.aig;
        let encoder = &mut self.encoder;
        let nodes_before = aig.node_count();

        // --- instance 1 at `t` by leaf substitution: Z' registers reuse
        // instance 0's leaf, the rest keep their split leaves -------------
        let mut leaves1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut state_bits_t = Vec::with_capacity(tmpl.state_leaves.len());
        for (id, b0, s1) in &tmpl.state_leaves {
            let b1 = if in_z[id.index()] {
                b0.clone()
            } else {
                s1.clone()
            };
            state_bits_t.push((*id, b0.clone(), b1.clone()));
            leaves1[id.index()] = b1;
        }
        for (idx, bits) in tmpl.inputs1_t.iter().enumerate() {
            if !bits.is_empty() {
                leaves1[idx] = bits.clone();
            }
        }
        let frame1_t = build_frame_with_leaves(aig, module, leaves1);

        // --- instance 1's transition to t+1 ------------------------------
        let next1 = next_state(aig, module, &frame1_t);
        let state_ids = module.state_signals();
        let mut leaves1_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        for (reg, n1) in state_ids.iter().zip(next1.iter()) {
            leaves1_t1[reg.index()] = n1.clone();
        }
        for (idx, bits) in tmpl.inputs1_t1.iter().enumerate() {
            if !bits.is_empty() {
                leaves1_t1[idx] = bits.clone();
            }
        }
        let frame1_t1 = build_frame_with_leaves(aig, module, leaves1_t1);

        // --- per-check obligations, guarded by an activation literal -----
        // Everything touching instance 1 depends on this check's leaf
        // substitution, so it may not constrain later checks: each clause
        // carries ¬g and only bites under the assumption g.
        let guard = encoder.fresh_var();
        let g = guard.positive();
        let ng = guard.negative();
        for &constraint in &self.spec.software_constraints {
            for frame in [&frame1_t, &frame1_t1] {
                let lit = blast_predicate(aig, module, frame, constraint);
                let l = encoder.lit(aig, lit);
                encoder.add_clause(&[ng, l]);
            }
        }
        for &invariant in &self.spec.invariants {
            let lit = blast_predicate(aig, module, &frame1_t, invariant);
            let l = encoder.lit(aig, lit);
            encoder.add_clause(&[ng, l]);
        }
        let mut cond_eq_violation = Vec::new();
        for &(cond, signal) in &self.spec.conditional_equalities {
            let c0 = blast_predicate(aig, module, &tmpl.frame0_t, cond);
            let c1 = blast_predicate(aig, module, &frame1_t, cond);
            let both = aig.and(c0, c1);
            let eq = eq_word(aig, tmpl.frame0_t.signal(signal), frame1_t.signal(signal));
            let implied = {
                let nb = !both;
                aig.or(nb, eq)
            };
            let l = encoder.lit(aig, implied);
            encoder.add_clause(&[ng, l]);
            let c0n = blast_predicate(aig, module, &tmpl.frame0_t1, cond);
            let c1n = blast_predicate(aig, module, &frame1_t1, cond);
            let bothn = aig.and(c0n, c1n);
            let idx = state_ids
                .iter()
                .position(|&r| r == signal)
                .expect("conditional equality must target a register");
            let eqn = eq_word(aig, &tmpl.next0[idx], &next1[idx]);
            let viol = {
                let ne = !eqn;
                aig.and(bothn, ne)
            };
            cond_eq_violation.push(viol);
        }

        // --- staged relational clauses (IC3 re-validation), one-shot -----
        // Assumed over the product state at `t` (guarded), with their
        // negations monitored at `t+1`: exactly IC3's consecution theorem.
        let relational = std::mem::take(&mut self.pending_relational);
        let mut relational_broken = Vec::new();
        for clause in &relational {
            debug_assert!(!clause.lits.is_empty(), "empty relational clause");
            let mut cl = vec![ng];
            for lit in &clause.lits {
                let (_, b0, b1) = &state_bits_t[lit.reg];
                let bits = if lit.inst == 0 { b0 } else { b1 };
                let l = encoder.lit(aig, bits[lit.bit as usize]);
                cl.push(if lit.positive { l } else { !l });
            }
            encoder.add_clause(&cl);
            let neg: Vec<AigLit> = clause
                .lits
                .iter()
                .map(|lit| {
                    let next = if lit.inst == 0 {
                        &tmpl.next0[lit.reg]
                    } else {
                        &next1[lit.reg]
                    };
                    let b = next[lit.bit as usize];
                    if lit.positive {
                        !b
                    } else {
                        b
                    }
                })
                .collect();
            relational_broken.push(aig.and_all(&neg));
        }

        // --- monitors ----------------------------------------------------
        let mut diff_next = Vec::new();
        for (i, &reg) in state_ids.iter().enumerate() {
            if in_z[reg.index()] {
                let eq_next = eq_word(aig, &tmpl.next0[i], &next1[i]);
                diff_next.push((reg, !eq_next));
            }
        }
        let mut diff_out = Vec::new();
        for y in module.control_outputs() {
            let eq_a = eq_word(aig, tmpl.frame0_t.signal(y), frame1_t.signal(y));
            let eq_b = eq_word(aig, tmpl.frame0_t1.signal(y), frame1_t1.signal(y));
            let both = aig.and(eq_a, eq_b);
            diff_out.push((y, !both));
        }

        // --- solve -------------------------------------------------------
        // The monitor disjunction is also guarded: it asks "can anything
        // observable diverge *under this check's sharing*".
        let mut monitored: Vec<Lit> = vec![ng];
        for &(_, d) in &diff_next {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(aig, d));
            }
        }
        if include_outputs {
            for &(_, d) in &diff_out {
                if d != AigLit::FALSE {
                    monitored.push(encoder.lit(aig, d));
                }
            }
        }
        for &d in &cond_eq_violation {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(aig, d));
            }
        }
        for &d in &relational_broken {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(aig, d));
            }
        }
        self.last_aig_nodes = aig.node_count();
        let created = aig.node_count() - nodes_before;
        self.elab.check_nodes += created;
        self.elab.last_check_nodes = created;
        self.product_stats.guard_assumptions += 1;

        let outcome = if monitored.len() == 1 {
            SolveResult::Unsat
        } else {
            encoder.add_clause(&monitored);
            encoder.solve_with(&[g])
        };
        let result = match outcome {
            SolveResult::Unsat => UpecOutcome::Holds,
            SolveResult::Sat => {
                let divergent_state = diff_next
                    .iter()
                    .filter(|&&(_, l)| encoder.model_value(l).unwrap_or(false))
                    .map(|&(s, _)| s)
                    .collect();
                // Outputs are only meaningful monitors when requested; in
                // state-only mode their cones may coincide with encoded
                // state cones, which would misreport them as targets.
                let divergent_outputs = if include_outputs {
                    diff_out
                        .iter()
                        .filter(|&&(_, l)| encoder.model_value(l).unwrap_or(false))
                        .map(|&(s, _)| s)
                        .collect()
                } else {
                    Vec::new()
                };
                let violated_cond_eqs = cond_eq_violation
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| encoder.model_value(l).unwrap_or(false))
                    .map(|(i, _)| i)
                    .collect();
                let witness = |bits: &[(SignalId, Vec<AigLit>, Vec<AigLit>)]| {
                    bits.iter()
                        .map(|(s, b0, b1)| StateWitness {
                            signal: *s,
                            inst0: word_value(encoder, b0),
                            inst1: word_value(encoder, b1),
                        })
                        .collect::<Vec<_>>()
                };
                UpecOutcome::Counterexample(UpecCounterexample {
                    divergent_state,
                    divergent_outputs,
                    state_values: witness(&state_bits_t),
                    input_values_t: witness(&tmpl.input_bits_t),
                    input_values_t1: witness(&tmpl.input_bits_t1),
                    violated_cond_eqs,
                })
            }
        };
        // Certify BEFORE retiring: the retirement unit ¬g would make the
        // refutation of `g` vacuous. The certificate prefix is delimited
        // by the trace length right after the solve.
        let certificate = if self.cert.is_some() {
            let trivial = monitored.len() == 1;
            let sat = matches!(result, UpecOutcome::Counterexample(_));
            Some(self.certify_check(trivial, sat, &[g]))
        } else {
            None
        };
        // Retire this check: the unit clause ¬g permanently satisfies all
        // of its guarded obligations, while everything the solver learned
        // (implied by the clause database alone) carries over.
        self.encoder.add_clause(&[ng]);
        (result, certificate)
    }

    /// Builds the static word-level product skeleton if needed, then
    /// asserts the instance-1-side obligations of any spec entries added
    /// since the last check. In the word encoding instance 1 always reads
    /// its own split leaves — the guarded predicates restore sharing per
    /// check by *assumption* — so all of this is `Z'`-independent one-time
    /// work, asserted unguarded on the persistent solver exactly like the
    /// frame-0 side.
    fn ensure_word_product(&mut self) {
        let module = self.module;
        let nodes_before = self.aig.node_count();
        let vars_before = self.encoder.num_vars();
        let clauses_before = self.encoder.num_clauses();
        let state_ids = module.state_signals();
        if self.product.is_none() {
            let tmpl = self.template.as_ref().expect("template built");
            let n = module.signal_count();
            let leaf_idx: Vec<usize> = state_ids
                .iter()
                .map(|&r| {
                    tmpl.state_leaves
                        .iter()
                        .position(|(id, _, _)| *id == r)
                        .expect("every register has a leaf pair")
                })
                .collect();
            let mut leaves1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            for (id, _, s1) in &tmpl.state_leaves {
                leaves1[id.index()] = s1.clone();
            }
            for (idx, bits) in tmpl.inputs1_t.iter().enumerate() {
                if !bits.is_empty() {
                    leaves1[idx] = bits.clone();
                }
            }
            let mut leaves1_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
            for (idx, bits) in tmpl.inputs1_t1.iter().enumerate() {
                if !bits.is_empty() {
                    leaves1_t1[idx] = bits.clone();
                }
            }
            let outs = module.control_outputs();
            self.product = Some(WordProduct {
                leaf_idx,
                selectors: vec![None; state_ids.len()],
                frame1_t: LazyFrame::new(module, leaves1),
                frame1_t1: LazyFrame::new(module, leaves1_t1),
                next1: vec![None; state_ids.len()],
                diff_next: vec![None; state_ids.len()],
                next_cone: vec![None; state_ids.len()],
                out_cone: vec![None; outs.len()],
                diff_out: vec![None; outs.len()],
                outs,
                cond_eq_violation: Vec::new(),
                w_constraints: 0,
                w_invariants: 0,
                w_cond_eqs: 0,
            });
        }
        let tmpl = self.template.as_ref().expect("template built");
        let product = self.product.as_mut().expect("product just built");
        let aig = &mut self.aig;
        let encoder = &mut self.encoder;
        for &constraint in &self.spec.software_constraints[product.w_constraints..] {
            let lit = word_predicate_t(aig, module, product, constraint);
            encoder.assert_true(aig, lit);
            let lit = word_predicate_t1(aig, module, product, &state_ids, constraint);
            encoder.assert_true(aig, lit);
        }
        product.w_constraints = self.spec.software_constraints.len();
        for &invariant in &self.spec.invariants[product.w_invariants..] {
            let lit = word_predicate_t(aig, module, product, invariant);
            encoder.assert_true(aig, lit);
        }
        product.w_invariants = self.spec.invariants.len();
        for &(cond, signal) in &self.spec.conditional_equalities[product.w_cond_eqs..] {
            let i = state_ids
                .iter()
                .position(|&r| r == signal)
                .expect("conditional equality must target a register");
            // Assumed at `t`: whenever `cond` holds in both instances the
            // target register is equal. Over the split leaves this is a
            // genuine constraint (over shared bit-mode leaves it was
            // per-check); it states the same spec fact in every check, so
            // it is asserted once.
            let c0 = blast_predicate(aig, module, &tmpl.frame0_t, cond);
            let c1 = word_predicate_t(aig, module, product, cond);
            let both = aig.and(c0, c1);
            let eq = {
                let (_, b0, s1) = &tmpl.state_leaves[product.leaf_idx[i]];
                eq_word(aig, b0, s1)
            };
            let implied = {
                let nb = !both;
                aig.or(nb, eq)
            };
            encoder.assert_true(aig, implied);
            // Proven at `t+1`: the violation monitor joins every check's
            // monitor disjunction.
            let c0n = blast_predicate(aig, module, &tmpl.frame0_t1, cond);
            let c1n = word_predicate_t1(aig, module, product, &state_ids, cond);
            let bothn = aig.and(c0n, c1n);
            let n1 = ensure_next1(aig, module, product, &state_ids, i);
            let eqn = eq_word(aig, &tmpl.next0[i], &n1);
            let viol = {
                let ne = !eqn;
                aig.and(bothn, ne)
            };
            product.cond_eq_violation.push(viol);
        }
        product.w_cond_eqs = self.spec.conditional_equalities.len();
        self.elab.template_nodes += aig.node_count() - nodes_before;
        self.product_stats.one_time_sat_vars +=
            encoder.num_vars().saturating_sub(vars_before) as u64;
        self.product_stats.one_time_sat_clauses +=
            encoder.num_clauses().saturating_sub(clauses_before) as u64;
    }

    /// The word-level check ([`UpecEncoding::Words`]): no re-elaboration,
    /// no fresh clauses beyond lazily-created predicates/monitors and one
    /// guarded monitor disjunction — `Z'` is selected purely by assuming
    /// selectors over the static product, and refinement weakens guards by
    /// flipping those assumptions.
    fn check_words(
        &mut self,
        z_prime: &[SignalId],
        include_outputs: bool,
    ) -> (UpecOutcome, Option<Result<CheckCertificate, CertError>>) {
        let module = self.module;
        let n = module.signal_count();
        let mut in_z = vec![false; n];
        for &z in z_prime {
            in_z[z.index()] = true;
        }
        let state_ids = module.state_signals();
        let tmpl = self.template.as_ref().expect("template built");
        let product = self.product.as_mut().expect("product built");
        let aig = &mut self.aig;
        let encoder = &mut self.encoder;
        let nodes_before = aig.node_count();

        // Guarded equivalence predicates and difference monitors for the
        // current Z', created on a register's first appearance and reused
        // ever after. Registers that never enter Z' never pay for either,
        // and a monitor whose fan-in boundary is *clean* — every edge
        // register selected, no data input read — is pruned outright: the
        // assumed predicates force both cones onto pairwise-equal leaves,
        // so the difference is unsatisfiable by propagation and neither
        // its AIG cone nor its CNF is ever built.
        let mut new_predicates = 0u64;
        let mut dirty_state = vec![false; state_ids.len()];
        for (i, &reg) in state_ids.iter().enumerate() {
            if !in_z[reg.index()] {
                continue;
            }
            if product.selectors[i].is_none() {
                let sel = encoder.fresh_var();
                let ns = sel.negative();
                let (_, b0, s1) = &tmpl.state_leaves[product.leaf_idx[i]];
                for (&a, &b) in b0.iter().zip(s1.iter()) {
                    let la = encoder.lit(aig, a);
                    let lb = encoder.lit(aig, b);
                    encoder.add_clause(&[ns, !la, lb]);
                    encoder.add_clause(&[ns, la, !lb]);
                }
                product.selectors[i] = Some(sel);
                new_predicates += 1;
            }
            if product.next_cone[i].is_none() {
                product.next_cone[i] = Some(ConeBoundary::of_next(module, reg));
            }
            dirty_state[i] = product.next_cone[i]
                .as_ref()
                .expect("just built")
                .dirty(&in_z);
            if dirty_state[i] && product.diff_next[i].is_none() {
                let n1 = ensure_next1(aig, module, product, &state_ids, i);
                let eq = eq_word(aig, &tmpl.next0[i], &n1);
                product.diff_next[i] = Some(!eq);
            }
        }
        // Output monitors, cone-pruned the same way. At `t+1` an output
        // reads next-state words, so the divergence sources are the data
        // inputs of its own cone plus any edge register whose *next-state*
        // boundary is dirty (whether or not that register is in Z': its
        // `t+1` value is a function of the `t` leaves alone).
        let mut dirty_outs: Vec<(SignalId, AigLit)> = Vec::new();
        if include_outputs {
            for j in 0..product.outs.len() {
                let y = product.outs[j];
                if product.out_cone[j].is_none() {
                    product.out_cone[j] = Some(ConeBoundary::of(module, &[y]));
                }
                let boundary = product.out_cone[j].clone().expect("just built");
                let dirty_t = boundary.dirty(&in_z);
                let dirty_t1 = boundary.reads_data
                    || boundary.regs.iter().any(|&r| {
                        let i = state_ids
                            .iter()
                            .position(|&s| s == r)
                            .expect("boundary registers are state signals");
                        if product.next_cone[i].is_none() {
                            product.next_cone[i] = Some(ConeBoundary::of_next(module, r));
                        }
                        product.next_cone[i]
                            .as_ref()
                            .expect("just built")
                            .dirty(&in_z)
                    });
                if !dirty_t && !dirty_t1 {
                    continue;
                }
                if product.diff_out[j].is_none() {
                    let mask_t = comb_cone_mask(module, &[y]);
                    product.frame1_t.ensure(aig, module, &mask_t);
                    ensure_frame1_t1(aig, module, product, &state_ids, &[y]);
                    let eq_a = eq_word(aig, tmpl.frame0_t.signal(y), product.frame1_t.signal(y));
                    let eq_b = eq_word(aig, tmpl.frame0_t1.signal(y), product.frame1_t1.signal(y));
                    let both = aig.and(eq_a, eq_b);
                    product.diff_out[j] = Some(!both);
                }
                dirty_outs.push((y, product.diff_out[j].expect("just built")));
            }
        }

        // The current Z' as assumptions: the activation guard for this
        // check's monitor clause, the selector of every Z' register
        // (strengthening its predicate to "words equal by propagation"),
        // and the *negated* selector of every instantiated predicate not
        // currently selected — the weakened guard, restoring the free
        // split exactly as bit mode's private leaves do.
        let guard = encoder.fresh_var();
        let g = guard.positive();
        let ng = guard.negative();
        let mut assumptions = vec![g];
        for (i, &reg) in state_ids.iter().enumerate() {
            if in_z[reg.index()] {
                let sel = product.selectors[i].expect("predicate created above");
                assumptions.push(sel.positive());
            } else if let Some(sel) = product.selectors[i] {
                assumptions.push(sel.negative());
            }
        }

        // Strengthened checks never reach this path: `check_internal`
        // routes them through the bit encoding (see its dispatch).
        debug_assert!(self.pending_relational.is_empty());

        // --- monitors + solve -------------------------------------------
        // Only dirty monitors reach the clause; a pruned predicate is
        // exactly one whose bit-mode counterpart would have folded to
        // constant false under shared leaves.
        let mut diff_state: Vec<(SignalId, AigLit)> = Vec::new();
        for (i, &reg) in state_ids.iter().enumerate() {
            if in_z[reg.index()] && dirty_state[i] {
                let d = product.diff_next[i].expect("monitor created above");
                if d != AigLit::FALSE {
                    diff_state.push((reg, d));
                }
            }
        }
        let diff_out = dirty_outs;
        let cond_eq_violation = product.cond_eq_violation.clone();
        let mut monitored: Vec<Lit> = vec![ng];
        for &(_, d) in &diff_state {
            monitored.push(encoder.lit(aig, d));
        }
        for &(_, d) in &diff_out {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(aig, d));
            }
        }
        for &d in &cond_eq_violation {
            if d != AigLit::FALSE {
                monitored.push(encoder.lit(aig, d));
            }
        }
        self.last_aig_nodes = aig.node_count();
        let created = aig.node_count() - nodes_before;
        self.elab.check_nodes += created;
        self.elab.last_check_nodes = created;
        self.product_stats.predicates += new_predicates;
        self.product_stats.guard_assumptions += assumptions.len() as u64;

        let outcome = if monitored.len() == 1 {
            Some(SolveResult::Unsat)
        } else {
            encoder.add_clause(&monitored);
            encoder.solve_with_budget(&assumptions, WORD_CONFLICT_BUDGET)
        };
        let Some(outcome) = outcome else {
            // Budget exhausted: this check's dirty cones sit where bit
            // mode's shared leaves would have folded the two instances
            // structurally, and the solver is re-deriving those internal
            // equivalences one conflict at a time. Retire the word
            // attempt's guard (its learnt clauses are implied and stay
            // useful) and re-run the check through the bit-level path on
            // the same solver — verdict, model shape, and certification
            // all follow the bit path from here.
            self.product_stats.word_fallbacks += 1;
            self.encoder.add_clause(&[ng]);
            return self.check_bits(z_prime, include_outputs);
        };
        let result = match outcome {
            SolveResult::Unsat => UpecOutcome::Holds,
            SolveResult::Sat => {
                let divergent_state = diff_state
                    .iter()
                    .filter(|&&(_, l)| encoder.model_value(l).unwrap_or(false))
                    .map(|&(s, _)| s)
                    .collect();
                let divergent_outputs = if include_outputs {
                    diff_out
                        .iter()
                        .filter(|&&(_, l)| encoder.model_value(l).unwrap_or(false))
                        .map(|&(s, _)| s)
                        .collect()
                } else {
                    Vec::new()
                };
                let violated_cond_eqs = cond_eq_violation
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| encoder.model_value(l).unwrap_or(false))
                    .map(|(i, _)| i)
                    .collect();
                // Witnesses read the split leaves directly: under an
                // assumed selector the model is forced to inst1 == inst0,
                // so the witness is consistent with this check's sharing.
                let witness = |bits: &[(SignalId, Vec<AigLit>, Vec<AigLit>)]| {
                    bits.iter()
                        .map(|(s, b0, b1)| StateWitness {
                            signal: *s,
                            inst0: word_value(encoder, b0),
                            inst1: word_value(encoder, b1),
                        })
                        .collect::<Vec<_>>()
                };
                UpecOutcome::Counterexample(UpecCounterexample {
                    divergent_state,
                    divergent_outputs,
                    state_values: witness(&tmpl.state_leaves),
                    input_values_t: witness(&tmpl.input_bits_t),
                    input_values_t1: witness(&tmpl.input_bits_t1),
                    violated_cond_eqs,
                })
            }
        };
        // Certify BEFORE retiring, exactly as in bit mode; the refutation
        // is of the full assumption set (guard plus selector phases).
        let certificate = if self.cert.is_some() {
            let trivial = monitored.len() == 1;
            let sat = matches!(result, UpecOutcome::Counterexample(_));
            Some(self.certify_check(trivial, sat, &assumptions))
        } else {
            None
        };
        // Retire only the activation guard; predicates and their monitors
        // are permanent and reused by later checks.
        self.encoder.add_clause(&[ng]);
        (result, certificate)
    }

    /// Probes stored clauses into the solver for every register whose
    /// instance-0 next-state cone is fully Tseitin-encoded. Each register
    /// is tried at most once per solver lifetime; a cone that is not yet
    /// (or not fully) encoded is skipped *without* marking it tried, so
    /// it retries once a later check's monitors materialize it — imports
    /// never force encoding.
    fn import_reusable_clauses(&mut self) {
        let Some(reuse) = &mut self.reuse else { return };
        let Some(tmpl) = &self.template else { return };
        for (i, roots) in tmpl.next0.iter().enumerate() {
            if reuse.tried[i] {
                continue;
            }
            let stored = reuse.store.lookup(&reuse.labels[i]);
            if stored.is_empty() || roots.is_empty() {
                reuse.tried[i] = true;
                continue;
            }
            // Cheap gate before the full cone walk: the roots encode last,
            // so unencoded roots mean the cone is not materialized yet.
            if roots
                .iter()
                .any(|r| self.encoder.node_sat_var(r.node()).is_none())
            {
                continue;
            }
            let nodes = cone_nodes(&self.aig, roots);
            let vars: Option<Vec<Var>> = nodes
                .iter()
                .map(|&n| self.encoder.node_sat_var(n))
                .collect();
            let Some(vars) = vars else { continue };
            reuse.tried[i] = true;
            for clause in stored {
                // Cone-local literal ±k maps to the k-th node of the
                // deterministic cone DFS. An ordinal beyond this cone is a
                // label collision with a differently-sized cone: skip.
                let lits: Option<Vec<Lit>> = clause
                    .iter()
                    .map(|&l| {
                        let ordinal = (l.unsigned_abs() as usize).checked_sub(1)?;
                        let var = *vars.get(ordinal)?;
                        Some(var.lit(l > 0))
                    })
                    .collect();
                if let Some(lits) = lits {
                    self.encoder.import_clause(&lits);
                }
            }
        }
    }

    /// Publishes this solver's short learnt clauses that live entirely
    /// inside one register's instance-0 next-state cone to the attached
    /// clause store's pending set, keyed by the cone's WL-canonical label
    /// and renumbered cone-locally (see [`ClauseStore`]). Returns how many
    /// clauses were offered. Call once when the engine retires; a no-op
    /// without a store.
    pub fn export_learnt_clauses(&self) -> u64 {
        let Some(reuse) = &self.reuse else { return 0 };
        let Some(tmpl) = &self.template else { return 0 };
        // First-cone-wins assignment of solver variables to (cone,
        // ordinal), in state order — deterministic, and clauses touching
        // shared or unclaimed variables (guards, selectors, instance-1
        // cones, Tseitin interiors outside any next-state cone) simply
        // fail to map and are not exported.
        let mut assign: HashMap<Var, (usize, i32)> = HashMap::new();
        for (i, roots) in tmpl.next0.iter().enumerate() {
            if roots.is_empty()
                || roots
                    .iter()
                    .any(|r| self.encoder.node_sat_var(r.node()).is_none())
            {
                continue;
            }
            let nodes = cone_nodes(&self.aig, roots);
            let vars: Option<Vec<Var>> = nodes
                .iter()
                .map(|&n| self.encoder.node_sat_var(n))
                .collect();
            let Some(vars) = vars else { continue };
            for (ordinal, var) in vars.into_iter().enumerate() {
                assign.entry(var).or_insert((i, ordinal as i32 + 1));
            }
        }
        let mut per_cone: HashMap<usize, Vec<Vec<i32>>> = HashMap::new();
        self.encoder.for_each_learnt(MAX_REUSE_CLAUSE_LEN, |lits| {
            let mut cone: Option<usize> = None;
            let mut out = Vec::with_capacity(lits.len());
            for &l in lits {
                match assign.get(&l.var()) {
                    Some(&(c, ordinal)) if cone.is_none() || cone == Some(c) => {
                        cone = Some(c);
                        out.push(if l.is_positive() { ordinal } else { -ordinal });
                    }
                    _ => return,
                }
            }
            if let Some(c) = cone {
                per_cone.entry(c).or_default().push(out);
            }
        });
        let mut cones: Vec<usize> = per_cone.keys().copied().collect();
        cones.sort_unstable();
        let mut published = 0u64;
        for c in cones {
            let clauses = per_cone.remove(&c).expect("key just listed");
            published += clauses.len() as u64;
            reuse.store.publish(reuse.labels[c], clauses);
        }
        published
    }

    /// Certifies the check that just solved: feed the checker the trace
    /// slice this check appended, then validate the verdict — a RUP
    /// refutation of the activation literal for UNSAT, a model evaluation
    /// for SAT. Writes external-checker artifacts if requested.
    fn certify_check(
        &mut self,
        trivial: bool,
        sat: bool,
        assumptions: &[Lit],
    ) -> Result<CheckCertificate, CertError> {
        let started = Instant::now();
        let cert = self.cert.as_mut().expect("certification enabled");
        let proof = self.encoder.proof().expect("proof logging on");
        let snapshot = proof.len();
        let steps = proof.steps();
        cert.stats.certified_checks += 1;
        let verdict = cert
            .checker
            .feed(&steps[cert.consumed..snapshot])
            .and_then(|()| {
                if trivial {
                    cert.stats.trivial_unsat += 1;
                    Ok(CheckCertificate::TrivialUnsat)
                } else if sat {
                    let clauses = fastpath_cert::check_model(
                        &steps[..snapshot],
                        assumptions,
                        self.encoder.model(),
                    )?;
                    cert.stats.sat_models += 1;
                    Ok(CheckCertificate::SatModel { clauses })
                } else {
                    cert.checker.verify_unsat(assumptions)?;
                    cert.stats.unsat_proofs += 1;
                    Ok(CheckCertificate::UnsatProof { steps: snapshot })
                }
            });
        cert.consumed = snapshot;
        if verdict.is_err() {
            cert.stats.cert_failures += 1;
        }
        cert.last_artifact = None;
        let render = !trivial && (cert.artifact_dir.is_some() || cert.capture);
        if render {
            // Hinted capture first: the tracker emits the backward-trimmed
            // core + hinted refutation straight from the cores it recorded
            // during replay — no DRUP text is rendered or re-parsed. On
            // any emission failure the forward render below takes over.
            if cert.capture && verdict.is_ok() && !sat {
                if let CertChecker::Hinted(tracker) = &cert.checker {
                    if let Ok((cnf, hints)) = tracker.emit_hinted(assumptions) {
                        cert.last_artifact = Some(ProofArtifact {
                            cnf,
                            drup: hints,
                            hinted: true,
                        });
                    }
                }
            }
            let need_forward = cert.artifact_dir.is_some()
                || (cert.capture && verdict.is_ok() && !sat && cert.last_artifact.is_none());
            if need_forward {
                let cnf = Cnf::from_steps(&steps[..snapshot], assumptions).to_dimacs();
                let drup = (!sat).then(|| {
                    proof.render_drup(snapshot, assumptions).unwrap_or_else(|| {
                        artifacts::proof_to_drup(&steps[..snapshot], assumptions)
                    })
                });
                if cert.capture && verdict.is_ok() && cert.last_artifact.is_none() {
                    if let Some(drup) = &drup {
                        cert.last_artifact = Some(ProofArtifact {
                            cnf: cnf.clone(),
                            drup: drup.clone(),
                            hinted: false,
                        });
                    }
                }
                if let Some(dir) = &cert.artifact_dir {
                    // Rejected certificates are dumped too — that is exactly
                    // when an external cross-audit matters most.
                    let index = cert.stats.certified_checks;
                    let base = dir.join(format!("{}check{:04}", cert.artifact_prefix, index));
                    let (path, payload) = match drup {
                        Some(drup) => (base.with_extension("drup"), drup),
                        None => (
                            base.with_extension("model"),
                            artifacts::model_to_text(self.encoder.model()),
                        ),
                    };
                    let wrote = std::fs::create_dir_all(dir).and_then(|()| {
                        std::fs::write(base.with_extension("cnf"), cnf)?;
                        std::fs::write(path, payload)
                    });
                    match wrote {
                        Ok(()) => cert.stats.artifacts_written += 1,
                        Err(_) => cert.stats.artifact_failures += 1,
                    }
                }
            }
        }
        match &cert.checker {
            CertChecker::Hinted(_) => cert.backward_time += started.elapsed(),
            CertChecker::Forward(_) => cert.forward_time += started.elapsed(),
        }
        verdict
    }
}

/// The AIG cone of `roots` in deterministic preorder-DFS first-visit
/// order: roots in word order, then fanin 0 before fanin 1. The ordinal a
/// node gets is a pure function of the cone's *structure*, so two
/// isomorphic cones — across checks, runs, designs, or machines — number
/// their nodes identically. Cone-local clause-store literals are ordinals
/// into this order.
fn cone_nodes(aig: &Aig, roots: &[AigLit]) -> Vec<usize> {
    let mut order = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<usize> = roots.iter().rev().map(|r| r.node()).collect();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        order.push(n);
        if let Some((a, b)) = aig.and_fanins(n) {
            stack.push(b.node());
            stack.push(a.node());
        }
    }
    order
}

fn word_value(encoder: &CnfEncoder, bits: &[AigLit]) -> BitVec {
    let mut v = BitVec::zero(bits.len().max(1) as u32);
    for (i, &b) in bits.iter().enumerate() {
        if encoder.model_value(b).unwrap_or(false) {
            v.set_bit(i as u32, true);
        }
    }
    v
}

pub(crate) fn alloc_input(
    aig: &mut Aig,
    role: SignalRole,
    width: u32,
) -> (Vec<AigLit>, Vec<AigLit>) {
    match role {
        SignalRole::DataIn => {
            // Confidential: free and independent per instance.
            let b0 = (0..width).map(|_| aig.input()).collect();
            let b1 = (0..width).map(|_| aig.input()).collect();
            (b0, b1)
        }
        _ => {
            // Control (or unannotated): shared, hence equal by construction.
            let shared: Vec<AigLit> = (0..width).map(|_| aig.input()).collect();
            (shared.clone(), shared)
        }
    }
}

pub(crate) fn blast_predicate(
    aig: &mut Aig,
    module: &Module,
    frame: &Frame,
    expr: ExprId,
) -> AigLit {
    let word = crate::blast::blast_expr_in_frame(aig, module, frame, expr);
    assert_eq!(word.len(), 1, "constraints and invariants must be 1 bit");
    word[0]
}

/// Blasts a 1-bit predicate over instance 1's `t` frame, materializing
/// exactly the combinational cone it reads.
fn word_predicate_t(
    aig: &mut Aig,
    module: &Module,
    product: &mut WordProduct,
    expr: ExprId,
) -> AigLit {
    let supports = module.expr_supports(expr);
    let mask = comb_cone_mask(module, &supports);
    product.frame1_t.ensure(aig, module, &mask);
    let word = product.frame1_t.expr(aig, module, expr);
    assert_eq!(word.len(), 1, "constraints and invariants must be 1 bit");
    word[0]
}

/// Blasts a 1-bit predicate over instance 1's `t+1` frame.
fn word_predicate_t1(
    aig: &mut Aig,
    module: &Module,
    product: &mut WordProduct,
    state_ids: &[SignalId],
    expr: ExprId,
) -> AigLit {
    let supports = module.expr_supports(expr);
    ensure_frame1_t1(aig, module, product, state_ids, &supports);
    let word = product.frame1_t1.expr(aig, module, expr);
    assert_eq!(word.len(), 1, "constraints and invariants must be 1 bit");
    word[0]
}

/// Materializes instance 1's `t+1` cones of `targets`: next-state words
/// for the boundary registers first (themselves demand-driven over the
/// `t` frame), then the combinational interior.
fn ensure_frame1_t1(
    aig: &mut Aig,
    module: &Module,
    product: &mut WordProduct,
    state_ids: &[SignalId],
    targets: &[SignalId],
) {
    let mask = comb_cone_mask(module, targets);
    for (i, &reg) in state_ids.iter().enumerate() {
        if mask[reg.index()] && !product.frame1_t1.has(reg) {
            let w = ensure_next1(aig, module, product, state_ids, i);
            product.frame1_t1.set_leaf(reg, w);
        }
    }
    product.frame1_t1.ensure(aig, module, &mask);
}

/// Instance 1's next-state word for register `i` (in `state_signals()`
/// order), elaborating exactly its fan-in cone over the `t` frame on
/// first use.
fn ensure_next1(
    aig: &mut Aig,
    module: &Module,
    product: &mut WordProduct,
    state_ids: &[SignalId],
    i: usize,
) -> Vec<AigLit> {
    if let Some(w) = &product.next1[i] {
        return w.clone();
    }
    let driver = module.driver(state_ids[i]).expect("register driven");
    let supports = module.expr_supports(driver);
    let mask = comb_cone_mask(module, &supports);
    product.frame1_t.ensure(aig, module, &mask);
    let w = product.frame1_t.expr(aig, module, driver);
    product.next1[i] = Some(w.clone());
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// Oblivious: output timing driven by a free-running counter.
    fn oblivious() -> Module {
        let mut b = ModuleBuilder::new("obl");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        b.data_output("result", a);
        let cnt = b.reg("cnt", 4, 0);
        let c = b.sig(cnt);
        let one = b.lit(4, 1);
        let inc = b.add(c, one);
        b.set_next(cnt, inc).expect("drive");
        let busy = b.eq_lit(c, 0);
        b.control_output("busy", busy);
        b.build().expect("valid")
    }

    /// Leaky: the control output looks at the (data) accumulator.
    fn leaky() -> Module {
        let mut b = ModuleBuilder::new("leak");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        let odd = b.bit(a, 0);
        b.control_output("parity", odd);
        b.build().expect("valid")
    }

    #[test]
    fn oblivious_design_holds_with_data_state_excluded() {
        let m = oblivious();
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // Z' = {cnt}: acc is known-tainted data state.
        let outcome = upec.check(&[cnt]);
        assert!(outcome.holds(), "{outcome:?}");
    }

    #[test]
    fn full_state_check_finds_data_propagation() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // Baseline starting point: all state in Z'. The data input reaches
        // `acc`, so the check must produce a counterexample diverging there.
        match upec.check(&[acc, cnt]) {
            UpecOutcome::Counterexample(cex) => {
                assert_eq!(cex.divergent_state, vec![acc]);
                assert!(cex.divergent_outputs.is_empty());
            }
            UpecOutcome::Holds => panic!("expected divergence on acc"),
        }
        // After removing acc (the paper's refinement step), it holds.
        assert!(upec.check(&[cnt]).holds());
    }

    #[test]
    fn leaky_design_shows_output_divergence() {
        let m = leaky();
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // acc is data state (excluded); the parity output still reads it.
        match upec.check(&[]) {
            UpecOutcome::Counterexample(cex) => {
                let parity = m.signal_by_name("parity").expect("parity");
                assert_eq!(cex.divergent_outputs, vec![parity]);
            }
            UpecOutcome::Holds => panic!("expected output divergence"),
        }
    }

    #[test]
    fn witness_values_differ_where_expected() {
        let m = leaky();
        let acc = m.signal_by_name("acc").expect("acc");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        let UpecOutcome::Counterexample(cex) = upec.check(&[]) else {
            panic!("expected counterexample");
        };
        let w = cex
            .state_values
            .iter()
            .find(|w| w.signal == acc)
            .expect("acc witness");
        assert_ne!(w.inst0, w.inst1, "acc must differ to flip parity");
    }

    #[test]
    fn software_constraint_can_restore_obliviousness() {
        // A design that leaks only when mode==1; constraining mode==0
        // makes it data-oblivious. Constraint expressions are built in the
        // module's own arena (the pattern the designs crate uses).
        let mut b = ModuleBuilder::new("modal");
        let mode = b.control_input("mode", 1);
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let acc = b.reg("acc", 4, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let m_sig = b.sig(mode);
        let zero = b.lit(4, 0);
        let acc_or_zero = b.mux(m_sig, a, zero);
        let leak_bit = b.red_or(acc_or_zero);
        b.control_output("leak", leak_bit);
        let mode_off = b.eq_lit(m_sig, 0); // the software constraint
        let module = b.build().expect("valid");

        // Unconstrained: leaks even with acc excluded from Z'.
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        assert!(!upec.check(&[]).holds());

        // Adding the derived constraint `mode == 0` incrementally on the
        // SAME engine (the flow's refinement loop): data-oblivious.
        upec.add_software_constraint(mode_off);
        assert!(upec.check(&[]).holds());

        // A fresh engine with the constraint from the start agrees.
        let spec = UpecSpec {
            software_constraints: vec![mode_off],
            invariants: vec![],
            conditional_equalities: vec![],
        };
        let mut upec = Upec2Safety::new(&module, &spec);
        assert!(upec.check(&[]).holds());
    }

    #[test]
    fn invariant_excludes_spurious_counterexample() {
        // A one-hot FSM: states 01 and 10 are the only reachable encodings,
        // and the control output leaks data only in the unreachable state
        // 11. The symbolic initial state produces a spurious counterexample
        // unless the one-hot invariant is supplied — the paper's
        // "refine the property with an invariant" case.
        let mut b = ModuleBuilder::new("onehot");
        let data = b.data_input("data", 1);
        let d = b.sig(data);
        let state = b.reg("state", 2, 0b01);
        let s = b.sig(state);
        let s0 = b.bit(s, 0);
        let s1 = b.bit(s, 1);
        // 01 <-> 10 toggle.
        let swapped = b.concat(s0, s1);
        b.set_next(state, swapped).expect("drive");
        let data_reg = b.reg("data_reg", 1, 0);
        b.set_next(data_reg, d).expect("drive");
        let dr = b.sig(data_reg);
        let both = b.and(s0, s1);
        let leak = b.and(both, dr);
        b.control_output("leak", leak);
        let onehot = b.xor(s0, s1); // exactly one bit set
        let module = b.build().expect("valid");

        let state_id = module.signal_by_name("state").expect("state");
        // Without the invariant: spurious counterexample from state 11.
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        assert!(!upec.check(&[state_id]).holds());

        // Adding the one-hot invariant on the same engine: holds.
        upec.add_invariant(onehot);
        assert!(upec.check(&[state_id]).holds());

        // A fresh engine with the invariant from the start agrees.
        let spec = UpecSpec {
            software_constraints: vec![],
            invariants: vec![onehot],
            conditional_equalities: vec![],
        };
        let mut upec = Upec2Safety::new(&module, &spec);
        assert!(upec.check(&[state_id]).holds());
    }

    #[test]
    fn certified_checks_validate_in_both_modes() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        for mode in [ElaborationMode::Cached, ElaborationMode::Fresh] {
            let mut upec = Upec2Safety::with_mode(&m, &UpecSpec::default(), mode);
            upec.enable_certification();
            let holds = upec.check_certified(&[cnt]);
            assert!(holds.outcome.holds(), "{mode:?}");
            assert!(
                matches!(
                    holds.certificate,
                    Ok(CheckCertificate::UnsatProof { .. }) | Ok(CheckCertificate::TrivialUnsat)
                ),
                "{mode:?}: {:?}",
                holds.certificate
            );
            let cex = upec.check_certified(&[acc, cnt]);
            assert!(!cex.outcome.holds(), "{mode:?}");
            assert!(
                matches!(cex.certificate, Ok(CheckCertificate::SatModel { .. })),
                "{mode:?}: {:?}",
                cex.certificate
            );
            // A third check on the same engine: retirement of the earlier
            // guards must not leak vacuity into later certificates.
            let again = upec.check_certified(&[cnt]);
            assert!(again.outcome.holds(), "{mode:?}");
            assert!(again.is_certified(), "{mode:?}");
            let stats = upec.cert_stats().expect("enabled");
            assert_eq!(stats.certified_checks, 3, "{mode:?}");
            assert_eq!(stats.cert_failures, 0, "{mode:?}");
            assert_eq!(stats.sat_models, 1, "{mode:?}");
        }
    }

    /// The modal design: leaks only when `mode == 1`. Returns the module
    /// and the `mode == 0` software-constraint expression.
    fn modal() -> (Module, ExprId) {
        let mut b = ModuleBuilder::new("modal");
        let mode = b.control_input("mode", 1);
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let acc = b.reg("acc", 4, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let m_sig = b.sig(mode);
        let zero = b.lit(4, 0);
        let acc_or_zero = b.mux(m_sig, a, zero);
        let leak_bit = b.red_or(acc_or_zero);
        b.control_output("leak", leak_bit);
        let mode_off = b.eq_lit(m_sig, 0);
        (b.build().expect("valid"), mode_off)
    }

    #[test]
    fn certified_spec_growth_with_constraint() {
        // The modal design with certification on while the spec grows
        // mid-engine.
        let (module, mode_off) = modal();
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        upec.enable_certification();
        let leaky = upec.check_certified(&[]);
        assert!(!leaky.outcome.holds());
        assert!(leaky.is_certified(), "{:?}", leaky.certificate);
        upec.add_software_constraint(mode_off);
        let fixed = upec.check_certified(&[]);
        assert!(fixed.outcome.holds());
        assert!(fixed.is_certified(), "{:?}", fixed.certificate);
        let stats = upec.cert_stats().expect("enabled");
        assert_eq!(stats.cert_failures, 0);
        assert_eq!(stats.sat_models, 1);
        assert!(stats.unsat_proofs + stats.trivial_unsat == 1);
    }

    #[test]
    fn captured_artifacts_revalidate_in_memory() {
        let (module, mode_off) = modal();
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        upec.enable_certification();
        upec.enable_artifact_capture();
        // SAT check: nothing captured (the verdict re-validates by
        // concrete replay instead).
        assert!(!upec.check_certified(&[]).outcome.holds());
        assert!(upec.take_last_artifact().is_none());
        // UNSAT check: the captured pair is the hinted backward trim by
        // default, and must re-certify from text alone — exactly what a
        // proof cache does on a hit.
        upec.add_software_constraint(mode_off);
        assert!(upec.check_certified(&[]).outcome.holds());
        let artifact = upec.take_last_artifact().expect("captured");
        assert!(artifact.hinted, "hinted backward checking is the default");
        fastpath_cert::check_hinted_unsat_artifact(&artifact.cnf, &artifact.drup)
            .expect("captured artifact certifies");
        let (backward, forward) = upec.cert_times();
        assert!(backward > std::time::Duration::ZERO);
        assert_eq!(forward, std::time::Duration::ZERO);
        // Take is destructive.
        assert!(upec.take_last_artifact().is_none());
    }

    #[test]
    fn forward_mode_captures_plain_drup() {
        let (module, mode_off) = modal();
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        upec.set_cert_forward(true);
        upec.enable_certification();
        upec.enable_artifact_capture();
        assert!(!upec.check_certified(&[]).outcome.holds());
        upec.add_software_constraint(mode_off);
        assert!(upec.check_certified(&[]).outcome.holds());
        let artifact = upec.take_last_artifact().expect("captured");
        assert!(!artifact.hinted, "--cert-forward renders plain DRUP");
        fastpath_cert::artifacts::revalidate_unsat_artifact(&artifact.cnf, &artifact.drup)
            .expect("forward artifact certifies");
        let (backward, forward) = upec.cert_times();
        assert_eq!(backward, std::time::Duration::ZERO);
        assert!(forward > std::time::Duration::ZERO);
    }

    #[test]
    fn state_only_empty_partition_is_trivially_certified() {
        let m = oblivious();
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        upec.enable_certification();
        let out = upec.check_state_only_certified(&[]);
        assert!(out.outcome.holds());
        assert_eq!(out.certificate, Ok(CheckCertificate::TrivialUnsat));
    }

    #[test]
    fn artifacts_round_trip_through_dimacs() {
        let (module, mode_off) = modal();
        let dir =
            std::env::temp_dir().join(format!("fastpath_cert_artifacts_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        upec.enable_certification();
        upec.set_artifact_output(dir.clone(), "modal_");
        // Check 1: unconstrained, leaks — a SAT verdict with a model dump.
        assert!(!upec.check_certified(&[]).outcome.holds());
        // Check 2: constrained, holds — an UNSAT verdict with a DRUP dump.
        upec.add_software_constraint(mode_off);
        assert!(upec.check_certified(&[]).outcome.holds());
        let stats = upec.cert_stats().expect("enabled");
        assert_eq!(stats.artifacts_written, 2);
        assert_eq!(stats.artifact_failures, 0);
        // Check 1 (SAT): CNF satisfiable, model file alongside.
        let cnf1 = std::fs::read_to_string(dir.join("modal_check0001.cnf")).expect("cnf written");
        let parsed = fastpath_sat::parse_dimacs(&cnf1).expect("valid DIMACS");
        assert_eq!(parsed.into_solver().solve(), fastpath_sat::SolveResult::Sat);
        let model =
            std::fs::read_to_string(dir.join("modal_check0001.model")).expect("model written");
        assert!(model.starts_with('v') && model.trim_end().ends_with('0'));
        // Check 2 (UNSAT): the dumped CNF must be unsatisfiable on its
        // own — the activation assumption is baked in as a unit — and the
        // DRUP proof must be checkable against exactly that CNF.
        let cnf2 = std::fs::read_to_string(dir.join("modal_check0002.cnf")).expect("cnf written");
        let parsed = fastpath_sat::parse_dimacs(&cnf2).expect("valid DIMACS");
        assert_eq!(
            parsed.into_solver().solve(),
            fastpath_sat::SolveResult::Unsat,
            "dumped UNSAT instance must reproduce externally"
        );
        assert!(dir.join("modal_check0002.drup").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bits-engine and a words-engine over the same module, for
    /// agreement tests.
    fn bits_and_words<'a>(
        module: &'a Module,
        spec: &UpecSpec,
    ) -> (Upec2Safety<'a>, Upec2Safety<'a>) {
        let bits = Upec2Safety::new(module, spec);
        let mut words = Upec2Safety::new(module, spec);
        words.set_encoding(UpecEncoding::Words);
        (bits, words)
    }

    #[test]
    fn words_and_bits_agree_on_verdicts_and_divergence() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let (mut bits, mut words) = bits_and_words(&m, &UpecSpec::default());
        for z in [vec![acc, cnt], vec![cnt], vec![acc], vec![], vec![cnt]] {
            let a = bits.check(&z);
            let b = words.check(&z);
            assert_eq!(a.holds(), b.holds(), "disagree on Z'={z:?}");
            if let (UpecOutcome::Counterexample(ca), UpecOutcome::Counterexample(cb)) = (&a, &b) {
                assert_eq!(ca.divergent_state, cb.divergent_state, "Z'={z:?}");
                assert_eq!(ca.divergent_outputs, cb.divergent_outputs, "Z'={z:?}");
            }
        }
        // Output divergence agrees on the leaky design too.
        let m = leaky();
        let (mut bits, mut words) = bits_and_words(&m, &UpecSpec::default());
        let (a, b) = (bits.check(&[]), words.check(&[]));
        assert!(!a.holds() && !b.holds());
        let (UpecOutcome::Counterexample(ca), UpecOutcome::Counterexample(cb)) = (&a, &b) else {
            unreachable!()
        };
        assert_eq!(ca.divergent_outputs, cb.divergent_outputs);
        // And the words-mode witness genuinely diverges where expected.
        let acc = m.signal_by_name("acc").expect("acc");
        let w = cb
            .state_values
            .iter()
            .find(|w| w.signal == acc)
            .expect("acc witness");
        assert_ne!(w.inst0, w.inst1, "acc must differ to flip parity");
    }

    #[test]
    fn words_spec_growth_agrees_with_bits() {
        // Constraints added mid-engine.
        let (module, mode_off) = modal();
        let (mut bits, mut words) = bits_and_words(&module, &UpecSpec::default());
        assert!(!bits.check(&[]).holds());
        assert!(!words.check(&[]).holds());
        bits.add_software_constraint(mode_off);
        words.add_software_constraint(mode_off);
        assert!(bits.check(&[]).holds());
        assert!(words.check(&[]).holds());
    }

    #[test]
    fn words_invariant_excludes_spurious_counterexample() {
        // The one-hot FSM from the bits-mode invariant test.
        let mut b = ModuleBuilder::new("onehot");
        let data = b.data_input("data", 1);
        let d = b.sig(data);
        let state = b.reg("state", 2, 0b01);
        let s = b.sig(state);
        let s0 = b.bit(s, 0);
        let s1 = b.bit(s, 1);
        let swapped = b.concat(s0, s1);
        b.set_next(state, swapped).expect("drive");
        let data_reg = b.reg("data_reg", 1, 0);
        b.set_next(data_reg, d).expect("drive");
        let dr = b.sig(data_reg);
        let both = b.and(s0, s1);
        let leak = b.and(both, dr);
        b.control_output("leak", leak);
        let onehot = b.xor(s0, s1);
        let module = b.build().expect("valid");
        let state_id = module.signal_by_name("state").expect("state");
        let mut words = Upec2Safety::new(&module, &UpecSpec::default());
        words.set_encoding(UpecEncoding::Words);
        assert!(!words.check(&[state_id]).holds());
        words.add_invariant(onehot);
        assert!(words.check(&[state_id]).holds());
    }

    #[test]
    fn words_checks_certify_with_selector_assumptions() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        upec.set_encoding(UpecEncoding::Words);
        upec.enable_certification();
        let holds = upec.check_certified(&[cnt]);
        assert!(holds.outcome.holds());
        assert!(holds.is_certified(), "{:?}", holds.certificate);
        let cex = upec.check_certified(&[acc, cnt]);
        assert!(!cex.outcome.holds());
        assert!(
            matches!(cex.certificate, Ok(CheckCertificate::SatModel { .. })),
            "{:?}",
            cex.certificate
        );
        let again = upec.check_certified(&[cnt]);
        assert!(again.outcome.holds());
        assert!(again.is_certified(), "{:?}", again.certificate);
        let stats = upec.cert_stats().expect("enabled");
        assert_eq!(stats.certified_checks, 3);
        assert_eq!(stats.cert_failures, 0);
    }

    #[test]
    fn words_artifacts_revalidate_in_memory() {
        let (module, mode_off) = modal();
        let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
        upec.set_encoding(UpecEncoding::Words);
        upec.enable_certification();
        upec.enable_artifact_capture();
        assert!(!upec.check_certified(&[]).outcome.holds());
        assert!(upec.take_last_artifact().is_none());
        upec.add_software_constraint(mode_off);
        assert!(upec.check_certified(&[]).outcome.holds());
        let artifact = upec.take_last_artifact().expect("captured");
        // The CNF bakes in the full assumption set (guard + selector
        // phases), so it must re-certify from text alone.
        assert!(artifact.hinted);
        fastpath_cert::check_hinted_unsat_artifact(&artifact.cnf, &artifact.drup)
            .expect("captured artifact certifies");
    }

    /// One register whose next-state cone is a single AND of a control
    /// input and a *data* input — the smallest cone that cannot constant-
    /// fold away (the split data leaf keeps the difference monitor live,
    /// so the cone really gets Tseitin-encoded), with a numbering known
    /// by construction: ordinal 1 = the AND root, 2 and 3 = its fanins.
    fn conjunction_reg() -> Module {
        let mut b = ModuleBuilder::new("conj");
        let x = b.control_input("x", 1);
        let d = b.data_input("d", 1);
        let xs = b.sig(x);
        let ds = b.sig(d);
        let both = b.and(xs, ds);
        let r = b.reg("r", 1, 0);
        b.set_next(r, both).expect("drive");
        let rs = b.sig(r);
        b.control_output("out", rs);
        b.build().expect("valid")
    }

    #[test]
    fn clause_store_imports_probe_and_reexport() {
        let m = conjunction_reg();
        let r = m.signal_by_name("r").expect("r");
        let label = fastpath_rtl::canonical_form(&m).signal_label(r);
        let path = std::env::temp_dir().join(format!(
            "fastpath_clause_store_{}.txt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Seed the store with one implied cone-local clause (¬root ∨
        // fanin: half of the AND's Tseitin definition, hence RUP) and
        // one garbage clause the probe must reject (root ∧ ¬fanin is
        // satisfiable).
        {
            let store = ClauseStore::open(&path);
            store.publish(label, [vec![-1, 2], vec![1, -2]]);
            store.save().expect("save seed store");
        }
        let store = Arc::new(ClauseStore::open(&path));
        assert_eq!(store.base_clauses(), 2);
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        upec.set_clause_store(store.clone());
        let mut plain = Upec2Safety::new(&m, &UpecSpec::default());
        // First check materializes the cone; the second one's import pass
        // finds it encoded and probes the stored clauses. Verdicts agree
        // with the store-less engine throughout (r takes data, so Z'={r}
        // leaks in both).
        for _ in 0..2 {
            assert!(!upec.check(&[r]).holds());
            assert!(!plain.check(&[r]).holds());
        }
        let stats = upec.solver_stats();
        assert_eq!(stats.reuse_probed, 2);
        assert_eq!(stats.reuse_imported, 1, "the garbage clause is rejected");
        assert_eq!(plain.solver_stats().reuse_probed, 0);
        // The imported clause is a short learnt clause wholly inside the
        // cone, so the export pass republishes it to the pending set.
        assert!(upec.export_learnt_clauses() >= 1);
        assert!(store.pending_clauses() >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_cube_width_does_not_change_verdicts() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut base = Upec2Safety::new(&m, &UpecSpec::default());
        let mut cubed = Upec2Safety::new(&m, &UpecSpec::default());
        cubed.set_sat_cube(4);
        // Trigger after a single conflict so even these small checks
        // actually split.
        cubed.set_sat_cube_trigger(1);
        for z in [vec![acc, cnt], vec![cnt], vec![acc], vec![]] {
            assert_eq!(base.check(&z).holds(), cubed.check(&z).holds(), "{z:?}");
        }
    }

    #[test]
    fn words_refinement_reuses_the_static_product() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        upec.set_encoding(UpecEncoding::Words);
        let _ = upec.check(&[acc, cnt]);
        let _ = upec.check(&[cnt]);
        let after_two = upec.product_stats();
        // Both registers got predicates on the first check; the second
        // created none.
        assert_eq!(after_two.predicates, 2);
        // Re-checking a seen Z' adds no AIG nodes and only the activation
        // guard on the SAT side: the product is static.
        let _ = upec.check(&[cnt]);
        let s = upec.product_stats();
        assert_eq!(upec.elaboration_stats().last_check_nodes, 0);
        assert_eq!(s.predicates, 2);
        assert!(
            s.check_sat_vars - after_two.check_sat_vars <= 1,
            "repeat check allocated {} vars",
            s.check_sat_vars - after_two.check_sat_vars
        );
        assert!(
            s.check_sat_clauses - after_two.check_sat_clauses <= 2,
            "repeat check added {} clauses",
            s.check_sat_clauses - after_two.check_sat_clauses
        );
        // Guard assumptions: one activation per check plus the selector
        // phases of both instantiated predicates from check 2 onward.
        assert_eq!(s.guard_assumptions, 3 + 3 + 3);
    }

    #[test]
    fn words_fresh_mode_agrees() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut cached = Upec2Safety::new(&m, &UpecSpec::default());
        cached.set_encoding(UpecEncoding::Words);
        let mut fresh = Upec2Safety::with_mode(&m, &UpecSpec::default(), ElaborationMode::Fresh);
        fresh.set_encoding(UpecEncoding::Words);
        for z in [vec![acc, cnt], vec![cnt], vec![]] {
            assert_eq!(cached.check(&z).holds(), fresh.check(&z).holds(), "{z:?}");
        }
    }

    #[test]
    fn relational_clauses_discharge_a_non_inductive_check() {
        // A persistent mask bit gates the leak: `Z' = {mask}` is a true
        // partitioning but not 1-inductive, because the symbolic product
        // state includes the unreachable mask=1 half. IC3 derives the
        // reachability invariant; staging its clauses turns the same
        // induction check into the consecution theorem, which holds.
        let mut b = ModuleBuilder::new("masked");
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let mask = b.reg("mask", 1, 0);
        let msig = b.sig(mask);
        b.set_next(mask, msig).expect("self-loop");
        let acc = b.reg("acc", 4, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let zero = b.lit(4, 0);
        let gated = b.mux(msig, a, zero);
        let leak = b.red_or(gated);
        b.control_output("leak", leak);
        let m = b.build().expect("valid");
        let mask_id = m.signal_by_name("mask").expect("mask");

        let mut engine = crate::ic3::Ic3Engine::new(&m);
        let crate::ic3::Ic3Outcome::Proved(inv) = engine.prove(&[mask_id]) else {
            panic!("ic3 must prove the masked leak");
        };

        for enc in [UpecEncoding::Bits, UpecEncoding::Words] {
            let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
            upec.set_encoding(enc);
            assert!(
                !upec.check(&[mask_id]).holds(),
                "{enc}: plain induction should fail"
            );
            upec.add_relational_clauses(&inv.clauses);
            assert!(
                upec.check(&[mask_id]).holds(),
                "{enc}: invariant-strengthened induction should hold"
            );
            // Staging is one-shot: the clauses retire with their check's
            // activation literal and a plain re-check fails again.
            assert!(
                !upec.check(&[mask_id]).holds(),
                "{enc}: staged clauses must not persist"
            );
        }
    }

    #[test]
    fn relational_clause_discharge_is_certifiable() {
        // The strengthened check's UNSAT proof must survive independent
        // RUP re-validation — the exact artifact flow/cache re-check.
        let mut b = ModuleBuilder::new("masked_cert");
        let data = b.data_input("data", 2);
        let d = b.sig(data);
        let mask = b.reg("mask", 1, 0);
        let msig = b.sig(mask);
        b.set_next(mask, msig).expect("self-loop");
        let acc = b.reg("acc", 2, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let zero = b.lit(2, 0);
        let gated = b.mux(msig, a, zero);
        let leak = b.red_or(gated);
        b.control_output("leak", leak);
        let m = b.build().expect("valid");
        let mask_id = m.signal_by_name("mask").expect("mask");

        let mut engine = crate::ic3::Ic3Engine::new(&m);
        let crate::ic3::Ic3Outcome::Proved(inv) = engine.prove(&[mask_id]) else {
            panic!("ic3 must prove the masked leak");
        };
        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        upec.enable_certification();
        upec.add_relational_clauses(&inv.clauses);
        let certified = upec.check_certified(&[mask_id]);
        assert!(certified.outcome.holds(), "strengthened check should hold");
        assert!(
            certified.is_certified(),
            "UNSAT proof must re-validate: {:?}",
            certified.certificate
        );
    }

    #[test]
    fn cached_and_fresh_modes_agree_and_cache_saves_nodes() {
        let m = oblivious();
        let acc = m.signal_by_name("acc").expect("acc");
        let cnt = m.signal_by_name("cnt").expect("cnt");
        let mut cached = Upec2Safety::new(&m, &UpecSpec::default());
        let mut fresh = Upec2Safety::with_mode(&m, &UpecSpec::default(), ElaborationMode::Fresh);
        for z in [vec![acc, cnt], vec![cnt], vec![acc], vec![]] {
            let a = cached.check(&z);
            let b = fresh.check(&z);
            assert_eq!(a.holds(), b.holds(), "disagree on Z'={z:?}");
        }
        let e = cached.elaboration_stats();
        assert_eq!(e.template_builds, 1);
        assert_eq!(fresh.elaboration_stats().template_builds, 4);
        // Re-checking an already-seen Z' replays entirely through the
        // structural hash: no new nodes at all.
        let _ = cached.check(&[cnt]);
        assert_eq!(cached.elaboration_stats().last_check_nodes, 0);
        // And the cached engine's per-check node creation is strictly
        // below a full re-elaboration.
        assert!(
            e.check_nodes
                < fresh.elaboration_stats().template_nodes + fresh.elaboration_stats().check_nodes,
            "cache created {} nodes, fresh created {}",
            e.check_nodes,
            fresh.elaboration_stats().template_nodes + fresh.elaboration_stats().check_nodes,
        );
        assert!(e.strash_hits > 0, "replay must hit the cache");
    }
}
