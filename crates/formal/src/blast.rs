//! Bit-blasting: lowering word-level RTL expressions into the AIG.
//!
//! A [`Frame`] is one time-step view of a module: every signal mapped to a
//! vector of AIG literals. Leaves (inputs and registers) are supplied by
//! the caller — as fresh AIG inputs for a symbolic state, as constants for
//! a reset state, or shared with another instance to encode equality for
//! free — and the combinational signals are derived from the drivers.

use crate::aig::{Aig, AigLit};
use crate::words::{
    add_word, and_word, constant_word, eq_word, mul_word, mux_word, neg_word, not_word, or_word,
    reduce_and_word, reduce_or_word, reduce_xor_word, sext_word, shift_word, sle_word, slt_word,
    sub_word, ule_word, ult_word, xor_word, zext_word, ShiftKind,
};
use fastpath_rtl::{BinaryOp, BitVec, Expr, ExprId, Module, SignalId, SignalKind, UnaryOp};

/// One time-frame of a module in the AIG: a word of literals per signal.
#[derive(Clone, Debug)]
pub struct Frame {
    bits: Vec<Vec<AigLit>>,
}

impl Frame {
    /// The literal vector of a signal (LSB first).
    pub fn signal(&self, id: SignalId) -> &[AigLit] {
        &self.bits[id.index()]
    }
}

/// How to create the leaf (input/register) literals of a frame.
pub trait LeafSource {
    /// Produces the literal vector for leaf signal `id` of width `width`.
    fn leaf(&mut self, aig: &mut Aig, id: SignalId, width: u32) -> Vec<AigLit>;
}

/// Leaves as fresh symbolic AIG inputs.
#[derive(Debug, Default)]
pub struct SymbolicLeaves;

impl LeafSource for SymbolicLeaves {
    fn leaf(&mut self, aig: &mut Aig, _id: SignalId, width: u32) -> Vec<AigLit> {
        (0..width).map(|_| aig.input()).collect()
    }
}

/// Leaves from a fixed assignment (used for reset states in BMC).
#[derive(Debug)]
pub struct ConstantLeaves<'v> {
    /// Values per signal index; signals without a value become symbolic.
    pub values: Vec<Option<&'v BitVec>>,
}

impl LeafSource for ConstantLeaves<'_> {
    fn leaf(&mut self, aig: &mut Aig, id: SignalId, width: u32) -> Vec<AigLit> {
        match self.values.get(id.index()).copied().flatten() {
            Some(v) => constant_word(aig, width, |i| v.bit(i)),
            None => (0..width).map(|_| aig.input()).collect(),
        }
    }
}

/// Builds a frame: leaves from `source`, combinational signals derived.
pub fn build_frame(aig: &mut Aig, module: &Module, source: &mut dyn LeafSource) -> Frame {
    let mut bits: Vec<Vec<AigLit>> = vec![Vec::new(); module.signal_count()];
    for (id, signal) in module.signals() {
        if matches!(signal.kind, SignalKind::Input | SignalKind::Register) {
            bits[id.index()] = source.leaf(aig, id, signal.width);
        }
    }
    complete_frame(aig, module, bits)
}

/// Builds a frame whose leaf literals are given explicitly (inputs and
/// registers); derives the combinational signals.
pub fn build_frame_with_leaves(aig: &mut Aig, module: &Module, leaves: Vec<Vec<AigLit>>) -> Frame {
    complete_frame(aig, module, leaves)
}

fn complete_frame(aig: &mut Aig, module: &Module, mut bits: Vec<Vec<AigLit>>) -> Frame {
    let mut memo: Vec<Option<Vec<AigLit>>> = vec![None; module.expr_count()];
    for &sig in module.comb_order() {
        let driver = module.driver(sig).expect("comb signal driven");
        let word = blast_expr(aig, module, &bits, &mut memo, driver);
        bits[sig.index()] = word;
    }
    Frame { bits }
}

/// The next-state words of every register, computed from `frame`.
///
/// Returned in the order of [`Module::state_signals`].
pub fn next_state(aig: &mut Aig, module: &Module, frame: &Frame) -> Vec<Vec<AigLit>> {
    let mut memo: Vec<Option<Vec<AigLit>>> = vec![None; module.expr_count()];
    module
        .state_signals()
        .into_iter()
        .map(|reg| {
            let driver = module.driver(reg).expect("register driven");
            blast_expr(aig, module, &frame.bits, &mut memo, driver)
        })
        .collect()
}

/// Bit-blasts a single (1-bit or wider) expression in the context of a
/// frame. Useful for constraint and invariant predicates.
pub fn blast_expr_in_frame(
    aig: &mut Aig,
    module: &Module,
    frame: &Frame,
    expr: ExprId,
) -> Vec<AigLit> {
    let mut memo: Vec<Option<Vec<AigLit>>> = vec![None; module.expr_count()];
    blast_expr(aig, module, &frame.bits, &mut memo, expr)
}

/// A partially-elaborated time frame: leaves are supplied up front (or
/// patched in later via [`LazyFrame::set_leaf`]), combinational signals are
/// derived on demand, cone by cone, instead of walking the full
/// `comb_order` of the module.
///
/// This is the cone-pruned product constructor for the word-level UPEC
/// encoding: the second design instance only ever materializes the fan-in
/// cones that a guarded equivalence predicate, difference monitor, or spec
/// obligation actually reads. The expression memo persists across `ensure`
/// calls, so overlapping cones share structure exactly like a full frame
/// build would.
#[derive(Clone, Debug)]
pub struct LazyFrame {
    bits: Vec<Vec<AigLit>>,
    memo: Vec<Option<Vec<AigLit>>>,
}

impl LazyFrame {
    /// Creates a frame from explicit leaf words; empty vectors mark leaves
    /// to be patched in later (e.g. next-state words computed on demand).
    pub fn new(module: &Module, leaves: Vec<Vec<AigLit>>) -> Self {
        LazyFrame {
            bits: leaves,
            memo: vec![None; module.expr_count()],
        }
    }

    /// Whether `id` already has a word (leaf or elaborated).
    pub fn has(&self, id: SignalId) -> bool {
        !self.bits[id.index()].is_empty()
    }

    /// Installs (or replaces) a leaf word.
    pub fn set_leaf(&mut self, id: SignalId, word: Vec<AigLit>) {
        self.bits[id.index()] = word;
    }

    /// The literal vector of an already-elaborated signal (LSB first).
    pub fn signal(&self, id: SignalId) -> &[AigLit] {
        &self.bits[id.index()]
    }

    /// Elaborates every not-yet-defined combinational signal selected by
    /// `mask` (a per-signal membership mask as produced by
    /// `fastpath_rtl::comb_cone_mask`), in topological order. Leaves inside
    /// the mask must already be present.
    pub fn ensure(&mut self, aig: &mut Aig, module: &Module, mask: &[bool]) {
        for &sig in module.comb_order() {
            if mask[sig.index()] && self.bits[sig.index()].is_empty() {
                let driver = module.driver(sig).expect("comb signal driven");
                let LazyFrame { bits, memo } = self;
                let word = blast_expr(aig, module, bits, memo, driver);
                self.bits[sig.index()] = word;
            }
        }
    }

    /// Blasts an expression against the frame. Every signal the expression
    /// reads must already be present (use [`LazyFrame::ensure`] with the
    /// expression's support cone first).
    pub fn expr(&mut self, aig: &mut Aig, module: &Module, e: ExprId) -> Vec<AigLit> {
        let LazyFrame { bits, memo } = self;
        blast_expr(aig, module, bits, memo, e)
    }
}

fn blast_expr(
    aig: &mut Aig,
    module: &Module,
    env: &[Vec<AigLit>],
    memo: &mut Vec<Option<Vec<AigLit>>>,
    root: ExprId,
) -> Vec<AigLit> {
    if let Some(word) = &memo[root.index()] {
        return word.clone();
    }
    let word = match module.expr(root).clone() {
        Expr::Const(v) => constant_word(aig, v.width(), |i| v.bit(i)),
        Expr::Signal(s) => {
            debug_assert!(
                !env[s.index()].is_empty(),
                "signal `{}` read before defined during blasting",
                module.signal(s).name
            );
            env[s.index()].clone()
        }
        Expr::Unary(op, a) => {
            let a = blast_expr(aig, module, env, memo, a);
            match op {
                UnaryOp::Not => not_word(&a),
                UnaryOp::Neg => neg_word(aig, &a),
                UnaryOp::RedAnd => vec![reduce_and_word(aig, &a)],
                UnaryOp::RedOr => vec![reduce_or_word(aig, &a)],
                UnaryOp::RedXor => vec![reduce_xor_word(aig, &a)],
            }
        }
        Expr::Binary(op, a, b) => {
            let a = blast_expr(aig, module, env, memo, a);
            let b = blast_expr(aig, module, env, memo, b);
            match op {
                BinaryOp::And => and_word(aig, &a, &b),
                BinaryOp::Or => or_word(aig, &a, &b),
                BinaryOp::Xor => xor_word(aig, &a, &b),
                BinaryOp::Add => add_word(aig, &a, &b),
                BinaryOp::Sub => sub_word(aig, &a, &b),
                BinaryOp::Mul => mul_word(aig, &a, &b),
                BinaryOp::Shl => shift_word(aig, ShiftKind::Shl, &a, &b),
                BinaryOp::Lshr => shift_word(aig, ShiftKind::Lshr, &a, &b),
                BinaryOp::Ashr => shift_word(aig, ShiftKind::Ashr, &a, &b),
                BinaryOp::Eq => vec![eq_word(aig, &a, &b)],
                BinaryOp::Ne => vec![!eq_word(aig, &a, &b)],
                BinaryOp::Ult => vec![ult_word(aig, &a, &b)],
                BinaryOp::Ule => vec![ule_word(aig, &a, &b)],
                BinaryOp::Slt => vec![slt_word(aig, &a, &b)],
                BinaryOp::Sle => vec![sle_word(aig, &a, &b)],
            }
        }
        Expr::Mux {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = blast_expr(aig, module, env, memo, cond);
            let t = blast_expr(aig, module, env, memo, then_expr);
            let e = blast_expr(aig, module, env, memo, else_expr);
            mux_word(aig, c[0], &t, &e)
        }
        Expr::Slice { arg, hi, lo } => {
            let a = blast_expr(aig, module, env, memo, arg);
            a[lo as usize..=hi as usize].to_vec()
        }
        Expr::Concat(hi, lo) => {
            let h = blast_expr(aig, module, env, memo, hi);
            let mut l = blast_expr(aig, module, env, memo, lo);
            l.extend(h);
            l
        }
        Expr::Zext { arg, width } => {
            let a = blast_expr(aig, module, env, memo, arg);
            zext_word(&a, width)
        }
        Expr::Sext { arg, width } => {
            let a = blast_expr(aig, module, env, memo, arg);
            sext_word(&a, width)
        }
    };
    memo[root.index()] = Some(word.clone());
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Cross-checks bit-blasted semantics against the interpreter on random
    /// inputs for a module exercising every operator.
    #[test]
    fn frame_matches_interpreter_on_operator_soup() {
        let mut b = ModuleBuilder::new("soup");
        let a = b.input("a", 13);
        let c = b.input("c", 13);
        let sh = b.input("sh", 4);
        let a_sig = b.sig(a);
        let c_sig = b.sig(c);
        let sh_sig = b.sig(sh);
        let mut outs = Vec::new();
        let add = b.add(a_sig, c_sig);
        outs.push(b.output("o_add", add));
        let sub = b.sub(a_sig, c_sig);
        outs.push(b.output("o_sub", sub));
        let mul = b.mul(a_sig, c_sig);
        outs.push(b.output("o_mul", mul));
        let xo = b.xor(a_sig, c_sig);
        let an = b.and(a_sig, xo);
        let orr = b.or(an, c_sig);
        outs.push(b.output("o_logic", orr));
        let shl = b.shl(a_sig, sh_sig);
        outs.push(b.output("o_shl", shl));
        let lshr = b.lshr(a_sig, sh_sig);
        outs.push(b.output("o_lshr", lshr));
        let ashr = b.ashr(a_sig, sh_sig);
        outs.push(b.output("o_ashr", ashr));
        let ult = b.ult(a_sig, c_sig);
        let slt = b.slt(a_sig, c_sig);
        let ule = b.ule(a_sig, c_sig);
        let sle = b.sle(a_sig, c_sig);
        let eq = b.eq(a_sig, c_sig);
        let cmps = b.concat_all(&[ult, slt, ule, sle, eq]);
        outs.push(b.output("o_cmp", cmps));
        let neg = b.neg(a_sig);
        outs.push(b.output("o_neg", neg));
        let nt = b.not(a_sig);
        outs.push(b.output("o_not", nt));
        let ra = b.red_and(a_sig);
        let ro = b.red_or(a_sig);
        let rx = b.red_xor(a_sig);
        let reds = b.concat_all(&[ra, ro, rx]);
        outs.push(b.output("o_red", reds));
        let sl = b.slice(a_sig, 9, 3);
        let se = b.sext(sl, 13);
        let ze = b.zext(sl, 13);
        let mixed = b.mux(eq, se, ze);
        outs.push(b.output("o_mix", mixed));
        let m = b.build().expect("valid");

        let mut aig = Aig::new();
        let mut leaves = SymbolicLeaves;
        let frame = build_frame(&mut aig, &m, &mut leaves);

        let mut rng = StdRng::seed_from_u64(0xB1A57);
        for _ in 0..200 {
            let va = rng.gen_range(0..(1u64 << 13));
            let vc = rng.gen_range(0..(1u64 << 13));
            let vsh = rng.gen_range(0..16u64);
            // Build the AIG input assignment.
            let mut inputs = vec![false; aig.node_count()];
            let assign = |inputs: &mut Vec<bool>, frame: &Frame, sig: SignalId, val: u64| {
                for (i, &lit) in frame.signal(sig).iter().enumerate() {
                    inputs[lit.node()] = (val >> i) & 1 == 1;
                }
            };
            assign(&mut inputs, &frame, a, va);
            assign(&mut inputs, &frame, c, vc);
            assign(&mut inputs, &frame, sh, vsh);
            // Interpreter environment.
            let mut env: Vec<BitVec> = m.signals().map(|(_, s)| BitVec::zero(s.width)).collect();
            env[a.index()] = BitVec::from_u64(13, va);
            env[c.index()] = BitVec::from_u64(13, vc);
            env[sh.index()] = BitVec::from_u64(4, vsh);
            for &out in &outs {
                let driver = m.driver(out).expect("driven");
                let expected = m.eval(driver, &env);
                let got: u64 = frame
                    .signal(out)
                    .iter()
                    .enumerate()
                    .map(|(i, &lit)| (aig.eval(lit, &inputs) as u64) << i)
                    .sum();
                assert_eq!(
                    got,
                    expected.to_u64(),
                    "output {} with a={va} c={vc} sh={vsh}",
                    m.signal(out).name
                );
            }
        }
    }

    #[test]
    fn constant_leaves_fix_registers() {
        let mut b = ModuleBuilder::new("m");
        let r = b.reg("r", 8, 0x5A);
        let r_sig = b.sig(r);
        b.output("out", r_sig);
        let one = b.lit(8, 1);
        let next = b.add(r_sig, one);
        b.set_next(r, next).expect("drive");
        let m = b.build().expect("valid");

        let inits: Vec<Option<&BitVec>> = m.signals().map(|(_, s)| s.init.as_ref()).collect();
        let mut aig = Aig::new();
        let mut leaves = ConstantLeaves { values: inits };
        let frame = build_frame(&mut aig, &m, &mut leaves);
        let out = m.signal_by_name("out").expect("out");
        let inputs = vec![false; aig.node_count()];
        let got: u64 = frame
            .signal(out)
            .iter()
            .enumerate()
            .map(|(i, &lit)| (aig.eval(lit, &inputs) as u64) << i)
            .sum();
        assert_eq!(got, 0x5A);
        // And next-state is 0x5B.
        let nexts = next_state(&mut aig, &m, &frame);
        let next_val: u64 = nexts[0]
            .iter()
            .enumerate()
            .map(|(i, &lit)| (aig.eval(lit, &inputs) as u64) << i)
            .sum();
        assert_eq!(next_val, 0x5B);
    }
}
