//! Bounded model checking from the reset state.
//!
//! BMC complements the UPEC induction in two roles:
//!
//! - validating candidate **invariants** before they are assumed (an
//!   invariant that BMC can violate within `k` cycles is simply wrong);
//! - confirming that a leak found from the *symbolic* state is actually
//!   **reachable from reset**, which is how the inspection oracles
//!   distinguish real vulnerabilities from spurious counterexamples.

use crate::aig::{Aig, AigLit};
use crate::blast::{build_frame_with_leaves, next_state, Frame};
use crate::tseitin::CnfEncoder;
use fastpath_rtl::{BitVec, ExprId, Module, SignalId, SignalKind};
use fastpath_sat::SolveResult;

/// Result of a bounded check of a 1-bit property.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// The property held in every cycle up to the bound.
    Bounded {
        /// The number of cycles explored.
        depth: u32,
    },
    /// The property failed.
    Violated {
        /// The 0-based cycle of the first found violation.
        cycle: u32,
        /// Concrete input values per explored cycle (one entry per input
        /// signal, in module order), for replaying the trace.
        inputs: Vec<Vec<(SignalId, BitVec)>>,
    },
}

impl BmcResult {
    /// `true` iff no violation was found.
    pub fn holds(&self) -> bool {
        matches!(self, BmcResult::Bounded { .. })
    }
}

/// Checks that the 1-bit expression `property` holds in every cycle for
/// `depth` cycles starting from reset, with every listed 1-bit `constraint`
/// assumed in every cycle (environment assumptions).
///
/// # Panics
///
/// Panics if `property` or a constraint is not 1 bit wide.
pub fn bmc_check(
    module: &Module,
    property: ExprId,
    constraints: &[ExprId],
    depth: u32,
) -> BmcResult {
    assert_eq!(module.expr_width(property), 1, "property must be 1 bit");
    let mut aig = Aig::new();
    let mut encoder = CnfEncoder::new();

    let n = module.signal_count();
    // Reset frame: registers at their init values.
    let mut leaves: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    let mut frame_inputs: Vec<Vec<(SignalId, Vec<AigLit>)>> = Vec::new();
    let mut cycle_inputs: Vec<(SignalId, Vec<AigLit>)> = Vec::new();
    for (id, signal) in module.signals() {
        match signal.kind {
            SignalKind::Register => {
                let init = signal.init.as_ref().expect("register init");
                leaves[id.index()] = (0..signal.width)
                    .map(|i| aig.constant(init.bit(i)))
                    .collect();
            }
            SignalKind::Input => {
                let bits: Vec<AigLit> = (0..signal.width).map(|_| aig.input()).collect();
                cycle_inputs.push((id, bits.clone()));
                leaves[id.index()] = bits;
            }
            _ => {}
        }
    }
    let mut frame = build_frame_with_leaves(&mut aig, module, leaves);
    frame_inputs.push(cycle_inputs);

    for cycle in 0..depth {
        for &c in constraints {
            let lit = crate::blast::blast_expr_in_frame(&mut aig, module, &frame, c);
            assert_eq!(lit.len(), 1, "constraint must be 1 bit");
            encoder.assert_true(&aig, lit[0]);
        }
        let prop = crate::blast::blast_expr_in_frame(&mut aig, module, &frame, property);
        let bad = encoder.lit(&aig, !prop[0]);
        if encoder.solve_with(&[bad]) == SolveResult::Sat {
            let inputs = frame_inputs
                .iter()
                .map(|per_cycle| {
                    per_cycle
                        .iter()
                        .map(|(id, bits)| (*id, extract_word(&encoder, bits)))
                        .collect()
                })
                .collect();
            return BmcResult::Violated { cycle, inputs };
        }
        if cycle + 1 == depth {
            break;
        }
        // Advance one frame.
        frame = advance(&mut aig, module, &frame, &mut frame_inputs);
    }
    BmcResult::Bounded { depth }
}

/// Checks that an invariant is inductive: it holds at reset and is
/// preserved by every transition from any state satisfying it (plus the
/// given constraints). A `true` result means the invariant is safe to
/// assume in the UPEC model.
pub fn invariant_is_inductive(module: &Module, invariant: ExprId, constraints: &[ExprId]) -> bool {
    // Base case: holds at reset (depth-1 BMC).
    if !bmc_check(module, invariant, constraints, 1).holds() {
        return false;
    }
    // Step: symbolic state satisfying the invariant, prove it at t+1.
    let mut aig = Aig::new();
    let mut encoder = CnfEncoder::new();
    let n = module.signal_count();
    let mut leaves: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    for (id, signal) in module.signals() {
        if matches!(signal.kind, SignalKind::Register | SignalKind::Input) {
            leaves[id.index()] = (0..signal.width).map(|_| aig.input()).collect();
        }
    }
    let frame_t = build_frame_with_leaves(&mut aig, module, leaves);
    assert_predicates(&mut aig, &mut encoder, module, &frame_t, constraints);
    let inv_t = crate::blast::blast_expr_in_frame(&mut aig, module, &frame_t, invariant);
    encoder.assert_true(&aig, inv_t[0]);

    let nexts = next_state(&mut aig, module, &frame_t);
    let mut leaves_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    for (reg, bits) in module.state_signals().into_iter().zip(nexts) {
        leaves_t1[reg.index()] = bits;
    }
    for (id, signal) in module.signals() {
        if signal.kind == SignalKind::Input {
            leaves_t1[id.index()] = (0..signal.width).map(|_| aig.input()).collect();
        }
    }
    let frame_t1 = build_frame_with_leaves(&mut aig, module, leaves_t1);
    assert_predicates(&mut aig, &mut encoder, module, &frame_t1, constraints);
    let inv_t1 = crate::blast::blast_expr_in_frame(&mut aig, module, &frame_t1, invariant);
    let bad = encoder.lit(&aig, !inv_t1[0]);
    encoder.solve_with(&[bad]) == SolveResult::Unsat
}

fn assert_predicates(
    aig: &mut Aig,
    encoder: &mut CnfEncoder,
    module: &Module,
    frame: &Frame,
    predicates: &[ExprId],
) {
    for &p in predicates {
        let lit = crate::blast::blast_expr_in_frame(aig, module, frame, p);
        assert_eq!(lit.len(), 1, "predicate must be 1 bit");
        encoder.assert_true(aig, lit[0]);
    }
}

fn advance(
    aig: &mut Aig,
    module: &Module,
    frame: &Frame,
    frame_inputs: &mut Vec<Vec<(SignalId, Vec<AigLit>)>>,
) -> Frame {
    let n = module.signal_count();
    let nexts = next_state(aig, module, frame);
    let mut leaves: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    for (reg, bits) in module.state_signals().into_iter().zip(nexts) {
        leaves[reg.index()] = bits;
    }
    let mut cycle_inputs = Vec::new();
    for (id, signal) in module.signals() {
        if signal.kind == SignalKind::Input {
            let bits: Vec<AigLit> = (0..signal.width).map(|_| aig.input()).collect();
            cycle_inputs.push((id, bits.clone()));
            leaves[id.index()] = bits;
        }
    }
    frame_inputs.push(cycle_inputs);
    build_frame_with_leaves(aig, module, leaves)
}

fn extract_word(encoder: &CnfEncoder, bits: &[AigLit]) -> BitVec {
    let mut v = BitVec::zero(bits.len().max(1) as u32);
    for (i, &b) in bits.iter().enumerate() {
        if encoder.model_value(b).unwrap_or(false) {
            v.set_bit(i as u32, true);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// A counter that must never exceed 10 — and never does (wraps at 10).
    fn capped_counter(cap: u64) -> (Module, ExprId) {
        let mut b = ModuleBuilder::new("cap");
        let cnt = b.reg("cnt", 8, 0);
        let c = b.sig(cnt);
        let one = b.lit(8, 1);
        let inc = b.add(c, one);
        let zero = b.lit(8, 0);
        let at_cap = b.eq_lit(c, cap);
        let next = b.mux(at_cap, zero, inc);
        b.set_next(cnt, next).expect("drive");
        b.output("count", c);
        let bound = b.lit(8, cap);
        let property = b.ule(c, bound);
        (b.build().expect("valid"), property)
    }

    #[test]
    fn bounded_property_holds() {
        let (m, property) = capped_counter(10);
        assert!(bmc_check(&m, property, &[], 30).holds());
    }

    #[test]
    fn violation_found_at_correct_depth() {
        // Property `cnt <= 5` fails first at cycle 6 (cnt counts 0..=10).
        let (m, _) = capped_counter(10);
        let mut b = ModuleBuilder::new("unused");
        let _ = &mut b;
        // Rebuild with the tighter property inside the same arena.
        let mut b = ModuleBuilder::new("cap");
        let cnt = b.reg("cnt", 8, 0);
        let c = b.sig(cnt);
        let one = b.lit(8, 1);
        let inc = b.add(c, one);
        let zero = b.lit(8, 0);
        let at_cap = b.eq_lit(c, 10);
        let next = b.mux(at_cap, zero, inc);
        b.set_next(cnt, next).expect("drive");
        b.output("count", c);
        let five = b.lit(8, 5);
        let property = b.ule(c, five);
        let m2 = b.build().expect("valid");
        let _ = m;
        match bmc_check(&m2, property, &[], 30) {
            BmcResult::Violated { cycle, .. } => assert_eq!(cycle, 6),
            BmcResult::Bounded { .. } => panic!("expected violation"),
        }
    }

    #[test]
    fn constraints_restrict_inputs() {
        // out = in; property out == 0 holds only under constraint in == 0.
        let mut b = ModuleBuilder::new("pass");
        let i = b.input("i", 4);
        let i_sig = b.sig(i);
        let r = b.reg("r", 4, 0);
        b.set_next(r, i_sig).expect("drive");
        let r_sig = b.sig(r);
        b.output("o", r_sig);
        let property = b.eq_lit(r_sig, 0);
        let constraint = b.eq_lit(i_sig, 0);
        let m = b.build().expect("valid");
        assert!(!bmc_check(&m, property, &[], 4).holds());
        assert!(bmc_check(&m, property, &[constraint], 4).holds());
    }

    #[test]
    fn witness_inputs_replay() {
        // Property: r != 9. BMC finds an input assignment driving r to 9;
        // replaying it in the simulator must reproduce the violation.
        let mut b = ModuleBuilder::new("wit");
        let i = b.input("i", 4);
        let i_sig = b.sig(i);
        let r = b.reg("r", 4, 0);
        b.set_next(r, i_sig).expect("drive");
        let r_sig = b.sig(r);
        b.output("o", r_sig);
        let property = b.ne(r_sig, i_sig); // fails when input repeats
        let m = b.build().expect("valid");
        match bmc_check(&m, property, &[], 5) {
            BmcResult::Violated { cycle, inputs } => {
                // Replay with the plain simulator.
                let mut sim = fastpath_sim::Simulator::new(&m);
                for frame in inputs.iter().take(cycle as usize + 1) {
                    for (id, value) in frame {
                        sim.set_input(*id, value.clone());
                    }
                    sim.settle();
                    if sim.cycle() == cycle as u64 {
                        // Property must be false here.
                        let r_id = m.signal_by_name("r").expect("r");
                        let i_id = m.signal_by_name("i").expect("i");
                        assert_eq!(sim.value(r_id), sim.value(i_id));
                        return;
                    }
                    sim.clock();
                }
                panic!("violation cycle not reached in replay");
            }
            BmcResult::Bounded { .. } => panic!("expected violation"),
        }
    }

    #[test]
    fn one_hot_invariant_is_inductive() {
        let mut b = ModuleBuilder::new("onehot");
        let state = b.reg("state", 2, 0b01);
        let s = b.sig(state);
        let s0 = b.bit(s, 0);
        let s1 = b.bit(s, 1);
        let swapped = b.concat(s0, s1);
        b.set_next(state, swapped).expect("drive");
        b.output("o", s);
        let onehot = b.xor(s0, s1);
        let both = b.and(s0, s1);
        let bogus = b.not(both); // true at reset but NOT inductive
        let m = b.build().expect("valid");
        assert!(invariant_is_inductive(&m, onehot, &[]));
        // `!both` admits state 00, whose successor 00 still satisfies it —
        // so it actually *is* inductive; use an invariant that is not:
        // "state == 01" is violated by the transition to 10.
        let _ = bogus;
        let mut b = ModuleBuilder::new("onehot2");
        let state = b.reg("state", 2, 0b01);
        let s = b.sig(state);
        let s0 = b.bit(s, 0);
        let s1 = b.bit(s, 1);
        let swapped = b.concat(s0, s1);
        b.set_next(state, swapped).expect("drive");
        b.output("o", s);
        let stuck = b.eq_lit(s, 0b01);
        let m2 = b.build().expect("valid");
        assert!(!invariant_is_inductive(&m2, stuck, &[]));
    }
}

/// Result of a 2-safety bounded check (see [`two_safety_bmc`]).
#[derive(Clone, Debug)]
pub enum TwoSafetyBmcResult {
    /// No observable divergence exists within the bound: every pair of
    /// runs from reset that agrees on the control inputs agrees on all
    /// control outputs for `depth` cycles.
    Bounded {
        /// Cycles explored.
        depth: u32,
    },
    /// A concrete leak: two input traces from reset, equal on control
    /// inputs, driving some control output apart at `cycle`.
    Diverges {
        /// The 0-based cycle of the divergence.
        cycle: u32,
        /// The diverging control output.
        output: fastpath_rtl::SignalId,
        /// Instance-1 inputs per cycle.
        inputs_a: Vec<Vec<(SignalId, BitVec)>>,
        /// Instance-2 inputs per cycle (differ only on data inputs).
        inputs_b: Vec<Vec<(SignalId, BitVec)>>,
    },
}

impl TwoSafetyBmcResult {
    /// `true` iff no divergence was found.
    pub fn holds(&self) -> bool {
        matches!(self, TwoSafetyBmcResult::Bounded { .. })
    }
}

/// Bounded 2-safety check **from reset**: both instances start at the
/// architectural reset state, control inputs are shared, data inputs are
/// free per instance, and the given 1-bit constraints are assumed on both
/// instances in every cycle. Searches for a cycle where any control output
/// differs.
///
/// This complements [`Upec2Safety`](crate::Upec2Safety): the induction
/// proves unbounded security from a symbolic (possibly unreachable) state;
/// this check *demonstrates* a leak with a concrete, replayable pair of
/// traces — which is how a reported vulnerability is confirmed reachable.
pub fn two_safety_bmc(module: &Module, constraints: &[ExprId], depth: u32) -> TwoSafetyBmcResult {
    use fastpath_rtl::SignalRole;

    let mut aig = Aig::new();
    let mut encoder = CnfEncoder::new();
    let n = module.signal_count();

    // Reset frame: shared constants (both instances identical).
    let mut leaves_a: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    let mut leaves_b: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    let mut trace_a: Vec<Vec<(SignalId, Vec<AigLit>)>> = Vec::new();
    let mut trace_b: Vec<Vec<(SignalId, Vec<AigLit>)>> = Vec::new();

    let alloc_inputs = |aig: &mut Aig,
                        leaves_a: &mut Vec<Vec<AigLit>>,
                        leaves_b: &mut Vec<Vec<AigLit>>,
                        trace_a: &mut Vec<Vec<(SignalId, Vec<AigLit>)>>,
                        trace_b: &mut Vec<Vec<(SignalId, Vec<AigLit>)>>| {
        let mut frame_a = Vec::new();
        let mut frame_b = Vec::new();
        for (id, signal) in module.signals() {
            if signal.kind != SignalKind::Input {
                continue;
            }
            let bits_a: Vec<AigLit> = (0..signal.width).map(|_| aig.input()).collect();
            let bits_b: Vec<AigLit> = if signal.role == SignalRole::DataIn {
                (0..signal.width).map(|_| aig.input()).collect()
            } else {
                bits_a.clone()
            };
            frame_a.push((id, bits_a.clone()));
            frame_b.push((id, bits_b.clone()));
            leaves_a[id.index()] = bits_a;
            leaves_b[id.index()] = bits_b;
        }
        trace_a.push(frame_a);
        trace_b.push(frame_b);
    };

    for (id, signal) in module.signals() {
        if signal.kind == SignalKind::Register {
            let init = signal.init.as_ref().expect("register init");
            let bits: Vec<AigLit> = (0..signal.width)
                .map(|i| aig.constant(init.bit(i)))
                .collect();
            leaves_a[id.index()] = bits.clone();
            leaves_b[id.index()] = bits;
        }
    }
    alloc_inputs(
        &mut aig,
        &mut leaves_a,
        &mut leaves_b,
        &mut trace_a,
        &mut trace_b,
    );
    let mut frame_a = build_frame_with_leaves(&mut aig, module, leaves_a);
    let mut frame_b = build_frame_with_leaves(&mut aig, module, leaves_b);

    let outputs = module.control_outputs();
    for cycle in 0..depth {
        for frame in [&frame_a, &frame_b] {
            assert_predicates(&mut aig, &mut encoder, module, frame, constraints);
        }
        // Per-output divergence monitors for this cycle.
        let mut monitors = Vec::new();
        for &y in &outputs {
            let eq = crate::words::eq_word(&mut aig, frame_a.signal(y), frame_b.signal(y));
            monitors.push((y, !eq));
        }
        let live: Vec<fastpath_sat::Lit> = monitors
            .iter()
            .filter(|&&(_, d)| d != AigLit::FALSE)
            .map(|&(_, d)| encoder.lit(&aig, d))
            .collect();
        if !live.is_empty() {
            let selector = encoder.fresh_var();
            let mut clause = vec![selector.negative()];
            clause.extend(&live);
            encoder.add_clause(&clause);
            if encoder.solve_with(&[selector.positive()]) == SolveResult::Sat {
                let output = monitors
                    .iter()
                    .find(|&&(_, d)| encoder.model_value(d).unwrap_or(false))
                    .map(|&(y, _)| y)
                    .expect("some monitor fired");
                let extract = |trace: &[Vec<(SignalId, Vec<AigLit>)>]| -> Vec<_> {
                    trace
                        .iter()
                        .map(|per_cycle| {
                            per_cycle
                                .iter()
                                .map(|(id, bits)| (*id, extract_word(&encoder, bits)))
                                .collect::<Vec<_>>()
                        })
                        .collect()
                };
                return TwoSafetyBmcResult::Diverges {
                    cycle,
                    output,
                    inputs_a: extract(&trace_a),
                    inputs_b: extract(&trace_b),
                };
            }
        }
        if cycle + 1 == depth {
            break;
        }
        // Advance both instances one frame.
        let next_a = next_state(&mut aig, module, &frame_a);
        let next_b = next_state(&mut aig, module, &frame_b);
        let mut leaves_a: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        let mut leaves_b: Vec<Vec<AigLit>> = vec![Vec::new(); n];
        for (reg, (na, nb)) in module
            .state_signals()
            .into_iter()
            .zip(next_a.into_iter().zip(next_b))
        {
            leaves_a[reg.index()] = na;
            leaves_b[reg.index()] = nb;
        }
        alloc_inputs(
            &mut aig,
            &mut leaves_a,
            &mut leaves_b,
            &mut trace_a,
            &mut trace_b,
        );
        frame_a = build_frame_with_leaves(&mut aig, module, leaves_a);
        frame_b = build_frame_with_leaves(&mut aig, module, leaves_b);
    }
    TwoSafetyBmcResult::Bounded { depth }
}

/// Checks that a *set* of invariants is inductive **as a conjunction**:
/// every invariant holds at reset, and assuming all of them at `t` (plus
/// the constraints during `[t, t+1]`) proves all of them at `t+1`.
///
/// This is the soundness side-condition for assuming the set in the UPEC
/// model: single-invariant induction is too strong a requirement (members
/// may depend on each other), while asserting a member at `t+1` as a
/// hypothesis would be circular.
pub fn invariants_are_jointly_inductive(
    module: &Module,
    invariants: &[ExprId],
    constraints: &[ExprId],
) -> bool {
    // Base case: each holds at reset.
    for &inv in invariants {
        if !bmc_check(module, inv, constraints, 1).holds() {
            return false;
        }
    }
    // Step.
    let mut aig = Aig::new();
    let mut encoder = CnfEncoder::new();
    let n = module.signal_count();
    let mut leaves: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    for (id, signal) in module.signals() {
        if matches!(signal.kind, SignalKind::Register | SignalKind::Input) {
            leaves[id.index()] = (0..signal.width).map(|_| aig.input()).collect();
        }
    }
    let frame_t = build_frame_with_leaves(&mut aig, module, leaves);
    assert_predicates(&mut aig, &mut encoder, module, &frame_t, constraints);
    assert_predicates(&mut aig, &mut encoder, module, &frame_t, invariants);

    let nexts = next_state(&mut aig, module, &frame_t);
    let mut leaves_t1: Vec<Vec<AigLit>> = vec![Vec::new(); n];
    for (reg, bits) in module.state_signals().into_iter().zip(nexts) {
        leaves_t1[reg.index()] = bits;
    }
    for (id, signal) in module.signals() {
        if signal.kind == SignalKind::Input {
            leaves_t1[id.index()] = (0..signal.width).map(|_| aig.input()).collect();
        }
    }
    let frame_t1 = build_frame_with_leaves(&mut aig, module, leaves_t1);
    assert_predicates(&mut aig, &mut encoder, module, &frame_t1, constraints);
    // Some invariant fails at t+1?
    let mut bads = Vec::new();
    for &inv in invariants {
        let lit = crate::blast::blast_expr_in_frame(&mut aig, module, &frame_t1, inv);
        bads.push(encoder.lit(&aig, !lit[0]));
    }
    if bads.is_empty() {
        return true;
    }
    let selector = encoder.fresh_var();
    let mut clause = vec![selector.negative()];
    clause.extend(&bads);
    encoder.add_clause(&clause);
    encoder.solve_with(&[selector.positive()]) == SolveResult::Unsat
}
