//! Word-level circuits over AIG literal vectors.
//!
//! A word is a `Vec<AigLit>`, least-significant bit first. These builders
//! implement the RTL operator semantics of `fastpath-rtl` exactly (modular
//! arithmetic, saturating shifts), so the bit-blasted model and the
//! simulator agree bit-for-bit — a property the test suite checks
//! exhaustively on small widths and randomly on large ones.

use crate::aig::{Aig, AigLit};

/// A constant word.
pub fn constant_word(aig: &Aig, width: u32, bits: impl Fn(u32) -> bool) -> Vec<AigLit> {
    (0..width).map(|i| aig.constant(bits(i))).collect()
}

/// Bitwise NOT.
pub fn not_word(word: &[AigLit]) -> Vec<AigLit> {
    word.iter().map(|&b| !b).collect()
}

/// Bitwise AND.
pub fn and_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| aig.and(x, y)).collect()
}

/// Bitwise OR.
pub fn or_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| aig.or(x, y)).collect()
}

/// Bitwise XOR.
pub fn xor_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect()
}

/// Ripple-carry addition with carry-in; returns `(sum, carry_out)`.
pub fn add_with_carry(
    aig: &mut Aig,
    a: &[AigLit],
    b: &[AigLit],
    carry_in: AigLit,
) -> (Vec<AigLit>, AigLit) {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = aig.full_adder(x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Modular addition.
pub fn add_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    add_with_carry(aig, a, b, AigLit::FALSE).0
}

/// Modular subtraction (`a + !b + 1`).
pub fn sub_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    let nb = not_word(b);
    add_with_carry(aig, a, &nb, AigLit::TRUE).0
}

/// Two's-complement negation.
pub fn neg_word(aig: &mut Aig, a: &[AigLit]) -> Vec<AigLit> {
    let zero = vec![AigLit::FALSE; a.len()];
    sub_word(aig, &zero, a)
}

/// Modular multiplication via shift-and-add partial products.
pub fn mul_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    debug_assert_eq!(a.len(), b.len());
    let width = a.len();
    let mut acc = vec![AigLit::FALSE; width];
    for (i, &bi) in b.iter().enumerate() {
        if bi == AigLit::FALSE {
            continue;
        }
        // Partial product: (a << i) & b_i, truncated to width.
        let mut pp = vec![AigLit::FALSE; width];
        for j in i..width {
            pp[j] = aig.and(a[j - i], bi);
        }
        acc = add_word(aig, &acc, &pp);
    }
    acc
}

/// Equality: 1-bit result.
pub fn eq_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    debug_assert_eq!(a.len(), b.len());
    let xnors: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_all(&xnors)
}

/// Unsigned less-than: `!carry_out(a - b)`.
pub fn ult_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let nb = not_word(b);
    let (_, carry) = add_with_carry(aig, a, &nb, AigLit::TRUE);
    !carry
}

/// Unsigned less-or-equal.
pub fn ule_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let gt = ult_word(aig, b, a);
    !gt
}

/// Signed less-than.
pub fn slt_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let sign_a = *a.last().expect("non-empty word");
    let sign_b = *b.last().expect("non-empty word");
    let unsigned = ult_word(aig, a, b);
    let signs_differ = aig.xor(sign_a, sign_b);
    // If signs differ, a < b iff a is negative; otherwise unsigned compare.
    aig.mux(signs_differ, sign_a, unsigned)
}

/// Signed less-or-equal.
pub fn sle_word(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let gt = slt_word(aig, b, a);
    !gt
}

/// Per-bit mux: `s ? a : b`.
pub fn mux_word(aig: &mut Aig, s: AigLit, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| aig.mux(s, x, y)).collect()
}

/// Shift kind for [`shift_word`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShiftKind {
    /// Logical left.
    Shl,
    /// Logical right.
    Lshr,
    /// Arithmetic right.
    Ashr,
}

/// Barrel shifter by a dynamic amount. Amounts ≥ width saturate to zero
/// (`Shl`/`Lshr`) or to the replicated sign bit (`Ashr`), matching the RTL
/// simulator semantics.
pub fn shift_word(
    aig: &mut Aig,
    kind: ShiftKind,
    value: &[AigLit],
    amount: &[AigLit],
) -> Vec<AigLit> {
    let width = value.len();
    let sign = *value.last().expect("non-empty word");
    let fill = match kind {
        ShiftKind::Ashr => sign,
        _ => AigLit::FALSE,
    };
    let mut current = value.to_vec();
    // Stages for amount bits that shift by less than the width.
    let mut oversized = AigLit::FALSE;
    for (i, &bit) in amount.iter().enumerate() {
        let step = 1u128 << i.min(100);
        if step >= width as u128 {
            oversized = aig.or(oversized, bit);
            continue;
        }
        let step = step as usize;
        let shifted: Vec<AigLit> = (0..width)
            .map(|j| match kind {
                ShiftKind::Shl => {
                    if j >= step {
                        current[j - step]
                    } else {
                        AigLit::FALSE
                    }
                }
                ShiftKind::Lshr | ShiftKind::Ashr => {
                    if j + step < width {
                        current[j + step]
                    } else {
                        fill
                    }
                }
            })
            .collect();
        current = mux_word(aig, bit, &shifted, &current);
    }
    // If any oversized amount bit is set, the result saturates.
    let saturated = vec![fill; width];
    mux_word(aig, oversized, &saturated, &current)
}

/// OR-reduction.
pub fn reduce_or_word(aig: &mut Aig, a: &[AigLit]) -> AigLit {
    aig.or_all(a)
}

/// AND-reduction.
pub fn reduce_and_word(aig: &mut Aig, a: &[AigLit]) -> AigLit {
    aig.and_all(a)
}

/// XOR-reduction (parity).
pub fn reduce_xor_word(aig: &mut Aig, a: &[AigLit]) -> AigLit {
    a.iter().fold(AigLit::FALSE, |acc, &b| aig.xor(acc, b))
}

/// Zero-extension / truncation to `width`.
pub fn zext_word(word: &[AigLit], width: u32) -> Vec<AigLit> {
    let mut out = word.to_vec();
    out.resize(width as usize, AigLit::FALSE);
    out.truncate(width as usize);
    out
}

/// Sign-extension / truncation to `width`.
pub fn sext_word(word: &[AigLit], width: u32) -> Vec<AigLit> {
    let sign = *word.last().expect("non-empty word");
    let mut out = word.to_vec();
    out.resize(width as usize, sign);
    out.truncate(width as usize);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::BitVec;

    /// Evaluates a word circuit on concrete operand values.
    struct Harness {
        aig: Aig,
        a_bits: Vec<AigLit>,
        b_bits: Vec<AigLit>,
        width: u32,
    }

    impl Harness {
        fn new(width: u32) -> Self {
            let mut aig = Aig::new();
            let a_bits = (0..width).map(|_| aig.input()).collect();
            let b_bits = (0..width).map(|_| aig.input()).collect();
            Harness {
                aig,
                a_bits,
                b_bits,
                width,
            }
        }

        fn eval_word(&self, out: &[AigLit], a: u64, b: u64) -> u64 {
            let mut inputs = vec![false; self.aig.node_count()];
            for i in 0..self.width {
                inputs[self.a_bits[i as usize].node()] = (a >> i) & 1 == 1;
                inputs[self.b_bits[i as usize].node()] = (b >> i) & 1 == 1;
            }
            out.iter()
                .enumerate()
                .map(|(i, &lit)| (self.aig.eval(lit, &inputs) as u64) << i)
                .sum()
        }
    }

    /// Exhaustively checks a 4-bit binary circuit against a `BitVec` oracle.
    fn check_exhaustive_4bit(
        build: impl Fn(&mut Aig, &[AigLit], &[AigLit]) -> Vec<AigLit>,
        oracle: impl Fn(&BitVec, &BitVec) -> BitVec,
    ) {
        let mut h = Harness::new(4);
        let a_bits = h.a_bits.clone();
        let b_bits = h.b_bits.clone();
        let out = build(&mut h.aig, &a_bits, &b_bits);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let got = h.eval_word(&out, a, b);
                let expected = oracle(&BitVec::from_u64(4, a), &BitVec::from_u64(4, b)).to_u64();
                assert_eq!(got, expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_matches_bitvec() {
        check_exhaustive_4bit(add_word, |a, b| a.wrapping_add(b));
    }

    #[test]
    fn sub_matches_bitvec() {
        check_exhaustive_4bit(sub_word, |a, b| a.wrapping_sub(b));
    }

    #[test]
    fn mul_matches_bitvec() {
        check_exhaustive_4bit(mul_word, |a, b| a.wrapping_mul(b));
    }

    #[test]
    fn comparisons_match_bitvec() {
        use std::cmp::Ordering;
        check_exhaustive_4bit(
            |g, a, b| vec![ult_word(g, a, b)],
            |a, b| BitVec::from_bool(a.cmp_unsigned(b) == Ordering::Less).zext(1),
        );
        check_exhaustive_4bit(
            |g, a, b| vec![slt_word(g, a, b)],
            |a, b| BitVec::from_bool(a.cmp_signed(b) == Ordering::Less).zext(1),
        );
        check_exhaustive_4bit(
            |g, a, b| vec![eq_word(g, a, b)],
            |a, b| BitVec::from_bool(a == b).zext(1),
        );
    }

    #[test]
    fn shifts_match_bitvec() {
        check_exhaustive_4bit(
            |g, a, b| shift_word(g, ShiftKind::Shl, a, b),
            |a, b| a.shl(b.to_u64()),
        );
        check_exhaustive_4bit(
            |g, a, b| shift_word(g, ShiftKind::Lshr, a, b),
            |a, b| a.lshr(b.to_u64()),
        );
        check_exhaustive_4bit(
            |g, a, b| shift_word(g, ShiftKind::Ashr, a, b),
            |a, b| a.ashr(b.to_u64()),
        );
    }

    #[test]
    fn neg_and_reductions() {
        let mut h = Harness::new(4);
        let a_bits = h.a_bits.clone();
        let neg = neg_word(&mut h.aig, &a_bits);
        let red_or = vec![reduce_or_word(&mut h.aig, &a_bits)];
        let red_and = vec![reduce_and_word(&mut h.aig, &a_bits)];
        let red_xor = vec![reduce_xor_word(&mut h.aig, &a_bits)];
        for a in 0..16u64 {
            let bv = BitVec::from_u64(4, a);
            assert_eq!(h.eval_word(&neg, a, 0), bv.wrapping_neg().to_u64());
            assert_eq!(h.eval_word(&red_or, a, 0), bv.reduce_or().to_u64());
            assert_eq!(h.eval_word(&red_and, a, 0), bv.reduce_and().to_u64());
            assert_eq!(h.eval_word(&red_xor, a, 0), bv.reduce_xor().to_u64());
        }
    }

    #[test]
    fn extensions() {
        let h = Harness::new(4);
        let a_bits = h.a_bits.clone();
        let z = zext_word(&a_bits, 8);
        let s = sext_word(&a_bits, 8);
        assert_eq!(h.eval_word(&z, 0b1010, 0), 0b0000_1010);
        assert_eq!(h.eval_word(&s, 0b1010, 0), 0b1111_1010);
        let t = zext_word(&a_bits, 2);
        assert_eq!(h.eval_word(&t, 0b1010, 0), 0b10);
    }

    #[test]
    fn oversized_shift_amounts_saturate() {
        // 4-bit value, 4-bit amount: amounts 8..15 have bit 3 set (step 8
        // >= width), must yield zero / sign-fill.
        let mut h = Harness::new(4);
        let a_bits = h.a_bits.clone();
        let b_bits = h.b_bits.clone();
        let shl = shift_word(&mut h.aig, ShiftKind::Shl, &a_bits, &b_bits);
        let ashr = shift_word(&mut h.aig, ShiftKind::Ashr, &a_bits, &b_bits);
        assert_eq!(h.eval_word(&shl, 0b1111, 9), 0);
        assert_eq!(h.eval_word(&ashr, 0b1000, 12), 0b1111);
        assert_eq!(h.eval_word(&ashr, 0b0111, 12), 0);
    }
}
