//! And-Inverter Graph (AIG) with structural hashing.
//!
//! The AIG is the bit-level representation the formal engine lowers RTL
//! into before CNF encoding. Nodes are 2-input AND gates; inversion is a
//! complement bit on edges; node 0 is the constant FALSE. Structural
//! hashing plus local simplification (constant folding, idempotence,
//! contradiction) keeps the graph compact.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// An AIG edge: a node index with a complement bit (`node << 1 | compl`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant true literal.
    pub const TRUE: AigLit = AigLit(1);

    /// The node this literal points at.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` iff the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` for the two constant literals.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    fn new(node: usize, complemented: bool) -> Self {
        AigLit(((node as u32) << 1) | complemented as u32)
    }
}

impl Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Node {
    /// Constant false (node 0 only).
    False,
    /// A free primary input.
    Input,
    /// A 2-input AND gate.
    And(AigLit, AigLit),
}

/// An And-Inverter Graph.
///
/// # Examples
///
/// ```
/// use fastpath_formal::{Aig, AigLit};
///
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let c = aig.and(a, b);
/// // Structural hashing: the same AND is the same literal.
/// assert_eq!(aig.and(a, b), c);
/// // Local simplification: x & !x == false.
/// assert_eq!(aig.and(a, !a), AigLit::FALSE);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(AigLit, AigLit), usize>,
    strash_hits: u64,
    strash_misses: u64,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::False],
            strash: HashMap::new(),
            strash_hits: 0,
            strash_misses: 0,
        }
    }

    /// How many `and` calls were answered from the structural-hash table
    /// instead of creating a node. When a frame is re-elaborated over a
    /// persistent AIG (the cached-elaboration path of the UPEC engine),
    /// this counts the work the cache absorbed.
    pub fn strash_hits(&self) -> u64 {
        self.strash_hits
    }

    /// How many `and` calls created a new node. Constant-folded calls
    /// count toward neither statistic.
    pub fn strash_misses(&self) -> u64 {
        self.strash_misses
    }

    /// The number of nodes (including the constant and inputs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The number of AND gates.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Allocates a fresh primary input.
    pub fn input(&mut self) -> AigLit {
        let id = self.nodes.len();
        self.nodes.push(Node::Input);
        AigLit::new(id, false)
    }

    /// A constant literal from a `bool`.
    pub fn constant(&self, value: bool) -> AigLit {
        if value {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// `a AND b`, with constant folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Local simplifications.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(x, y)) {
            self.strash_hits += 1;
            return AigLit::new(node, false);
        }
        self.strash_misses += 1;
        let id = self.nodes.len();
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x, y), id);
        AigLit::new(id, false)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// `a XNOR b` (equivalence).
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// `if s then a else b`.
    pub fn mux(&mut self, s: AigLit, a: AigLit, b: AigLit) -> AigLit {
        let t = self.and(s, a);
        let e = self.and(!s, b);
        self.or(t, e)
    }

    /// AND over a list (`true` for empty).
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        lits.iter().fold(AigLit::TRUE, |acc, &l| self.and(acc, l))
    }

    /// OR over a list (`false` for empty).
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        lits.iter().fold(AigLit::FALSE, |acc, &l| self.or(acc, l))
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: AigLit, b: AigLit, carry_in: AigLit) -> (AigLit, AigLit) {
        let ab = self.xor(a, b);
        let sum = self.xor(ab, carry_in);
        let c1 = self.and(a, b);
        let c2 = self.and(ab, carry_in);
        let carry = self.or(c1, c2);
        (sum, carry)
    }

    /// Evaluates a literal given values for every input node, used for
    /// counterexample replay and testing.
    ///
    /// `inputs[node]` supplies the value of input node `node` (entries for
    /// non-input nodes are ignored).
    pub fn eval(&self, lit: AigLit, inputs: &[bool]) -> bool {
        let mut values: Vec<Option<bool>> = vec![None; self.nodes.len()];
        self.eval_memo(lit, inputs, &mut values)
    }

    fn eval_memo(&self, lit: AigLit, inputs: &[bool], values: &mut Vec<Option<bool>>) -> bool {
        let node_value = if let Some(v) = values[lit.node()] {
            v
        } else {
            let v = match self.nodes[lit.node()] {
                Node::False => false,
                Node::Input => inputs[lit.node()],
                Node::And(a, b) => {
                    self.eval_memo(a, inputs, values) && self.eval_memo(b, inputs, values)
                }
            };
            values[lit.node()] = Some(v);
            v
        };
        node_value ^ lit.is_complemented()
    }

    /// Whether a node is a primary input.
    pub fn is_input(&self, node: usize) -> bool {
        matches!(self.nodes[node], Node::Input)
    }

    /// The fanins of an AND node, if it is one.
    pub fn and_fanins(&self, node: usize) -> Option<(AigLit, AigLit)> {
        match self.nodes[node] {
            Node::And(a, b) => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.or(a, !a), AigLit::TRUE);
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        assert_eq!(g.and(a, b), g.and(b, a));
        let before = g.node_count();
        let _ = g.and(b, a);
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        let an = a.node();
        let bn = b.node();
        let mut inputs = vec![false; g.node_count()];
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            inputs[an] = va;
            inputs[bn] = vb;
            assert_eq!(g.eval(x, &inputs), va ^ vb);
        }
    }

    #[test]
    fn mux_selects() {
        let mut g = Aig::new();
        let s = g.input();
        let a = g.input();
        let b = g.input();
        let m = g.mux(s, a, b);
        let mut inputs = vec![false; g.node_count()];
        inputs[a.node()] = true;
        inputs[b.node()] = false;
        inputs[s.node()] = true;
        assert!(g.eval(m, &inputs));
        inputs[s.node()] = false;
        assert!(!g.eval(m, &inputs));
    }

    #[test]
    fn full_adder_truth_table() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let (sum, carry) = g.full_adder(a, b, c);
        let mut inputs = vec![false; g.node_count()];
        for bits in 0..8u32 {
            let (va, vb, vc) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            inputs[a.node()] = va;
            inputs[b.node()] = vb;
            inputs[c.node()] = vc;
            let total = va as u32 + vb as u32 + vc as u32;
            assert_eq!(g.eval(sum, &inputs), total % 2 == 1);
            assert_eq!(g.eval(carry, &inputs), total >= 2);
        }
    }
}
