//! # fastpath-formal
//!
//! The exhaustive formal-verification leg of FastPath: a bit-level model
//! checker built on an And-Inverter Graph, a Tseitin CNF encoder, and the
//! `fastpath-sat` CDCL solver.
//!
//! The main entry point is [`Upec2Safety`], the UPEC-DIT 2-safety inductive
//! engine of the paper's Sec. III-C / IV-C: it decides, for a candidate set
//! of untainted state signals `Z'`, whether `Z'` is a true semantic
//! partitioning — i.e. no input sequence can ever make a `Z'` signal or an
//! attacker-observable control output diverge between two instances that
//! agree on `Z'` and on all control inputs. [`bmc_check`] provides bounded
//! model checking from reset for invariant validation and counterexample
//! reachability confirmation.
//!
//! # Examples
//!
//! ```
//! use fastpath_formal::{Upec2Safety, UpecSpec};
//! use fastpath_rtl::ModuleBuilder;
//!
//! # fn main() -> Result<(), fastpath_rtl::RtlError> {
//! let mut b = ModuleBuilder::new("m");
//! let secret = b.data_input("secret", 8);
//! let s = b.sig(secret);
//! let store = b.reg("store", 8, 0);
//! b.set_next(store, s)?;
//! let st = b.sig(store);
//! b.data_output("out", st);
//! let tick = b.reg("tick", 1, 0);
//! let t = b.sig(tick);
//! let nt = b.not(t);
//! b.set_next(tick, nt)?;
//! b.control_output("phase", t);
//! let module = b.build()?;
//!
//! let tick_id = module.signal_by_name("tick").expect("exists");
//! let mut upec = Upec2Safety::new(&module, &UpecSpec::default());
//! // Z' = {tick}: the phase generator can never be influenced by secret.
//! assert!(upec.check(&[tick_id]).holds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aig;
mod aiger;
mod blast;
mod bmc;
mod certify;
mod ic3;
mod reuse;
mod tseitin;
mod upec;
mod words;

pub use aig::{Aig, AigLit};
pub use aiger::to_aiger;
pub use blast::{
    blast_expr_in_frame, build_frame, build_frame_with_leaves, next_state, ConstantLeaves, Frame,
    LazyFrame, LeafSource, SymbolicLeaves,
};
pub use bmc::{
    bmc_check, invariant_is_inductive, invariants_are_jointly_inductive, two_safety_bmc, BmcResult,
    TwoSafetyBmcResult,
};
pub use certify::{CertStats, CertifiedOutcome, CheckCertificate};
pub use ic3::{
    Ic3Engine, Ic3Outcome, Ic3Stats, RelationalClause, RelationalInvariant, RelationalLit,
    UpecEngine,
};
pub use reuse::{ClauseStore, MAX_REUSE_CLAUSE_LEN};
pub use tseitin::CnfEncoder;
pub use upec::{
    ElaborationMode, ElaborationStats, ProductStats, ProofArtifact, StateWitness, Upec2Safety,
    UpecCounterexample, UpecEncoding, UpecOutcome, UpecSpec,
};
pub use words::{
    add_with_carry, add_word, and_word, constant_word, eq_word, mul_word, mux_word, neg_word,
    not_word, or_word, reduce_and_word, reduce_or_word, reduce_xor_word, sext_word, shift_word,
    sle_word, slt_word, sub_word, ule_word, ult_word, xor_word, zext_word, ShiftKind,
};
