//! Cross-design learnt-clause reuse.
//!
//! Two designs that share a combinational cone — the divider of one core
//! grafted into another, a vendored FIFO, a common CSR file — make the
//! SAT core re-derive the same cone-local lemmas from scratch. This
//! module persists short learnt clauses keyed by a *structural* cone
//! identity so a later run (over the same design or a different one) can
//! seed its solver with them.
//!
//! # Keying and encoding
//!
//! A cone is identified by the WL-canonical label of the register whose
//! next-state function it computes ([`fastpath_rtl::CanonicalForm::signal_label`]):
//! rename- and reorder-invariant, machine-independent, and equal for
//! behaviourally indistinguishable registers across designs. Clauses are
//! stored in a *cone-local* numbering: a deterministic DFS over the
//! cone's AIG nodes (see `upec.rs`'s `cone_nodes`) assigns ordinals
//! `0..`, and a stored literal is `±(ordinal + 1)` — no solver variable,
//! AIG index, or design name ever reaches the file, so the encoding is
//! identical wherever the cone structure is.
//!
//! # Soundness and determinism
//!
//! Imports are *probed*, never trusted:
//! [`fastpath_sat::Solver::import_clause`] attaches a stored clause only
//! after a local RUP check, so a colliding key or a mistranslated
//! literal costs a rejected probe, nothing more. Determinism comes from
//! the split between `base` and `pending`: the base snapshot is loaded
//! once and immutable for the lifetime of the store, and lookups read
//! only the base — so every `--jobs`/`--sat-portfolio`/`--cube-jobs`
//! combination of one run sees the same imports in the same order.
//! Clauses published during a run buffer in `pending` and only become
//! visible to lookups after [`ClauseStore::save`] and a re-open (a warm
//! run).

use fastpath_rtl::{Digest, StableHasher};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Maximum stored clause length. Short clauses are the ones that prune
/// (and the ones cheap to RUP-probe); everything longer is never
/// exported.
pub const MAX_REUSE_CLAUSE_LEN: usize = 8;

/// Per-cone clause cap applied at save time (first-published wins, after
/// deduplication), bounding file growth across many runs.
const MAX_CLAUSES_PER_CONE: usize = 64;

const MAGIC: &str = "fastpath-clause-store v1";
const CHECKSUM_SEED: u64 = 0x51E3_C0DE;

/// A persistent store of cone-keyed learnt clauses (see the module docs).
#[derive(Debug, Default)]
pub struct ClauseStore {
    path: Option<PathBuf>,
    /// Immutable snapshot loaded at open time; the only side lookups read.
    base: HashMap<Digest, Vec<Vec<i32>>>,
    /// Clauses published during this run, merged into the file by `save`.
    pending: Mutex<HashMap<Digest, Vec<Vec<i32>>>>,
}

impl ClauseStore {
    /// Opens the store at `path`, loading the base snapshot. A missing
    /// file is an empty store; a corrupt or tampered file (bad magic,
    /// parse error, checksum mismatch) is treated as empty too — the
    /// store is a performance cache, and every import is RUP-probed
    /// anyway, so discarding is always safe.
    pub fn open(path: impl Into<PathBuf>) -> ClauseStore {
        let path = path.into();
        let base = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_store(&text))
            .unwrap_or_default();
        ClauseStore {
            path: Some(path),
            base,
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// An in-memory store with no backing file (`save` is then a no-op);
    /// for tests and for runs that opt out of persistence.
    pub fn in_memory() -> ClauseStore {
        ClauseStore::default()
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The stored clauses for a cone, from the immutable base snapshot
    /// only (see the determinism notes in the module docs).
    pub fn lookup(&self, cone: &Digest) -> &[Vec<i32>] {
        self.base.get(cone).map_or(&[], Vec::as_slice)
    }

    /// Number of cones in the base snapshot.
    pub fn cones(&self) -> usize {
        self.base.len()
    }

    /// Number of clauses in the base snapshot.
    pub fn base_clauses(&self) -> usize {
        self.base.values().map(Vec::len).sum()
    }

    /// Buffers clauses for a cone. Invisible to `lookup` until the store
    /// is saved and re-opened; clauses longer than
    /// [`MAX_REUSE_CLAUSE_LEN`] or empty are dropped.
    pub fn publish(&self, cone: Digest, clauses: impl IntoIterator<Item = Vec<i32>>) {
        let mut pending = self.pending.lock().expect("clause store poisoned");
        let slot = pending.entry(cone).or_default();
        for clause in clauses {
            if !clause.is_empty() && clause.len() <= MAX_REUSE_CLAUSE_LEN {
                slot.push(clause);
            }
        }
    }

    /// Number of clauses buffered by `publish` so far this run.
    pub fn pending_clauses(&self) -> usize {
        let pending = self.pending.lock().expect("clause store poisoned");
        pending.values().map(Vec::len).sum()
    }

    /// Merges the base snapshot with everything published this run and
    /// atomically rewrites the backing file (write to a sibling temp
    /// file, then rename). Deduplicates per cone keeping first
    /// occurrence (base clauses first, so proven-useful entries survive
    /// the per-cone cap), and emits cones in sorted key order so the
    /// file is byte-deterministic for a given content. A no-op for
    /// in-memory stores.
    pub fn save(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut merged: HashMap<Digest, Vec<Vec<i32>>> = self.base.clone();
        {
            let pending = self.pending.lock().expect("clause store poisoned");
            for (cone, clauses) in pending.iter() {
                merged
                    .entry(*cone)
                    .or_default()
                    .extend(clauses.iter().cloned());
            }
        }
        let mut cones: Vec<(Digest, Vec<Vec<i32>>)> = merged
            .into_iter()
            .map(|(cone, mut clauses)| {
                let mut seen = std::collections::HashSet::new();
                clauses.retain(|c| seen.insert(c.clone()));
                clauses.truncate(MAX_CLAUSES_PER_CONE);
                (cone, clauses)
            })
            .filter(|(_, clauses)| !clauses.is_empty())
            .collect();
        cones.sort_by_key(|(cone, _)| (cone.0[0], cone.0[1]));

        let mut body = String::new();
        for (cone, clauses) in &cones {
            body.push_str(&format!("cone {} {}\n", cone.to_hex(), clauses.len()));
            for clause in clauses {
                for lit in clause {
                    body.push_str(&format!("{lit} "));
                }
                body.push_str("0\n");
            }
        }
        let mut hasher = StableHasher::new(CHECKSUM_SEED);
        hasher.write_bytes(body.as_bytes());
        let text = format!(
            "{MAGIC}\n{body}checksum {}\n",
            hasher.finish().to_hex()
        );

        let tmp = path.with_extension("tmp");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

/// Parses a store file; `None` on any malformation (treated as empty).
fn parse_store(text: &str) -> Option<HashMap<Digest, Vec<Vec<i32>>>> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let sum_at = rest.rfind("checksum ")?;
    if sum_at != 0 && !rest[..sum_at].ends_with('\n') {
        return None;
    }
    let body = &rest[..sum_at];
    let expected = Digest::from_hex(rest[sum_at..].trim_end().strip_prefix("checksum ")?)?;
    let mut hasher = StableHasher::new(CHECKSUM_SEED);
    hasher.write_bytes(body.as_bytes());
    if hasher.finish() != expected {
        return None;
    }

    let mut base: HashMap<Digest, Vec<Vec<i32>>> = HashMap::new();
    let mut lines = body.lines();
    while let Some(line) = lines.next() {
        let mut header = line.strip_prefix("cone ")?.split(' ');
        let cone = Digest::from_hex(header.next()?)?;
        let count: usize = header.next()?.parse().ok()?;
        if header.next().is_some() {
            return None;
        }
        let mut clauses = Vec::with_capacity(count);
        for _ in 0..count {
            let mut clause = Vec::new();
            for tok in lines.next()?.split_whitespace() {
                let lit: i32 = tok.parse().ok()?;
                if lit == 0 {
                    break;
                }
                clause.push(lit);
            }
            if clause.is_empty() || clause.len() > MAX_REUSE_CLAUSE_LEN {
                return None;
            }
            clauses.push(clause);
        }
        base.insert(cone, clauses);
    }
    Some(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(n: u64) -> Digest {
        Digest([n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15)])
    }

    #[test]
    fn round_trips_through_save_and_open() {
        let dir = std::env::temp_dir().join("fastpath_reuse_roundtrip");
        let path = dir.join("clauses.store");
        let _ = std::fs::remove_file(&path);

        let store = ClauseStore::open(&path);
        assert_eq!(store.cones(), 0, "missing file is an empty store");
        store.publish(digest(1), vec![vec![1, -2], vec![3]]);
        store.publish(digest(2), vec![vec![-4, 5, 6]]);
        // Over-long and empty clauses are dropped at publish time.
        store.publish(digest(2), vec![vec![1; MAX_REUSE_CLAUSE_LEN + 1], vec![]]);
        assert_eq!(store.pending_clauses(), 3);
        // Nothing published is visible to lookups this run.
        assert!(store.lookup(&digest(1)).is_empty());
        store.save().expect("save");

        let warm = ClauseStore::open(&path);
        assert_eq!(warm.cones(), 2);
        assert_eq!(warm.base_clauses(), 3);
        assert_eq!(warm.lookup(&digest(1)), &[vec![1, -2], vec![3]]);
        assert_eq!(warm.lookup(&digest(2)), &[vec![-4, 5, 6]]);
        assert!(warm.lookup(&digest(3)).is_empty());

        // Saving a re-opened store with fresh pendings merges and dedups.
        warm.publish(digest(1), vec![vec![1, -2], vec![7, 8]]);
        warm.save().expect("save");
        let merged = ClauseStore::open(&path);
        assert_eq!(merged.lookup(&digest(1)), &[vec![1, -2], vec![3], vec![7, 8]]);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_files_load_as_empty() {
        let dir = std::env::temp_dir().join("fastpath_reuse_corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("clauses.store");

        // Garbage, truncations, and bit flips all degrade to empty.
        std::fs::write(&path, "not a store\n").expect("write");
        assert_eq!(ClauseStore::open(&path).cones(), 0);

        let store = ClauseStore::open(&path);
        store.publish(digest(9), vec![vec![1, 2, -3]]);
        store.save().expect("save");
        let good = std::fs::read_to_string(&path).expect("read");
        assert_eq!(ClauseStore::open(&path).base_clauses(), 1);

        let flipped = good.replace("1 2 -3", "1 2 -4");
        std::fs::write(&path, flipped).expect("write");
        assert_eq!(
            ClauseStore::open(&path).cones(),
            0,
            "checksum must catch a content flip"
        );

        std::fs::write(&path, &good[..good.len() / 2]).expect("write");
        assert_eq!(ClauseStore::open(&path).cones(), 0);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_caps_clauses_per_cone_keeping_base_first() {
        let dir = std::env::temp_dir().join("fastpath_reuse_cap");
        let path = dir.join("clauses.store");
        let _ = std::fs::remove_file(&path);

        let store = ClauseStore::open(&path);
        store.publish(
            digest(5),
            (0..2 * MAX_CLAUSES_PER_CONE as i32).map(|i| vec![i + 1]),
        );
        store.save().expect("save");
        let warm = ClauseStore::open(&path);
        let kept = warm.lookup(&digest(5));
        assert_eq!(kept.len(), MAX_CLAUSES_PER_CONE);
        assert_eq!(kept[0], vec![1], "first published survives the cap");

        let _ = std::fs::remove_file(&path);
    }
}
