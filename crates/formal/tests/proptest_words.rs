//! Property-based equivalence between the AIG word-level circuits and the
//! `BitVec` semantics, on random widths (the unit tests cover 4-bit
//! exhaustively; these cover the generic-width construction logic,
//! especially shift saturation and multi-stage barrel shifters).

use fastpath_formal::{
    add_word, eq_word, mul_word, mux_word, neg_word, shift_word, slt_word, sub_word, ult_word, Aig,
    AigLit, ShiftKind,
};
use fastpath_rtl::BitVec;
use proptest::prelude::*;

struct Harness {
    aig: Aig,
    a: Vec<AigLit>,
    b: Vec<AigLit>,
}

impl Harness {
    fn new(width: u32, amount_width: u32) -> Self {
        let mut aig = Aig::new();
        let a = (0..width).map(|_| aig.input()).collect();
        let b = (0..amount_width).map(|_| aig.input()).collect();
        Harness { aig, a, b }
    }

    fn eval(&self, out: &[AigLit], a: &BitVec, b: &BitVec) -> BitVec {
        let mut inputs = vec![false; self.aig.node_count()];
        for (i, &lit) in self.a.iter().enumerate() {
            inputs[lit.node()] = a.bit(i as u32);
        }
        for (i, &lit) in self.b.iter().enumerate() {
            inputs[lit.node()] = b.bit(i as u32);
        }
        let mut v = BitVec::zero(out.len() as u32);
        for (i, &lit) in out.iter().enumerate() {
            if self.aig.eval(lit, &inputs) {
                v.set_bit(i as u32, true);
            }
        }
        v
    }
}

prop_compose! {
    fn operands()(width in 1u32..24)(
        width in Just(width),
        a in any::<u64>(),
        b in any::<u64>(),
    ) -> (u32, BitVec, BitVec) {
        (width, BitVec::from_u64(width, a), BitVec::from_u64(width, b))
    }
}

proptest! {
    #[test]
    fn arithmetic_matches_bitvec((w, a, b) in operands()) {
        let mut h = Harness::new(w, w);
        let (ai, bi) = (h.a.clone(), h.b.clone());
        let add = add_word(&mut h.aig, &ai, &bi);
        let sub = sub_word(&mut h.aig, &ai, &bi);
        let mul = mul_word(&mut h.aig, &ai, &bi);
        let neg = neg_word(&mut h.aig, &ai);
        prop_assert_eq!(h.eval(&add, &a, &b), a.wrapping_add(&b));
        prop_assert_eq!(h.eval(&sub, &a, &b), a.wrapping_sub(&b));
        prop_assert_eq!(h.eval(&mul, &a, &b), a.wrapping_mul(&b));
        prop_assert_eq!(h.eval(&neg, &a, &b), a.wrapping_neg());
    }

    #[test]
    fn comparisons_match_bitvec((w, a, b) in operands()) {
        use std::cmp::Ordering;
        let mut h = Harness::new(w, w);
        let (ai, bi) = (h.a.clone(), h.b.clone());
        let eq = vec![eq_word(&mut h.aig, &ai, &bi)];
        let ult = vec![ult_word(&mut h.aig, &ai, &bi)];
        let slt = vec![slt_word(&mut h.aig, &ai, &bi)];
        prop_assert_eq!(h.eval(&eq, &a, &b).is_true(), a == b);
        prop_assert_eq!(
            h.eval(&ult, &a, &b).is_true(),
            a.cmp_unsigned(&b) == Ordering::Less
        );
        prop_assert_eq!(
            h.eval(&slt, &a, &b).is_true(),
            a.cmp_signed(&b) == Ordering::Less
        );
    }

    #[test]
    fn dynamic_shifts_match_bitvec(
        (w, a, _) in operands(),
        amount_width in 1u32..8,
        raw_amount in any::<u64>(),
    ) {
        let amount = BitVec::from_u64(amount_width, raw_amount);
        let mut h = Harness::new(w, amount_width);
        let (ai, bi) = (h.a.clone(), h.b.clone());
        for (kind, reference) in [
            (ShiftKind::Shl, a.shl(amount.to_u64())),
            (ShiftKind::Lshr, a.lshr(amount.to_u64())),
            (ShiftKind::Ashr, a.ashr(amount.to_u64())),
        ] {
            let circuit = shift_word(&mut h.aig, kind, &ai, &bi);
            prop_assert_eq!(
                h.eval(&circuit, &a, &amount),
                reference,
                "kind {:?} width {} amount {}",
                kind,
                w,
                amount.to_u64()
            );
        }
    }

    #[test]
    fn mux_selects_correct_branch((w, a, b) in operands(), sel in any::<bool>()) {
        let mut aig = Aig::new();
        let s = aig.input();
        let ai: Vec<AigLit> = (0..w).map(|_| aig.input()).collect();
        let bi: Vec<AigLit> = (0..w).map(|_| aig.input()).collect();
        let m = mux_word(&mut aig, s, &ai, &bi);
        let mut inputs = vec![false; aig.node_count()];
        inputs[s.node()] = sel;
        for i in 0..w {
            inputs[ai[i as usize].node()] = a.bit(i);
            inputs[bi[i as usize].node()] = b.bit(i);
        }
        let mut got = BitVec::zero(w);
        for (i, &lit) in m.iter().enumerate() {
            if aig.eval(lit, &inputs) {
                got.set_bit(i as u32, true);
            }
        }
        prop_assert_eq!(got, if sel { a } else { b });
    }
}
