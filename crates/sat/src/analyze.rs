//! First-UIP conflict analysis with recursive clause minimization.
//!
//! Chronology-aware: with chronological backtracking the trail is not
//! sorted by decision level, so the backward walk filters on the
//! conflict level explicitly rather than relying on trail position.
//! Reason clauses are iterated by index (no per-expansion clone), and
//! LBD computation stamps a generation counter into a reusable
//! per-level buffer instead of allocating a set per clause.

use crate::solver::{tier_for_lbd, Solver, RESCALE_LIMIT};
use crate::types::{Lit, Var};

impl Solver {
    /// Analyzes a conflict, returning the learnt clause (asserting
    /// literal first) and the backjump level. Must be called with the
    /// decision level equal to the conflict's own level.
    pub(crate) fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let conflict_level = self.decision_level();
        debug_assert!(conflict_level > 0);
        let mut learnt: Vec<Lit> = Vec::with_capacity(16);
        self.analyze_toclear.clear();

        let mut path = 0u32; // unresolved literals at the conflict level
        let mut p: Option<Lit> = None;
        let mut cref = conflict as usize;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(cref);
            for k in 0..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                // Skip the implied literal when expanding a reason (the
                // binary fast path does not normalize it to position 0).
                if p.is_some_and(|p| p.var() == q.var()) {
                    continue;
                }
                let v = q.var();
                let level = self.levels[v.index()];
                if self.seen[v.index()] || level == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.analyze_toclear.push(q);
                self.bump_var(v);
                if level >= conflict_level {
                    path += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Next seen literal at the conflict level, scanning the trail
            // backwards. Out-of-order (chronological) assignments sit at
            // lower levels interleaved into the suffix, hence the filter.
            loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().index()] && self.levels[lit.var().index()] >= conflict_level
                {
                    break;
                }
            }
            let uip = self.trail[index];
            self.seen[uip.var().index()] = false;
            path -= 1;
            if path == 0 {
                learnt.insert(0, !uip);
                break;
            }
            p = Some(uip);
            cref = self.reasons[uip.var().index()].expect("non-UIP literal has a reason") as usize;
        }

        // Minimize: drop literals implied by the rest of the clause
        // (recursive reason-side check, MiniSat's `lit_redundant`).
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |acc, l| acc | self.abstract_level(l.var()));
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reasons[l.var().index()].is_none() || !self.lit_redundant(l, abstract_levels) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);

        for i in 0..self.analyze_toclear.len() {
            self.seen[self.analyze_toclear[i].var().index()] = false;
        }

        let backjump = learnt[1..]
            .iter()
            .map(|l| self.levels[l.var().index()])
            .max()
            .unwrap_or(0);
        (learnt, backjump)
    }

    /// `true` if `lit`'s negation is implied by the remaining learnt
    /// literals (so `lit` can be dropped). `abstract_levels` is a 32-bit
    /// Bloom filter of the clause's decision levels: a reason literal
    /// outside those levels can never be redundant, which prunes the
    /// recursion cheaply.
    fn lit_redundant(&mut self, lit: Lit, abstract_levels: u32) -> bool {
        let Some(reason) = self.reasons[lit.var().index()] else {
            return false;
        };
        let cref = reason as usize;
        for k in 0..self.clauses[cref].lits.len() {
            let q = self.clauses[cref].lits[k];
            let v = q.var();
            if v == lit.var() || self.seen[v.index()] || self.levels[v.index()] == 0 {
                continue;
            }
            if self.reasons[v.index()].is_none()
                || self.abstract_level(v) & abstract_levels == 0
                || !self.lit_redundant(q, abstract_levels)
            {
                return false;
            }
            // Cache the positive sub-result so shared suffixes are not
            // re-derived.
            self.seen[v.index()] = true;
            self.analyze_toclear.push(q);
        }
        true
    }

    fn abstract_level(&self, v: Var) -> u32 {
        1u32 << (self.levels[v.index()] & 31)
    }

    /// Literal-block distance: the number of distinct non-root decision
    /// levels among the clause's literals. Uses the generation-stamped
    /// level buffer — no allocation, O(len).
    pub(crate) fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen = self.lbd_gen.wrapping_add(1);
        if self.lbd_gen == 0 {
            self.lbd_stamp.fill(0);
            self.lbd_gen = 1;
        }
        let gen = self.lbd_gen;
        let mut distinct = 0;
        for &l in lits {
            let level = self.levels[l.var().index()] as usize;
            if level != 0 && self.lbd_stamp[level] != gen {
                self.lbd_stamp[level] = gen;
                distinct += 1;
            }
        }
        distinct
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.heap.update(v, &self.activity);
    }

    /// Bumps a clause that participated in a conflict: activity, the
    /// used-counter that shields it from the next reductions, and — for
    /// learnt clauses — an LBD recompute with tier promotion when the
    /// glue improved.
    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.clause_inc;
        if self.clauses[cref].activity > RESCALE_LIMIT {
            for c in &mut self.clauses {
                c.activity *= 1.0 / RESCALE_LIMIT;
            }
            self.clause_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.clauses[cref].used = 2;
        let lbd = {
            let lits = std::mem::take(&mut self.clauses[cref].lits);
            let lbd = self.compute_lbd(&lits);
            self.clauses[cref].lits = lits;
            lbd
        };
        if lbd < self.clauses[cref].lbd {
            self.clauses[cref].lbd = lbd;
            let tier = tier_for_lbd(lbd);
            // Promotion only — demotion is reduce_db's job.
            let promote = matches!(
                (self.clauses[cref].tier, tier),
                (crate::solver::Tier::Local, _)
                    | (crate::solver::Tier::Mid, crate::solver::Tier::Core)
            );
            if promote {
                self.clauses[cref].tier = tier;
            }
        }
    }
}
