//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two-watched-literal
//! propagation, first-UIP conflict analysis with clause learning and
//! non-chronological backjumping, VSIDS variable activities with an indexed
//! max-heap, phase saving, Luby-sequence restarts, and activity-based
//! learnt-clause database reduction. Incremental solving under assumptions
//! is supported, which is what the UPEC-DIT engine uses for its repeated
//! property checks.

use crate::proof::{Proof, ProofStep};
use crate::types::{LBool, Lit, SolveResult, Var};

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 128;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    /// Literal-block distance at learning time (glue level).
    lbd: u32,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

/// An indexed binary max-heap over variables ordered by activity.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    position: Vec<Option<u32>>,
}

impl VarHeap {
    fn grow(&mut self, n: usize) {
        self.position.resize(n, None);
    }

    fn contains(&self, v: Var) -> bool {
        self.position[v.index()].is_some()
    }

    fn push(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = Some(self.heap.len() as u32);
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.position[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(pos) = self.position[v.index()] {
            self.sift_up(pos as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut largest = i;
            for child in [left, right] {
                if child < self.heap.len()
                    && activity[self.heap[child].index()] > activity[self.heap[largest].index()]
                {
                    largest = child;
                }
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = Some(i as u32);
        self.position[self.heap[j].index()] = Some(j as u32);
    }
}

/// Statistics accumulated across `solve` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
}

impl SolverStats {
    /// Folds another solver's statistics into this one. Used to aggregate
    /// across engines (one per design) or across parallel workers.
    pub fn merge(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.merge(&rhs);
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use fastpath_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// // (a | b) & (!a | b) & (a | !b)  =>  a=1, b=1
/// solver.add_clause(&[a.positive(), b.positive()]);
/// solver.add_clause(&[a.negative(), b.positive()]);
/// solver.add_clause(&[a.positive(), b.negative()]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.value(a), Some(true));
/// assert_eq!(solver.value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    model: Vec<bool>,
    max_learnts: f64,
    /// DRUP-style proof trace; `None` keeps logging at zero cost.
    proof: Option<Proof>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            heap: VarHeap::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            model: Vec::new(),
            max_learnts: 1000.0,
            proof: None,
        }
    }

    /// Turns on DRUP-style proof logging: every asserted clause, every
    /// learnt clause, and every deletion is appended to an in-memory
    /// trace that an independent checker can replay (see the
    /// `fastpath-cert` crate). Logging must be enabled before the first
    /// clause is added so the trace covers the whole formula.
    ///
    /// # Panics
    ///
    /// Panics if any clause (or unit fact) has already been added.
    pub fn enable_proof_logging(&mut self) {
        assert!(
            self.clauses.is_empty() && self.trail.is_empty() && self.ok,
            "proof logging must be enabled before any clause is added"
        );
        self.proof = Some(Proof::new());
    }

    /// The proof trace, if logging is enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// The current trace length (0 when logging is disabled). Taken right
    /// after a `solve` call, this delimits that call's certificate even
    /// while later activity keeps appending.
    pub fn proof_len(&self) -> usize {
        self.proof.as_ref().map_or(0, Proof::len)
    }

    /// The full model of the most recent [`SolveResult::Sat`] outcome
    /// (empty before the first successful solve), indexed by variable.
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    #[inline]
    fn log(&mut self, step: impl FnOnce() -> ProofStep) {
        if let Some(proof) = &mut self.proof {
            proof.push(step());
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// The number of (original, non-deleted) problem clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        self.heap.push(v, &self.activity);
        v
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state
    /// (adding the empty clause, or a level-0 conflict).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // Record the clause verbatim (pre-simplification): the axiom
        // stream must be the exact CNF the caller asserted, and the
        // checker's own propagation re-derives whatever the
        // simplification below exploits.
        self.log(|| ProofStep::Axiom(lits.to_vec()));
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Simplify: sort, dedup, drop false lits, detect tautology/sat.
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // After sorting, `v` and `!v` are adjacent.
        if sorted.windows(2).any(|w| w[0] == !w[1]) {
            return true; // tautology: x | !x
        }
        let mut simplified: Vec<Lit> = Vec::with_capacity(sorted.len());
        for &lit in &sorted {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal {lit} references unallocated variable"
            );
            match self.lit_value(lit) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(lit),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = Watch {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watch {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        let lbd = if learnt { self.compute_lbd(&lits) } else { 0 };
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            deleted: false,
        });
        cref
    }

    /// Literal-block distance: number of distinct decision levels.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.levels[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    /// The model value of a variable after a [`SolveResult::Sat`] outcome.
    /// `None` before the first successful solve.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied()
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.levels[v.index()] = self.decision_level();
        self.reasons[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            // Take the watch list to avoid aliasing; we push back survivors.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            while i < ws.len() {
                let watch = ws[i];
                // Quick satisfied check via blocker.
                if self.lit_value(watch.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = watch.clause as usize;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: watched literal being falsified is !p; put it
                // at position 1.
                let false_lit = !p;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != watch.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut found = None;
                for k in 2..self.clauses[cref].lits.len() {
                    if self.lit_value(self.clauses[cref].lits[k]) != LBool::False {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    self.clauses[cref].lits.swap(1, k);
                    let new_watched = self.clauses[cref].lits[1];
                    self.watches[(!new_watched).index()].push(Watch {
                        clause: watch.clause,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watches and bail.
                    self.watches[p.index()].append(&mut ws.split_off(0));
                    self.qhead = self.trail.len();
                    return Some(watch.clause);
                }
                self.enqueue(first, Some(watch.clause));
                i += 1;
            }
            self.watches[p.index()].append(&mut ws);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.clause_inc;
        if c.activity > RESCALE_LIMIT {
            for clause in self.clauses.iter_mut().filter(|c| c.learnt) {
                clause.activity *= 1.0 / RESCALE_LIMIT;
            }
            self.clause_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            // Collect literals from the reason/conflict clause.
            let lits: Vec<Lit> = self.clauses[cref as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.levels[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand: last seen on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            cref = self.reasons[lit.var().index()].expect("non-decision literal has a reason");
        }

        // Recursive clause minimization (MiniSat ccmin-mode 2): a literal
        // is redundant if it is implied by the remaining learnt literals
        // through the implication graph. `seen` is still set for every
        // learnt literal at this point, which the check relies on.
        for l in &learnt {
            self.seen[l.var().index()] = true;
        }
        let abstract_levels: u32 = learnt[1..]
            .iter()
            .map(|l| 1u32 << (self.levels[l.var().index()] & 31))
            .fold(0, |a, b| a | b);
        let mut to_clear: Vec<Lit> = learnt.clone();
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| {
                self.reasons[l.var().index()].is_none()
                    || !self.lit_redundant(l, abstract_levels, &mut to_clear)
            })
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Backjump level = highest level among the non-UIP literals.
        let backjump = minimized[1..]
            .iter()
            .map(|l| self.levels[l.var().index()])
            .max()
            .unwrap_or(0);

        // Clear seen flags.
        for l in &to_clear {
            self.seen[l.var().index()] = false;
        }
        (minimized, backjump)
    }

    /// Recursive redundancy check through the implication graph. Literals
    /// whose entire reason cone is already `seen` (or level 0) are implied
    /// by the rest of the learnt clause. Newly visited literals are marked
    /// `seen` and recorded in `to_clear`.
    fn lit_redundant(&mut self, lit: Lit, abstract_levels: u32, to_clear: &mut Vec<Lit>) -> bool {
        let mut stack = vec![lit];
        let checkpoint = to_clear.len();
        while let Some(q) = stack.pop() {
            let reason = self.reasons[q.var().index()].expect("candidate literal has a reason");
            let lits: Vec<Lit> = self.clauses[reason as usize].lits[1..].to_vec();
            for l in lits {
                let v = l.var();
                if self.seen[v.index()] || self.levels[v.index()] == 0 {
                    continue;
                }
                let has_reason = self.reasons[v.index()].is_some();
                let level_ok = (1u32 << (self.levels[v.index()] & 31)) & abstract_levels != 0;
                if has_reason && level_ok {
                    self.seen[v.index()] = true;
                    to_clear.push(l);
                    stack.push(l);
                } else {
                    // Not redundant: roll back the marks from this probe.
                    for undo in &to_clear[checkpoint..] {
                        self.seen[undo.var().index()] = false;
                    }
                    to_clear.truncate(checkpoint);
                    return false;
                }
            }
        }
        true
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.phase[v.index()] = lit.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reasons[v.index()] = None;
            self.heap.push(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut locked = vec![false; self.clauses.len()];
        for l in &self.trail {
            if let Some(cref) = self.reasons[l.var().index()] {
                locked[cref as usize] = true;
            }
        }
        // Glue clauses (small LBD) are kept unconditionally; the rest are
        // ranked worst-first by (high LBD, low activity) and the worst half
        // removed.
        let mut learnt_indices: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, c)| c.learnt && !c.deleted && !locked[*i] && c.lits.len() > 2 && c.lbd > 3)
            .map(|(i, _)| i)
            .collect();
        learnt_indices.sort_by(|&a, &b| {
            let ca = &self.clauses[a];
            let cb = &self.clauses[b];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .expect("activities are finite"),
            )
        });
        let remove = learnt_indices.len() / 2;
        for &i in &learnt_indices[..remove] {
            self.clauses[i].deleted = true;
            self.stats.learnt_clauses -= 1;
            if self.proof.is_some() {
                let lits = self.clauses[i].lits.clone();
                self.log(|| ProofStep::Delete(lits));
            }
        }
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals: the formula plus each
    /// assumption as a unit constraint for this call only.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions);
        self.backtrack(0);
        result
    }

    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        let mut conflicts_until_restart = luby(self.stats.restarts) * LUBY_UNIT;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.log(|| ProofStep::Learn(Vec::new()));
                    return SolveResult::Unsat;
                }
                let (mut learnt, backjump) = self.analyze(conflict);
                if self.proof.is_some() {
                    let lits = learnt.clone();
                    self.log(|| ProofStep::Learn(lits));
                }
                // Backjump may land below the assumption levels; the main
                // loop re-asserts assumptions as pseudo-decisions, so this
                // is safe and keeps the learning machinery uniform.
                self.backtrack(backjump);
                if learnt.len() == 1 {
                    // Unit learnt clause: backjump is 0, assert at level 0.
                    debug_assert_eq!(self.decision_level(), 0);
                    match self.lit_value(learnt[0]) {
                        LBool::False => {
                            self.ok = false;
                            self.log(|| ProofStep::Learn(Vec::new()));
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => self.enqueue(learnt[0], None),
                        LBool::True => {}
                    }
                } else {
                    // Watch the asserting literal and a literal from the
                    // backjump level so the watch invariant survives
                    // backtracking.
                    let max_pos = (1..learnt.len())
                        .max_by_key(|&i| self.levels[learnt[i].var().index()])
                        .expect("clause has at least two literals");
                    learnt.swap(1, max_pos);
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    debug_assert_eq!(self.lit_value(asserting), LBool::Undef);
                    self.enqueue(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.clause_inc /= CLAUSE_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.stats.learnt_clauses as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                // No conflict: restart, assume, or decide.
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    conflicts_until_restart = luby(self.stats.restarts) * LUBY_UNIT;
                }
                // Re-assert pending assumptions as pseudo-decisions (one
                // decision level per assumption, in order).
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied; open an empty level to keep
                            // the level↔assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SolveResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
                        #[cfg(debug_assertions)]
                        self.debug_check_model();
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let lit = v.lit(self.phase[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Debug-build tripwire: a [`SolveResult::Sat`] model must satisfy
    /// every live clause in the database. Runs at the moment the model is
    /// extracted, so an unsound answer is caught even when certification
    /// is off.
    #[cfg(debug_assertions)]
    fn debug_check_model(&self) {
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.deleted {
                continue;
            }
            let satisfied = clause
                .lits
                .iter()
                .any(|&l| self.model[l.var().index()] == l.is_positive());
            assert!(
                satisfied,
                "SAT model falsifies clause #{i} {:?}",
                clause.lits
            );
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, … (0-indexed).
fn luby(x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        // a & (a->b) & (b->c) & (c->d)  =>  all true
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[vars[0].positive()]);
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][h] = pigeon i in hole h.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        // Every pigeon somewhere.
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        // No two pigeons share a hole.
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_with(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_with(&[a.negative(), b.negative()]),
            SolveResult::Unsat
        );
        // The solver is still usable and SAT without those assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_with(&[a.positive(), a.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.add_clause(&[b.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn proof_logging_off_by_default() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert!(s.proof().is_none());
        assert_eq!(s.proof_len(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.proof().is_none());
    }

    #[test]
    fn proof_records_axioms_verbatim() {
        let mut s = Solver::new();
        s.enable_proof_logging();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[b.negative(), b.positive(), a.negative()]); // tautology
        let proof = s.proof().expect("enabled");
        assert_eq!(proof.len(), 2);
        // Axioms are logged before simplification — tautologies included.
        assert_eq!(
            proof.steps()[1],
            ProofStep::Axiom(vec![b.negative(), b.positive(), a.negative()])
        );
        assert_eq!(proof.axioms(2).count(), 2);
    }

    #[test]
    fn unsat_trace_ends_with_empty_learn() {
        // Pigeonhole 3-into-2 forces real conflict analysis; with logging
        // on, the trace must contain Learn steps and terminate in the
        // empty clause.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("enabled");
        let learns: Vec<&ProofStep> = proof
            .steps()
            .iter()
            .filter(|st| matches!(st, ProofStep::Learn(_)))
            .collect();
        assert!(!learns.is_empty(), "conflict analysis must log learns");
        assert_eq!(
            proof.steps().last(),
            Some(&ProofStep::Learn(Vec::new())),
            "UNSAT trace must end with the empty clause"
        );
    }

    #[test]
    fn proof_len_snapshots_are_stable_across_later_activity() {
        // The activation-literal protocol takes a trace snapshot right
        // after each solve; later retirement units and new obligations
        // must extend the trace, never disturb the prefix.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let g = s.new_var();
        s.add_clause(&[g.negative(), x.positive()]);
        s.add_clause(&[g.negative(), x.negative()]);
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        let prefix: Vec<ProofStep> = s.proof().expect("enabled").steps()[..snapshot].to_vec();
        s.add_clause(&[g.negative()]); // retire
        assert_eq!(s.solve(), SolveResult::Sat);
        let proof = s.proof().expect("enabled");
        assert!(proof.len() > snapshot);
        assert_eq!(&proof.steps()[..snapshot], prefix.as_slice());
    }

    /// Brute-force evaluation of a CNF for cross-checking.
    fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
        for bits in 0u64..(1 << num_vars) {
            let assignment = |v: usize| -> bool { (bits >> v) & 1 == 1 };
            if cnf
                .iter()
                .all(|clause| clause.iter().any(|&(v, pos)| assignment(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_cnfs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xFA57);
        for _ in 0..300 {
            let num_vars = rng.gen_range(1..=8usize);
            let num_clauses = rng.gen_range(1..=20usize);
            let cnf: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1..=3usize);
                    (0..len)
                        .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            let expected = brute_force_sat(num_vars, &cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "cnf: {cnf:?}");
            if got {
                // Verify the model actually satisfies the CNF.
                for clause in &cnf {
                    assert!(clause
                        .iter()
                        .any(|&(v, pos)| { s.value(vars[v]) == Some(pos) }));
                }
            }
        }
    }
}
