//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The core follows the MiniSat architecture — two-watched-literal
//! propagation, first-UIP conflict analysis with clause learning, VSIDS
//! variable activities with an indexed max-heap, phase saving, and
//! Luby-sequence restarts — extended with the techniques of contemporary
//! solvers: special-cased binary-clause watches, a glue-aware three-tier
//! learnt-clause database (see `reduce.rs`), chronological backtracking
//! (see [`Solver::backtrack`]), target-phase rephasing, inprocessing
//! between restarts (see `inprocess.rs`), and a proof-sound parallel
//! portfolio (see `portfolio.rs`). Incremental solving under assumptions
//! is supported, which is what the UPEC-DIT engine uses for its repeated
//! property checks.

use crate::heap::VarHeap;
use crate::portfolio::{ShareCursor, ShareLog};
use crate::proof::{Proof, ProofStep};
use crate::stats::SolverStats;
use crate::types::{LBool, Lit, SolveResult, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub(crate) const VAR_DECAY: f64 = 0.95;
pub(crate) const CLAUSE_DECAY: f64 = 0.999;
pub(crate) const RESCALE_LIMIT: f64 = 1e100;
pub(crate) const LUBY_UNIT: u64 = 128;
/// Backjumps longer than this become single-level chronological
/// backtracks, so the long propagation prefix below stays intact.
pub(crate) const CHRONO_THRESHOLD: u32 = 100;
/// Conflicts between phase resets.
pub(crate) const REPHASE_INTERVAL: u64 = 4096;
/// Conflicts before the first inprocessing pass; doubles after each pass.
pub(crate) const INPROCESS_INTERVAL: u64 = 4096;
/// Learnt clauses with LBD at or below this are exported to portfolio
/// peers.
pub(crate) const SHARE_LBD_LIMIT: u32 = 2;
/// How often (in decisions) a portfolio worker polls the stop flag.
const STOP_POLL_DECISIONS: u64 = 128;

/// Learnt-clause storage tier. Glue (low-LBD) clauses are kept forever,
/// mid-tier clauses survive while they keep participating in conflicts,
/// and local clauses face activity-ranked reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tier {
    /// LBD ≤ 2: kept unconditionally.
    Core,
    /// LBD ≤ 6: kept while recently used, demoted to Local when stale.
    Mid,
    /// Everything else: the reduction pool.
    Local,
}

pub(crate) fn tier_for_lbd(lbd: u32) -> Tier {
    match lbd {
        0..=2 => Tier::Core,
        3..=6 => Tier::Mid,
        _ => Tier::Local,
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) activity: f64,
    /// Literal-block distance at learning time (glue level), updated
    /// downward when the clause participates in later conflicts.
    pub(crate) lbd: u32,
    pub(crate) tier: Tier,
    /// Reduction-protection counter: bumped when the clause appears in a
    /// conflict, decremented by `reduce_db` instead of deleting.
    pub(crate) used: u8,
    pub(crate) deleted: bool,
}

/// A watch-list entry. The clause reference and the is-binary bit share
/// one word so binary clauses propagate without touching clause memory:
/// for them `blocker` *is* the other literal.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    tag: u32,
    pub(crate) blocker: Lit,
}

impl Watch {
    pub(crate) fn new(cref: u32, blocker: Lit, binary: bool) -> Watch {
        debug_assert!(cref < u32::MAX / 2, "clause arena overflow");
        Watch {
            tag: (cref << 1) | u32::from(binary),
            blocker,
        }
    }

    pub(crate) fn cref(self) -> u32 {
        self.tag >> 1
    }

    pub(crate) fn with_blocker(self, blocker: Lit) -> Watch {
        Watch { blocker, ..self }
    }

    pub(crate) fn is_binary(self) -> bool {
        self.tag & 1 != 0
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use fastpath_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// // (a | b) & (!a | b) & (a | !b)  =>  a=1, b=1
/// solver.add_clause(&[a.positive(), b.positive()]);
/// solver.add_clause(&[a.negative(), b.positive()]);
/// solver.add_clause(&[a.positive(), b.negative()]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.value(a), Some(true));
/// assert_eq!(solver.value(b), Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    pub(crate) clauses: Vec<Clause>,
    pub(crate) watches: Vec<Vec<Watch>>,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) levels: Vec<u32>,
    pub(crate) reasons: Vec<Option<u32>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) clause_inc: f64,
    pub(crate) heap: VarHeap,
    pub(crate) phase: Vec<bool>,
    /// Phase snapshot of the deepest trail reached since the last restart
    /// window — the "target phases" used by rephasing.
    pub(crate) target_phase: Vec<bool>,
    pub(crate) best_trail: usize,
    pub(crate) seen: Vec<bool>,
    /// Scratch for conflict analysis: literals whose `seen` marks need
    /// clearing (reused across conflicts; no per-conflict allocation).
    pub(crate) analyze_toclear: Vec<Lit>,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    pub(crate) model: Vec<bool>,
    pub(crate) max_learnts: f64,
    /// DRUP-style proof trace; `None` keeps logging at zero cost.
    pub(crate) proof: Option<Proof>,
    /// Decision-level stamp buffer for allocation-free LBD computation.
    pub(crate) lbd_stamp: Vec<u32>,
    pub(crate) lbd_gen: u32,
    /// Chronological backtracking switch (portfolio workers diversify it).
    pub(crate) chrono: bool,
    pub(crate) chrono_threshold: u32,
    /// Variables exempt from elimination: assumption/activation literals
    /// and anything the caller froze explicitly.
    pub(crate) frozen: Vec<bool>,
    pub(crate) eliminated: Vec<bool>,
    /// Eliminated variables with the clauses removed on their behalf, in
    /// elimination order; used for model reconstruction and restoration.
    pub(crate) elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    pub(crate) inprocess_enabled: bool,
    pub(crate) bve_enabled: bool,
    pub(crate) inprocess_passes: u32,
    pub(crate) next_inprocess: u64,
    /// Base conflict gap between inprocessing passes (doubles per pass).
    pub(crate) inprocess_interval: u64,
    /// Round-robin cursor so vivification resumes where the last pass
    /// stopped instead of re-probing the same prefix.
    pub(crate) vivify_head: usize,
    pub(crate) next_rephase: u64,
    pub(crate) rephase_kind: u8,
    /// Conflict ceiling for the current `solve_with_budget` call:
    /// `stats.conflicts` crossing it aborts the search. `u64::MAX`
    /// (the resting value) disables the check.
    pub(crate) conflict_limit: u64,
    /// Portfolio width on the owning solver (0 = plain sequential).
    pub(crate) portfolio_workers: usize,
    /// Cube-and-conquer scheduling width (0 = cubing disabled). Affects
    /// wall-clock only; verdicts, models, stats, and proofs are identical
    /// for every non-zero value (see `cube.rs`).
    pub(crate) cube_jobs: usize,
    /// Conflicts granted to the canonical monolithic attempt before a
    /// check is declared hard and split into cubes.
    pub(crate) cube_trigger: u64,
    /// Race stop flag, set only on portfolio worker clones.
    pub(crate) stop: Option<Arc<AtomicBool>>,
    /// Outgoing share log (set on portfolio workers).
    pub(crate) share_out: Option<Arc<ShareLog>>,
    /// Incoming share logs from the other workers.
    pub(crate) share_in: Vec<ShareCursor>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            heap: VarHeap::default(),
            phase: Vec::new(),
            target_phase: Vec::new(),
            best_trail: 0,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            model: Vec::new(),
            max_learnts: 1000.0,
            proof: None,
            lbd_stamp: vec![0],
            lbd_gen: 0,
            chrono: true,
            chrono_threshold: CHRONO_THRESHOLD,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            inprocess_enabled: true,
            bve_enabled: true,
            inprocess_passes: 0,
            next_inprocess: INPROCESS_INTERVAL,
            inprocess_interval: INPROCESS_INTERVAL,
            vivify_head: 0,
            next_rephase: REPHASE_INTERVAL,
            rephase_kind: 0,
            conflict_limit: u64::MAX,
            portfolio_workers: 0,
            cube_jobs: 0,
            cube_trigger: crate::cube::CUBE_TRIGGER_CONFLICTS,
            stop: None,
            share_out: None,
            share_in: Vec::new(),
        }
    }

    /// Turns on DRUP-style proof logging: every asserted clause, every
    /// learnt (or inprocessing-derived) clause, and every deletion is
    /// appended to an in-memory trace that an independent checker can
    /// replay (see the `fastpath-cert` crate). Logging must be enabled
    /// before the first clause is added so the trace covers the whole
    /// formula.
    ///
    /// # Panics
    ///
    /// Panics if any clause (or unit fact) has already been added.
    pub fn enable_proof_logging(&mut self) {
        assert!(
            self.clauses.is_empty() && self.trail.is_empty() && self.ok,
            "proof logging must be enabled before any clause is added"
        );
        self.proof = Some(Proof::new());
    }

    /// The proof trace, if logging is enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// The current trace length (0 when logging is disabled). Taken right
    /// after a `solve` call, this delimits that call's certificate even
    /// while later activity keeps appending.
    pub fn proof_len(&self) -> usize {
        self.proof.as_ref().map_or(0, Proof::len)
    }

    /// The full model of the most recent [`SolveResult::Sat`] outcome
    /// (empty before the first successful solve), indexed by variable.
    /// Covers eliminated variables via model reconstruction.
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    #[inline]
    pub(crate) fn log(&mut self, step: impl FnOnce() -> ProofStep) {
        if let Some(proof) = &mut self.proof {
            self.stats.proof_bytes += proof.push(step()) as u64;
        }
    }

    /// Turns on the proof trace's buffered DRUP text renderer (see
    /// [`Proof::enable_text`]): each step is rendered once as it is
    /// logged, and any prefix certificate is served as a byte slice
    /// instead of an O(prefix) re-render per check. A no-op until proof
    /// logging is enabled; already-recorded steps are backfilled.
    /// Rendered bytes are counted in `SolverStats::proof_bytes`.
    pub fn enable_proof_text(&mut self) {
        if let Some(proof) = &mut self.proof {
            self.stats.proof_bytes += proof.enable_text() as u64;
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// The number of (original, non-deleted) problem clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Exempts a variable from bounded variable elimination. Activation
    /// literals and any variable that may occur in future clauses or
    /// assumptions should be frozen; assumption variables are frozen
    /// automatically on first use. Freezing is permanent.
    pub fn freeze(&mut self, v: Var) {
        self.frozen[v.index()] = true;
    }

    /// `true` if the variable is exempt from elimination.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// Enables or disables inprocessing (vivification, subsumption, and
    /// bounded variable elimination between restarts). On by default.
    pub fn set_inprocessing(&mut self, enabled: bool) {
        self.inprocess_enabled = enabled;
    }

    /// Sets the conflict interval between inprocessing passes (default
    /// 4096; the gap also doubles with each completed pass). Lowering it
    /// makes inprocessing fire on short queries — useful for tests and
    /// for workloads dominated by many small incremental checks.
    pub fn set_inprocess_interval(&mut self, conflicts: u64) {
        self.inprocess_interval = conflicts.max(1);
        self.next_inprocess = self.stats.conflicts + self.inprocess_interval;
    }

    /// Enables or disables bounded variable elimination specifically
    /// (a sub-switch of inprocessing). On by default.
    pub fn set_variable_elimination(&mut self, enabled: bool) {
        self.bve_enabled = enabled;
    }

    /// Enables or disables chronological backtracking. On by default.
    pub fn set_chrono(&mut self, enabled: bool) {
        self.chrono = enabled;
    }

    /// Sets the portfolio width: `solve` calls race `workers` diversified
    /// solver configurations and adjudicate deterministically (see
    /// `portfolio.rs` for the determinism rules). `0` disables the
    /// portfolio (plain sequential solving).
    pub fn set_portfolio(&mut self, workers: usize) {
        self.portfolio_workers = workers;
    }

    /// The configured portfolio width (0 = sequential).
    pub fn portfolio(&self) -> usize {
        self.portfolio_workers
    }

    /// Sets the cube-and-conquer scheduling width. With `jobs > 0`,
    /// `solve`/`solve_with` first runs a budgeted canonical attempt (the
    /// width-1 portfolio discipline); a check that exhausts the attempt's
    /// conflict budget is split by the lookahead cuber and the cubes are
    /// conquered over `jobs` threads (see `cube.rs` for the determinism
    /// rules — results are identical for every non-zero `jobs`). `0`
    /// disables cubing. Takes precedence over the portfolio race;
    /// budgeted solves (`solve_with_budget`) never cube.
    pub fn set_cube(&mut self, jobs: usize) {
        self.cube_jobs = jobs;
    }

    /// The configured cube scheduling width (0 = cubing disabled).
    pub fn cube(&self) -> usize {
        self.cube_jobs
    }

    /// Sets the conflict budget of the canonical attempt that precedes
    /// any split (default [`crate::CUBE_TRIGGER_CONFLICTS`]).
    /// Checks that finish within the budget never cube, so the common
    /// case is byte-identical to the monolithic path. Machine-independent
    /// by construction (a conflict count, not a time limit).
    pub fn set_cube_trigger(&mut self, conflicts: u64) {
        self.cube_trigger = conflicts.max(1);
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.target_phase.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.lbd_stamp.push(0);
        self.heap.grow(self.assigns.len());
        self.heap.push(v, &self.activity);
        v
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state
    /// (adding the empty clause, or a level-0 conflict).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        for &lit in lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal {lit} references unallocated variable"
            );
        }
        // A clause may mention a variable that bounded elimination
        // removed; restore such variables (and their clauses) first so
        // the elimination stays sound under incremental additions.
        self.restore_eliminated_in(lits);
        // Record the clause verbatim (pre-simplification): the axiom
        // stream must cover the exact CNF the caller asserted, and the
        // checker's own propagation re-derives whatever the
        // simplification below exploits.
        self.log(|| ProofStep::Axiom(lits.to_vec()));
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Simplify: sort, dedup, drop false lits, detect tautology/sat.
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // After sorting, `v` and `!v` are adjacent.
        if sorted.windows(2).any(|w| w[0] == !w[1]) {
            return true; // tautology: x | !x
        }
        let mut simplified: Vec<Lit> = Vec::with_capacity(sorted.len());
        for &lit in &sorted {
            match self.lit_value(lit) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(lit),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let binary = lits.len() == 2;
        self.watches[(!lits[0]).index()].push(Watch::new(cref, lits[1], binary));
        self.watches[(!lits[1]).index()].push(Watch::new(cref, lits[0], binary));
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        let lbd = if learnt { self.compute_lbd(&lits) } else { 0 };
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            tier: if learnt {
                tier_for_lbd(lbd)
            } else {
                Tier::Core
            },
            used: 2,
            deleted: false,
        });
        cref
    }

    /// Removes the clause's two watch entries. Must be called before a
    /// clause is deleted or its watched literals change, so propagation
    /// never sees stale references (binary watches cannot re-check).
    pub(crate) fn detach_clause(&mut self, cref: u32) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            (c.lits[0], c.lits[1])
        };
        for w in [w0, w1] {
            let list = &mut self.watches[(!w).index()];
            if let Some(pos) = list.iter().position(|watch| watch.cref() == cref) {
                list.swap_remove(pos);
            }
        }
    }

    /// Detaches and marks a clause deleted, logging the deletion.
    pub(crate) fn delete_clause(&mut self, cref: u32) {
        debug_assert!(!self.clauses[cref as usize].deleted);
        self.detach_clause(cref);
        let c = &mut self.clauses[cref as usize];
        c.deleted = true;
        if c.learnt {
            self.stats.learnt_clauses -= 1;
        }
        if self.proof.is_some() {
            let lits = self.clauses[cref as usize].lits.clone();
            self.log(|| ProofStep::Delete(lits));
        }
    }

    pub(crate) fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    /// The model value of a variable after a [`SolveResult::Sat`] outcome.
    /// `None` before the first successful solve.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied()
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        self.enqueue_at(lit, reason, self.decision_level());
    }

    /// Assigns a literal at an explicit level, which may lie below the
    /// current decision level (an "out-of-order" assignment, the heart of
    /// chronological backtracking: the asserting literal of a learnt
    /// clause is recorded at the level where its reason became unit).
    pub(crate) fn enqueue_at(&mut self, lit: Lit, reason: Option<u32>, level: u32) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        debug_assert!(level <= self.decision_level());
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.levels[v.index()] = level;
        // Root facts need no antecedent (analysis skips level 0), and a
        // `None` reason lets inprocessing delete or strengthen any clause
        // at the root without dangling reason references.
        self.reasons[v.index()] = if level == 0 { None } else { reason };
        self.trail.push(lit);
    }

    /// Backtracks to `level`. Chronology-aware: trail entries assigned at
    /// or below the target level (out-of-order assignments from
    /// chronological backtracking) keep their assignments and are
    /// re-appended in order; everything else is unassigned.
    pub(crate) fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        let mut kept = 0usize;
        for i in bound..self.trail.len() {
            let lit = self.trail[i];
            let v = lit.var();
            if self.levels[v.index()] <= level {
                self.trail[bound + kept] = lit;
                kept += 1;
            } else {
                self.phase[v.index()] = lit.is_positive();
                self.assigns[v.index()] = LBool::Undef;
                self.reasons[v.index()] = None;
                self.heap.push(v, &self.activity);
            }
        }
        self.trail.truncate(bound + kept);
        self.trail_lim.truncate(level as usize);
        // Everything below `bound` was propagated to fixpoint before the
        // level above it was opened. Survivors compacted into
        // `bound..bound+kept` (out-of-order assignments kept by
        // chronological backtracking) may still carry unpropagated
        // implications — in particular when a conflict cut propagation
        // short — so propagation must resume no later than `bound`.
        // Re-propagating an already-propagated literal is idempotent.
        self.qhead = self.qhead.min(bound);
    }

    pub(crate) fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                return Some(v);
            }
        }
        None
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals: the formula plus each
    /// assumption as a unit constraint for this call only.
    ///
    /// With a portfolio configured (see [`Solver::set_portfolio`]), the
    /// call races diversified worker clones and adjudicates
    /// deterministically; otherwise it runs the plain sequential search.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.cube_jobs > 0 {
            return self.solve_cube(assumptions);
        }
        if self.portfolio_workers > 0 {
            return self.solve_portfolio(assumptions);
        }
        self.solve_with_core(assumptions)
            .expect("sequential search cannot be interrupted")
    }

    /// RUP-probes an externally supplied clause (e.g. from a cross-design
    /// learnt-clause store) against *this* solver's database and imports
    /// it on success, following the same discipline as the portfolio's
    /// share-log imports: the clause is attached and `Learn`-logged only
    /// if assuming its negation propagates to a conflict locally, so the
    /// proof trace stays self-contained and a mistranslated clause is
    /// merely rejected, never unsound. Must be called between solves
    /// (decision level 0). Returns `true` if the clause was imported.
    pub fn import_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Flush any pending root propagation so the probe starts from a
        // fixpoint; a conflict here refutes the formula itself.
        if self.propagate().is_some() {
            self.ok = false;
            self.log(|| ProofStep::Learn(Vec::new()));
            return false;
        }
        self.stats.reuse_probed += 1;
        let imported = self.import_one(lits);
        if imported {
            self.stats.reuse_imported += 1;
        }
        imported
    }

    /// Visits every live learnt clause of length at most `max_len`, in
    /// database order. The feed for a cross-design clause store: short
    /// learnt clauses are the ones likely to transfer, and database order
    /// is deterministic, so the export is a pure function of the solver's
    /// state.
    pub fn for_each_learnt(&self, max_len: usize, mut f: impl FnMut(&[Lit])) {
        for c in &self.clauses {
            if c.learnt && !c.deleted && c.lits.len() <= max_len {
                f(&c.lits);
            }
        }
    }

    /// Solves under the given assumptions with a per-call conflict
    /// budget, always on the plain sequential search — racing portfolio
    /// workers have no deterministic budget semantics. Returns `None`
    /// when the budget is exhausted before an answer; learnt clauses
    /// from the aborted attempt are implied by the formula and stay in
    /// the database (and in the proof trace), so the caller may simply
    /// re-solve or fall back to a different query.
    pub fn solve_with_budget(
        &mut self,
        assumptions: &[Lit],
        conflict_budget: u64,
    ) -> Option<SolveResult> {
        self.conflict_limit = self.stats.conflicts.saturating_add(conflict_budget);
        let result = self.solve_with_core(assumptions);
        self.conflict_limit = u64::MAX;
        result
    }

    /// The sequential solve path. Returns `None` only when a portfolio
    /// stop flag interrupted the search (worker clones only) or when a
    /// `solve_with_budget` conflict budget ran out.
    pub(crate) fn solve_with_core(&mut self, assumptions: &[Lit]) -> Option<SolveResult> {
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        // Assumption variables are permanently frozen (they may recur in
        // later calls); restore any that elimination already removed.
        for a in assumptions {
            let v = a.var();
            if self.eliminated[v.index()] {
                self.restore_var(v);
            }
            self.frozen[v.index()] = true;
        }
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        self.best_trail = self.trail.len();
        let result = self.search(assumptions);
        self.backtrack(0);
        result
    }

    fn should_stop(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    fn search(&mut self, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_until_restart = luby(self.stats.restarts) * LUBY_UNIT;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                // Chronological backtracking can leave the conflict's
                // literals strictly below the current decision level;
                // drop to the conflict's own level before analysis so
                // the 1-UIP walk sees a standard picture.
                let conflict_level = self.clauses[conflict as usize]
                    .lits
                    .iter()
                    .map(|l| self.levels[l.var().index()])
                    .max()
                    .unwrap_or(0);
                if conflict_level == 0 {
                    self.ok = false;
                    self.log(|| ProofStep::Learn(Vec::new()));
                    return Some(SolveResult::Unsat);
                }
                if conflict_level < self.decision_level() {
                    self.backtrack(conflict_level);
                }
                let (mut learnt, backjump) = self.analyze(conflict);
                if self.proof.is_some() {
                    let lits = learnt.clone();
                    self.log(|| ProofStep::Learn(lits));
                }
                if learnt.len() == 1 {
                    // Unit learnt clause: assert at the root.
                    self.backtrack(0);
                    match self.lit_value(learnt[0]) {
                        LBool::False => {
                            self.ok = false;
                            self.log(|| ProofStep::Learn(Vec::new()));
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => self.enqueue(learnt[0], None),
                        LBool::True => {}
                    }
                } else {
                    // Deep backjumps throw away a long, expensively built
                    // propagation prefix only to rebuild most of it.
                    // Past the threshold, backtrack a single level
                    // instead and record the asserting literal at its
                    // real (backjump) level.
                    let current = self.decision_level();
                    let jump = if self.chrono && current - backjump > self.chrono_threshold {
                        self.stats.chrono_backtracks += 1;
                        current - 1
                    } else {
                        backjump
                    };
                    // Backjump may land below the assumption levels; the
                    // main loop re-asserts assumptions as
                    // pseudo-decisions, so this is safe and keeps the
                    // learning machinery uniform.
                    self.backtrack(jump);
                    // Watch the asserting literal and a literal from the
                    // backjump level so the watch invariant survives
                    // backtracking.
                    let max_pos = (1..learnt.len())
                        .max_by_key(|&i| self.levels[learnt[i].var().index()])
                        .expect("clause has at least two literals");
                    learnt.swap(1, max_pos);
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.share_export(cref);
                    debug_assert_eq!(self.lit_value(asserting), LBool::Undef);
                    self.enqueue_at(asserting, Some(cref), backjump);
                }
                self.var_inc /= VAR_DECAY;
                self.clause_inc /= CLAUSE_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.stats.learnt_clauses as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                if self.should_stop() || self.stats.conflicts >= self.conflict_limit {
                    return None;
                }
            } else {
                // No conflict: restart, assume, or decide.
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    if self.trail.len() > self.best_trail {
                        self.best_trail = self.trail.len();
                        for i in 0..self.trail.len() {
                            let lit = self.trail[i];
                            self.target_phase[lit.var().index()] = lit.is_positive();
                        }
                    }
                    self.backtrack(0);
                    // Flush survivor re-propagation before inprocessing
                    // touches the clause database; a root conflict here
                    // refutes the formula.
                    if self.propagate().is_some() {
                        self.ok = false;
                        self.log(|| ProofStep::Learn(Vec::new()));
                        return Some(SolveResult::Unsat);
                    }
                    conflicts_until_restart = luby(self.stats.restarts) * LUBY_UNIT;
                    self.maybe_rephase();
                    if self.inprocess_enabled && self.stats.conflicts >= self.next_inprocess {
                        self.inprocess();
                        self.next_inprocess = self.stats.conflicts
                            + (self.inprocess_interval << self.inprocessings_done());
                        if !self.ok {
                            self.log(|| ProofStep::Learn(Vec::new()));
                            return Some(SolveResult::Unsat);
                        }
                    }
                    self.share_import();
                    if !self.ok {
                        self.log(|| ProofStep::Learn(Vec::new()));
                        return Some(SolveResult::Unsat);
                    }
                    continue;
                }
                // Re-assert pending assumptions as pseudo-decisions (one
                // decision level per assumption, in order).
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied; open an empty level to keep
                            // the level↔assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return Some(SolveResult::Unsat),
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.extract_model();
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.stats.decisions.is_multiple_of(STOP_POLL_DECISIONS)
                            && self.should_stop()
                        {
                            return None;
                        }
                        let lit = v.lit(self.phase[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Number of inprocessing passes run so far, bounded for use as a
    /// shift amount in the doubling schedule.
    fn inprocessings_done(&self) -> u32 {
        self.inprocess_passes.min(16)
    }

    /// Periodic phase reset: cycle between the target phases (deepest
    /// trail seen) and the saved phases. Cheap — runs only at restart
    /// boundaries, a handful of times per solve.
    fn maybe_rephase(&mut self) {
        if self.stats.conflicts < self.next_rephase {
            return;
        }
        self.next_rephase = self.stats.conflicts + REPHASE_INTERVAL;
        self.stats.rephases += 1;
        match self.rephase_kind {
            0 | 2 => self.phase.copy_from_slice(&self.target_phase),
            1 => {} // keep saved phases
            _ => {
                for p in &mut self.phase {
                    *p = false; // original phases
                }
            }
        }
        self.rephase_kind = (self.rephase_kind + 1) % 4;
    }

    fn extract_model(&mut self) {
        self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
        self.reconstruct_model();
        #[cfg(debug_assertions)]
        self.debug_check_model();
    }

    /// Debug-build tripwire: a [`SolveResult::Sat`] model must satisfy
    /// every live clause in the database. Runs at the moment the model is
    /// extracted, so an unsound answer is caught even when certification
    /// is off.
    #[cfg(debug_assertions)]
    fn debug_check_model(&self) {
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.deleted {
                continue;
            }
            let satisfied = clause
                .lits
                .iter()
                .any(|&l| self.model[l.var().index()] == l.is_positive());
            assert!(
                satisfied,
                "SAT model falsifies clause #{i} {:?} (assigns {:?} at levels {:?})",
                clause.lits,
                clause
                    .lits
                    .iter()
                    .map(|l| self.assigns[l.var().index()])
                    .collect::<Vec<_>>(),
                clause
                    .lits
                    .iter()
                    .map(|l| self.levels[l.var().index()])
                    .collect::<Vec<_>>(),
            );
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, … (0-indexed).
pub(crate) fn luby(x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        // a & (a->b) & (b->c) & (c->d)  =>  all true
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[vars[0].positive()]);
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][h] = pigeon i in hole h.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        // Every pigeon somewhere.
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        // No two pigeons share a hole.
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_with(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_with(&[a.negative(), b.negative()]),
            SolveResult::Unsat
        );
        // The solver is still usable and SAT without those assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn budget_zero_still_solves_conflict_free_formulas() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        // No conflicts needed, so a zero budget never trips.
        assert_eq!(s.solve_with_budget(&[], 0), Some(SolveResult::Sat));
    }

    #[test]
    fn budget_exhaustion_returns_none_and_solver_stays_usable() {
        // 5 pigeons, 4 holes: small enough to stay fast, hard enough
        // that one conflict cannot refute it.
        let mut s = Solver::new();
        let mut p = [[Var(0); 4]; 5];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve_with_budget(&[], 1), None);
        // The limit is per-call: a follow-up unbudgeted solve finishes,
        // and the aborted attempt's learnt clauses were implied.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_with(&[a.positive(), a.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.add_clause(&[b.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn proof_logging_off_by_default() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert!(s.proof().is_none());
        assert_eq!(s.proof_len(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.proof().is_none());
    }

    #[test]
    fn proof_records_axioms_verbatim() {
        let mut s = Solver::new();
        s.enable_proof_logging();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[b.negative(), b.positive(), a.negative()]); // tautology
        let proof = s.proof().expect("enabled");
        assert_eq!(proof.len(), 2);
        // Axioms are logged before simplification — tautologies included.
        assert_eq!(
            proof.steps()[1],
            ProofStep::Axiom(vec![b.negative(), b.positive(), a.negative()])
        );
        assert_eq!(proof.axioms(2).count(), 2);
    }

    #[test]
    fn unsat_trace_ends_with_empty_learn() {
        // Pigeonhole 3-into-2 forces real conflict analysis; with logging
        // on, the trace must contain Learn steps and terminate in the
        // empty clause.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("enabled");
        let learns: Vec<&ProofStep> = proof
            .steps()
            .iter()
            .filter(|st| matches!(st, ProofStep::Learn(_)))
            .collect();
        assert!(!learns.is_empty(), "conflict analysis must log learns");
        assert_eq!(
            proof.steps().last(),
            Some(&ProofStep::Learn(Vec::new())),
            "UNSAT trace must end with the empty clause"
        );
    }

    #[test]
    fn proof_len_snapshots_are_stable_across_later_activity() {
        // The activation-literal protocol takes a trace snapshot right
        // after each solve; later retirement units and new obligations
        // must extend the trace, never disturb the prefix.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let g = s.new_var();
        s.add_clause(&[g.negative(), x.positive()]);
        s.add_clause(&[g.negative(), x.negative()]);
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        let prefix: Vec<ProofStep> = s.proof().expect("enabled").steps()[..snapshot].to_vec();
        s.add_clause(&[g.negative()]); // retire
        assert_eq!(s.solve(), SolveResult::Sat);
        let proof = s.proof().expect("enabled");
        assert!(proof.len() > snapshot);
        assert_eq!(&proof.steps()[..snapshot], prefix.as_slice());
    }

    /// Brute-force evaluation of a CNF for cross-checking.
    fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
        for bits in 0u64..(1 << num_vars) {
            let assignment = |v: usize| -> bool { (bits >> v) & 1 == 1 };
            if cnf
                .iter()
                .all(|clause| clause.iter().any(|&(v, pos)| assignment(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_cnfs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xFA57);
        for _ in 0..300 {
            let num_vars = rng.gen_range(1..=8usize);
            let num_clauses = rng.gen_range(1..=20usize);
            let cnf: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1..=3usize);
                    (0..len)
                        .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            let expected = brute_force_sat(num_vars, &cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "cnf: {cnf:?}");
            if got {
                // Verify the model actually satisfies the CNF.
                for clause in &cnf {
                    assert!(clause
                        .iter()
                        .any(|&(v, pos)| { s.value(vars[v]) == Some(pos) }));
                }
            }
        }
    }
}
