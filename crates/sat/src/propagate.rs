//! Unit propagation over two watched literals.
//!
//! Binary clauses never touch clause memory: their watch entry carries
//! the other literal as the blocker, so propagating them is a single
//! assignment check. This requires eager watch removal on deletion
//! (see `Solver::detach_clause`) — there is no lazy `deleted` re-check
//! on the binary path.

use crate::solver::{Solver, Watch};
use crate::types::LBool;

impl Solver {
    /// Propagates all enqueued literals. Returns the conflicting clause
    /// reference, or `None` if propagation completes without conflict.
    pub(crate) fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let p_level = self.levels[p.var().index()];

            // Take the watch list to satisfy the borrow checker; watches
            // that stay put are written back compacted.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = 0usize;
            let mut i = 0usize;
            let mut conflict = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Common case: the blocker already satisfies the clause.
                let blocker_val = self.lit_value(w.blocker);
                if blocker_val == LBool::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                if w.is_binary() {
                    // The blocker IS the other literal.
                    ws[kept] = w;
                    kept += 1;
                    if blocker_val == LBool::False {
                        conflict = Some(w.cref());
                        break 'watches;
                    }
                    // The implied literal lands at p's own level — with
                    // chronological backtracking that may lie below the
                    // current decision level.
                    self.enqueue_at(w.blocker, Some(w.cref()), p_level);
                    continue;
                }

                let cref = w.cref() as usize;
                // Lazy deletion check: a clause deleted while its watch
                // sits in this taken list slips past eager detaching.
                if self.clauses[cref].deleted {
                    continue;
                }
                // Make sure the false literal is at position 1.
                let false_lit = !p;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[kept] = w.with_blocker(first);
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let lit = self.clauses[cref].lits[k];
                    if self.lit_value(lit) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lit).index()].push(Watch::new(w.cref(), first, false));
                        continue 'watches;
                    }
                }
                // No new watch: the clause is unit or conflicting.
                ws[kept] = w.with_blocker(first);
                kept += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref());
                    break 'watches;
                }
                // Unit: the implied literal lands at the level where the
                // clause became unit (the max level among its false
                // literals), not necessarily the current decision level.
                let level = self.implication_level(cref);
                self.enqueue_at(first, Some(w.cref()), level);
            }
            if conflict.is_some() {
                // Keep the unvisited tail of the watch list. The queue is
                // NOT fast-forwarded: entries enqueued below the current
                // level (chronological backtracking) may survive the
                // coming backtrack, and `Solver::backtrack` rewinds
                // `qhead` so every survivor is (re-)propagated.
                while i < ws.len() {
                    ws[kept] = ws[i];
                    kept += 1;
                    i += 1;
                }
                ws.truncate(kept);
                self.watches[p.index()] = ws;
                return conflict;
            }
            ws.truncate(kept);
            self.watches[p.index()] = ws;
        }
        None
    }

    /// The level at which a clause with exactly one non-false literal
    /// (at position 0) implies that literal: the maximum level among its
    /// false literals.
    fn implication_level(&self, cref: usize) -> u32 {
        self.clauses[cref]
            .lits
            .iter()
            .skip(1)
            .map(|l| self.levels[l.var().index()])
            .max()
            .unwrap_or(0)
    }
}
