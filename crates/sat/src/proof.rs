//! DRUP-style proof traces.
//!
//! When proof logging is enabled (see
//! [`Solver::enable_proof_logging`](crate::Solver::enable_proof_logging)),
//! the solver records every clause the caller asserts
//! ([`ProofStep::Axiom`]), every clause it derives by conflict analysis
//! ([`ProofStep::Learn`]), and every learnt clause it discards
//! ([`ProofStep::Delete`]) — in order. That stream is exactly a DRUP
//! (Delete Reverse Unit Propagation) proof interleaved with the original
//! formula, which is what an *incremental* solver needs: clauses keep
//! arriving between `solve` calls, so a certificate for the k-th call is a
//! prefix of the trace, not a fixed CNF plus a proof.
//!
//! The trace is deliberately dumb data — plain literal vectors with no
//! references into the solver — so an independent checker (the
//! `fastpath-cert` crate) can replay it while sharing *none* of the
//! solver's data structures.

use crate::types::Lit;

/// One step of a proof trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An original clause asserted by the caller, recorded verbatim
    /// (before any solver-side simplification). The concatenation of all
    /// `Axiom` steps is the exact CNF the solver holds.
    Axiom(Vec<Lit>),
    /// A clause derived by conflict analysis. Every `Learn` clause has the
    /// RUP property with respect to the clauses preceding it in the trace
    /// (minus prior deletions): assuming its negation and unit-propagating
    /// yields a conflict. An empty `Learn` clause records that the formula
    /// itself became unsatisfiable.
    Learn(Vec<Lit>),
    /// A clause removed from the database: a learnt clause dropped by
    /// tiered reduction, or an original clause retired by inprocessing
    /// (satisfied at the root, subsumed, or replaced by a strengthened
    /// RUP version that was `Learn`-logged first). Clauses detached by
    /// variable elimination are the one exception — they are *not*
    /// `Delete`-logged, so the checker's axiom stream stays authoritative
    /// (RUP is monotone in the clause database; see the
    /// `inprocess` module docs).
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The literals of the step's clause.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Axiom(l) | ProofStep::Learn(l) | ProofStep::Delete(l) => l,
        }
    }
}

/// Incrementally rendered DRUP text for the trace: `Learn` steps become
/// clause lines, `Delete` steps become `d` lines, `Axiom` steps render to
/// nothing (they live in the companion CNF). Kept in step lockstep so a
/// certificate for any trace prefix is a byte slice of the buffer instead
/// of an O(prefix) re-render per check.
#[derive(Clone, Debug, Default)]
struct DrupText {
    buf: String,
    /// `ends[i]` = buffer length right after step `i` rendered.
    ends: Vec<usize>,
    /// Step index and buffer end of the first empty `Learn`, if any:
    /// checkers stop at the first empty clause, so rendering truncates
    /// there too.
    empty_learn: Option<(usize, usize)>,
}

impl DrupText {
    fn append(&mut self, step: &ProofStep) -> usize {
        let before = self.buf.len();
        match step {
            ProofStep::Axiom(_) => {}
            ProofStep::Learn(lits) => {
                write_drup_clause(&mut self.buf, lits);
                if lits.is_empty() && self.empty_learn.is_none() {
                    self.empty_learn = Some((self.ends.len(), self.buf.len()));
                }
            }
            ProofStep::Delete(lits) => {
                self.buf.push_str("d ");
                write_drup_clause(&mut self.buf, lits);
            }
        }
        self.ends.push(self.buf.len());
        self.buf.len() - before
    }
}

fn write_drup_clause(out: &mut String, lits: &[Lit]) {
    use std::fmt::Write as _;
    for &lit in lits {
        let n = lit.var().index() as i64 + 1;
        let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
    }
    out.push_str("0\n");
}

/// An append-only proof trace.
///
/// Positions into the trace are stable: [`Proof::len`] taken right after a
/// `solve` call delimits the certificate for that call even while later
/// calls keep appending.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
    /// Buffered DRUP text, maintained per push when enabled.
    text: Option<DrupText>,
}

impl Proof {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Proof::default()
    }

    /// Turns on the buffered DRUP text renderer: every subsequent step is
    /// rendered once into an in-memory buffer as it is pushed, and
    /// [`Proof::render_drup`] serves any prefix as a byte slice. Steps
    /// already recorded are backfilled in one pass. Returns the bytes
    /// rendered by the backfill; later pushes report their own byte
    /// deltas through the return value of `push`.
    pub fn enable_text(&mut self) -> usize {
        if self.text.is_some() {
            return 0;
        }
        let mut text = DrupText::default();
        let mut bytes = 0usize;
        for step in &self.steps {
            bytes += text.append(step);
        }
        self.text = Some(text);
        bytes
    }

    /// `true` if the buffered DRUP renderer is on.
    pub fn text_enabled(&self) -> bool {
        self.text.is_some()
    }

    /// Renders the first `len` steps as a textual DRUP proof of the
    /// claim "`assumptions` are jointly inconsistent with the axioms":
    /// the buffered prefix followed by the negated-assumption clause and
    /// the empty clause (or truncated at an in-prefix empty `Learn` —
    /// checkers stop at the first empty clause). Byte-identical to
    /// `fastpath-cert`'s `proof_to_drup` on the same prefix.
    ///
    /// Returns `None` when the renderer is disabled (the caller falls
    /// back to an O(prefix) re-render).
    pub fn render_drup(&self, len: usize, assumptions: &[Lit]) -> Option<String> {
        let text = self.text.as_ref()?;
        debug_assert!(len <= text.ends.len());
        if let Some((step, end)) = text.empty_learn {
            if step < len {
                return Some(text.buf[..end].to_string());
            }
        }
        let end = if len == 0 { 0 } else { text.ends[len - 1] };
        let mut out = text.buf[..end].to_string();
        if !assumptions.is_empty() {
            let negated: Vec<Lit> = assumptions.iter().map(|&a| !a).collect();
            write_drup_clause(&mut out, &negated);
        }
        out.push_str("0\n");
        Some(out)
    }

    /// All steps recorded so far.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The number of steps recorded so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The original-formula clauses (the `Axiom` steps) within the first
    /// `len` steps.
    pub fn axioms(&self, len: usize) -> impl Iterator<Item = &[Lit]> {
        self.steps[..len].iter().filter_map(|s| match s {
            ProofStep::Axiom(lits) => Some(lits.as_slice()),
            _ => None,
        })
    }

    /// Appends a step, returning the bytes the buffered DRUP renderer
    /// wrote for it (0 when the renderer is off).
    pub(crate) fn push(&mut self, step: ProofStep) -> usize {
        let bytes = match &mut self.text {
            Some(text) => text.append(&step),
            None => 0,
        };
        self.steps.push(step);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    #[test]
    fn axioms_filters_and_respects_prefix() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let mut p = Proof::new();
        p.push(ProofStep::Axiom(vec![a, b]));
        p.push(ProofStep::Learn(vec![a]));
        p.push(ProofStep::Axiom(vec![b]));
        assert_eq!(p.len(), 3);
        assert_eq!(p.axioms(3).count(), 2);
        assert_eq!(p.axioms(2).count(), 1);
        assert_eq!(p.steps()[1].lits(), &[a]);
    }

    #[test]
    fn buffered_text_serves_prefixes_and_counts_bytes() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let mut p = Proof::new();
        assert!(p.render_drup(0, &[]).is_none(), "disabled until enabled");
        p.push(ProofStep::Axiom(vec![a, b]));
        let backfill = p.enable_text();
        assert_eq!(backfill, 0, "axioms render to nothing");
        let learn_bytes = p.push(ProofStep::Learn(vec![b]));
        assert_eq!(learn_bytes, "2 0\n".len());
        p.push(ProofStep::Delete(vec![a, b]));
        // Byte-identical to the cert crate's proof_to_drup on the same
        // prefix + assumptions.
        assert_eq!(p.render_drup(3, &[!b]).unwrap(), "2 0\nd 1 2 0\n2 0\n0\n");
        assert_eq!(p.render_drup(2, &[]).unwrap(), "2 0\n0\n");
        assert_eq!(p.render_drup(0, &[]).unwrap(), "0\n");
        // An in-prefix empty learn truncates the rendering there.
        p.push(ProofStep::Learn(Vec::new()));
        p.push(ProofStep::Learn(vec![a]));
        assert_eq!(p.render_drup(5, &[!b]).unwrap(), "2 0\nd 1 2 0\n0\n");
        // A prefix that stops before the empty learn is unaffected.
        assert_eq!(p.render_drup(3, &[]).unwrap(), "2 0\nd 1 2 0\n0\n");
        // Late enabling backfills in one pass.
        let mut q = Proof::new();
        q.push(ProofStep::Axiom(vec![a]));
        q.push(ProofStep::Learn(vec![a]));
        assert_eq!(q.enable_text(), "1 0\n".len());
        assert_eq!(q.render_drup(2, &[]).unwrap(), "1 0\n0\n");
    }
}
