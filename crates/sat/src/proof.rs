//! DRUP-style proof traces.
//!
//! When proof logging is enabled (see
//! [`Solver::enable_proof_logging`](crate::Solver::enable_proof_logging)),
//! the solver records every clause the caller asserts
//! ([`ProofStep::Axiom`]), every clause it derives by conflict analysis
//! ([`ProofStep::Learn`]), and every learnt clause it discards
//! ([`ProofStep::Delete`]) — in order. That stream is exactly a DRUP
//! (Delete Reverse Unit Propagation) proof interleaved with the original
//! formula, which is what an *incremental* solver needs: clauses keep
//! arriving between `solve` calls, so a certificate for the k-th call is a
//! prefix of the trace, not a fixed CNF plus a proof.
//!
//! The trace is deliberately dumb data — plain literal vectors with no
//! references into the solver — so an independent checker (the
//! `fastpath-cert` crate) can replay it while sharing *none* of the
//! solver's data structures.

use crate::types::Lit;

/// One step of a proof trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An original clause asserted by the caller, recorded verbatim
    /// (before any solver-side simplification). The concatenation of all
    /// `Axiom` steps is the exact CNF the solver holds.
    Axiom(Vec<Lit>),
    /// A clause derived by conflict analysis. Every `Learn` clause has the
    /// RUP property with respect to the clauses preceding it in the trace
    /// (minus prior deletions): assuming its negation and unit-propagating
    /// yields a conflict. An empty `Learn` clause records that the formula
    /// itself became unsatisfiable.
    Learn(Vec<Lit>),
    /// A clause removed from the database: a learnt clause dropped by
    /// tiered reduction, or an original clause retired by inprocessing
    /// (satisfied at the root, subsumed, or replaced by a strengthened
    /// RUP version that was `Learn`-logged first). Clauses detached by
    /// variable elimination are the one exception — they are *not*
    /// `Delete`-logged, so the checker's axiom stream stays authoritative
    /// (RUP is monotone in the clause database; see the
    /// `inprocess` module docs).
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The literals of the step's clause.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Axiom(l) | ProofStep::Learn(l) | ProofStep::Delete(l) => l,
        }
    }
}

/// An append-only proof trace.
///
/// Positions into the trace are stable: [`Proof::len`] taken right after a
/// `solve` call delimits the certificate for that call even while later
/// calls keep appending.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Proof::default()
    }

    /// All steps recorded so far.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The number of steps recorded so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The original-formula clauses (the `Axiom` steps) within the first
    /// `len` steps.
    pub fn axioms(&self, len: usize) -> impl Iterator<Item = &[Lit]> {
        self.steps[..len].iter().filter_map(|s| match s {
            ProofStep::Axiom(lits) => Some(lits.as_slice()),
            _ => None,
        })
    }

    pub(crate) fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    #[test]
    fn axioms_filters_and_respects_prefix() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let mut p = Proof::new();
        p.push(ProofStep::Axiom(vec![a, b]));
        p.push(ProofStep::Learn(vec![a]));
        p.push(ProofStep::Axiom(vec![b]));
        assert_eq!(p.len(), 3);
        assert_eq!(p.axioms(3).count(), 2);
        assert_eq!(p.axioms(2).count(), 1);
        assert_eq!(p.steps()[1].lits(), &[a]);
    }
}
