//! A proof-sound parallel portfolio.
//!
//! [`Solver::solve_with`] with a portfolio width `N` races `N`
//! diversified clones of the persistent solver on one check. Low-LBD
//! learnt clauses are shared through single-producer append-only logs
//! ([`ShareLog`]) read lock-free by the other workers; every import is
//! re-verified by a local RUP probe before it is attached and logged, so
//! each worker's proof trace stays self-contained.
//!
//! # Determinism rules
//!
//! The persistent solver's evolution must not depend on the portfolio
//! width or on thread timing, because downstream verdicts, methods, and
//! inspection counts are derived from the models it produces:
//!
//! * Worker 0 is the **canonical** worker: configured exactly like the
//!   width-1 lone clone and it never imports (exports only), so its
//!   trajectory is a pure function of the persistent state.
//! * **SAT** answers always come from worker 0 — the race waits for it —
//!   and its entire clone state (clause database, heuristics, proof) is
//!   adopted wholesale.
//! * **UNSAT** answers may come from any worker (first one wins the
//!   wall-clock); the persistent solver adopts *nothing*. Only the
//!   winner's `Learn` steps are spliced into the persistent proof trace
//!   (deletions are stripped — they might name clauses the persistent
//!   database still uses). The spliced learns are RUP where they land:
//!   each was RUP against the winner's database, which the checker's
//!   database includes, and RUP is monotone in the clause set.
//!
//! Width 1 runs the same adjudication on a lone speculative clone (no
//! threads), so the persistent state is a function of the *SAT
//! trajectory only* at every width: a width-`N` race adopts state only
//! from worker 0 finishing SAT, which is byte-for-byte the width-1
//! clone's search from the same state. Verdicts, models, and inspection
//! counts are therefore identical for every width and every `--jobs`
//! value; proof traces and technique counters may differ in which
//! (valid) learns they carry, depending on which worker wins an UNSAT
//! race.

use crate::proof::ProofStep;
use crate::solver::{Solver, SHARE_LBD_LIMIT};
use crate::types::{LBool, Lit, SolveResult};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Longest clause a worker will export.
const SHARE_MAX_LEN: usize = 32;
/// Fixed capacity of one worker's outgoing log.
const SHARE_CAPACITY: usize = 1 << 14;

/// A single-producer, multi-consumer append-only clause log. The
/// producer reserves a slot with a fetch-add and publishes the clause
/// through a `OnceLock`; readers only ever observe fully written slots.
#[derive(Debug)]
pub(crate) struct ShareLog {
    slots: Vec<OnceLock<Vec<Lit>>>,
    len: AtomicUsize,
}

impl ShareLog {
    pub(crate) fn new() -> Self {
        let mut slots = Vec::with_capacity(SHARE_CAPACITY);
        slots.resize_with(SHARE_CAPACITY, OnceLock::new);
        ShareLog {
            slots,
            len: AtomicUsize::new(0),
        }
    }

    /// Appends a clause; silently drops it when the log is full.
    pub(crate) fn push(&self, lits: Vec<Lit>) {
        let slot = self.len.fetch_add(1, Ordering::Relaxed);
        if let Some(cell) = self.slots.get(slot) {
            let set = cell.set(lits);
            debug_assert!(set.is_ok(), "slot {slot} double-written");
        }
    }

    /// The clause in `slot`, if that slot has been fully published.
    fn get(&self, slot: usize) -> Option<&Vec<Lit>> {
        self.slots.get(slot).and_then(OnceLock::get)
    }
}

/// A reader's position in another worker's [`ShareLog`].
#[derive(Clone, Debug)]
pub(crate) struct ShareCursor {
    log: Arc<ShareLog>,
    pos: usize,
}

impl ShareCursor {
    pub(crate) fn new(log: Arc<ShareLog>) -> Self {
        ShareCursor { log, pos: 0 }
    }

    /// The next published clause, or `None` when the reader caught up
    /// (or hit a reserved-but-unwritten slot — it retries next round).
    fn next(&mut self) -> Option<Vec<Lit>> {
        let lits = self.log.get(self.pos)?.clone();
        self.pos += 1;
        Some(lits)
    }
}

impl Solver {
    /// Exports a freshly learnt clause to portfolio peers when it is
    /// glue-worthy (low LBD, bounded length).
    pub(crate) fn share_export(&mut self, cref: u32) {
        let Some(out) = &self.share_out else { return };
        let c = &self.clauses[cref as usize];
        if c.lbd > SHARE_LBD_LIMIT || c.lits.len() > SHARE_MAX_LEN {
            return;
        }
        out.push(c.lits.clone());
        self.stats.shared_exported += 1;
    }

    /// Imports pending peer clauses at a restart boundary (root level).
    /// Each import is RUP-probed against *this* worker's database first;
    /// clauses that fail the probe (possible: the exporter's database is
    /// not ours) or mention locally eliminated variables are discarded.
    /// Accepted clauses are logged as `Learn` steps, keeping the trace
    /// self-contained.
    pub(crate) fn share_import(&mut self) {
        if self.share_in.is_empty() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut cursors = std::mem::take(&mut self.share_in);
        for cursor in &mut cursors {
            while let Some(lits) = cursor.next() {
                if self.import_one(&lits) {
                    self.stats.shared_imported += 1;
                }
                if !self.ok {
                    break;
                }
            }
        }
        self.share_in = cursors;
    }

    /// The shared probe-then-attach discipline behind both portfolio
    /// share-log imports and cross-design store imports
    /// ([`Solver::import_clause`]). Returns `true` when the clause was
    /// accepted; the caller attributes the import to its own counter.
    pub(crate) fn import_one(&mut self, lits: &[Lit]) -> bool {
        if lits.iter().any(|l| self.eliminated[l.var().index()]) {
            return false;
        }
        // Root-satisfied imports carry no information; root-false
        // literals are stripped by the probe itself.
        let mut filtered: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::True => return false,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        // RUP probe: assume the negation, propagate, demand a conflict.
        // A conflict partway through (or a probe-derived true literal,
        // which the checker's all-at-once assumption turns into a
        // conflict) already proves the clause.
        self.trail_lim.push(self.trail.len());
        let mut conflict = false;
        for &l in &filtered {
            match self.lit_value(l) {
                LBool::True => {
                    conflict = true;
                    break;
                }
                LBool::False => continue,
                LBool::Undef => {
                    self.enqueue(!l, None);
                    if self.propagate().is_some() {
                        conflict = true;
                        break;
                    }
                }
            }
        }
        self.backtrack(0);
        if !conflict {
            return false;
        }
        if self.proof.is_some() {
            let copy = filtered.clone();
            self.log(|| ProofStep::Learn(copy));
        }
        match filtered.len() {
            0 => self.ok = false,
            1 => match self.lit_value(filtered[0]) {
                LBool::False => self.ok = false,
                LBool::True => {}
                LBool::Undef => {
                    self.enqueue(filtered[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
            _ => {
                let cref = self.attach_clause(filtered, true);
                let c = &mut self.clauses[cref as usize];
                // The local LBD is 0 at the root; carry the exporter's
                // glue bound instead so reduction treats it fairly.
                c.lbd = SHARE_LBD_LIMIT;
            }
        }
        true
    }

    /// Diversifies a worker clone. Worker 0 must stay byte-for-byte the
    /// sequential configuration (see the module docs).
    fn diversify(&mut self, worker: usize) {
        match worker % 4 {
            0 => {}
            1 => {
                self.chrono = false;
                for p in &mut self.phase {
                    *p = true;
                }
            }
            2 => {
                self.chrono_threshold = 25;
                self.rephase_kind = 2;
            }
            _ => {
                self.inprocess_enabled = false;
                for p in &mut self.phase {
                    *p = !*p;
                }
            }
        }
    }

    /// Races `portfolio_workers` diversified clones on one check and
    /// adjudicates per the module-level determinism rules.
    pub(crate) fn solve_portfolio(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Freeze/restore assumption variables on the persistent solver
        // before cloning, so the frozen contract survives UNSAT races
        // (which adopt nothing).
        for a in assumptions {
            let v = a.var();
            if self.eliminated[v.index()] {
                self.restore_var(v);
            }
            self.frozen[v.index()] = true;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        let n = self.portfolio_workers.max(1);
        let base_stats = self.stats;
        let base_proof_len = self.proof_len();
        if n == 1 {
            // Lone speculative clone: the same adjudication semantics as
            // the race (persistent state advances only through SAT
            // solves) without threads or share logs. Width 1 is the
            // canonical trajectory every wider race must reproduce.
            let mut clone = self.clone();
            clone.portfolio_workers = 0;
            let res = clone
                .solve_with_core(assumptions)
                .expect("lone worker is never stopped");
            match res {
                SolveResult::Sat => self.adopt_canonical(clone),
                SolveResult::Unsat => self.adopt_unsat(&clone, &base_stats, base_proof_len),
            }
            return res;
        }

        let logs: Vec<Arc<ShareLog>> = (0..n).map(|_| Arc::new(ShareLog::new())).collect();
        let stops: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();

        let mut workers: Vec<Solver> = Vec::with_capacity(n);
        for w in 0..n {
            let mut clone = self.clone();
            clone.portfolio_workers = 0;
            clone.stop = Some(stops[w].clone());
            clone.share_out = Some(logs[w].clone());
            clone.share_in = if w == 0 {
                Vec::new() // canonical: exports only
            } else {
                logs.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != w)
                    .map(|(_, log)| ShareCursor::new(log.clone()))
                    .collect()
            };
            clone.diversify(w);
            workers.push(clone);
        }

        let stops_ref = &stops;
        let results: Vec<(Solver, Option<SolveResult>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(w, mut solver)| {
                    scope.spawn(move || {
                        let res = solver.solve_with_core(assumptions);
                        match res {
                            Some(SolveResult::Unsat) => {
                                for stop in stops_ref.iter() {
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                            Some(SolveResult::Sat) => {
                                // The answer must come from worker 0; stop
                                // everyone else.
                                for (i, stop) in stops_ref.iter().enumerate() {
                                    if i != 0 {
                                        stop.store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                            None => {}
                        }
                        (w, solver, res)
                    })
                })
                .collect();
            let mut out: Vec<Option<(Solver, Option<SolveResult>)>> =
                (0..n).map(|_| None).collect();
            for handle in handles {
                let (w, solver, res) = handle.join().expect("portfolio worker panicked");
                out[w] = Some((solver, res));
            }
            out.into_iter()
                .map(|r| r.expect("all workers joined"))
                .collect()
        });

        if let Some((winner, _)) = results
            .iter()
            .find(|(_, res)| *res == Some(SolveResult::Unsat))
        {
            self.adopt_unsat(winner, &base_stats, base_proof_len);
            return SolveResult::Unsat;
        }
        // SAT (or a bugged universal stop): adopt the canonical worker.
        let (canonical, res) = results
            .into_iter()
            .next()
            .expect("portfolio has at least one worker");
        let res = res.expect("canonical worker is only stopped by an UNSAT winner");
        self.adopt_canonical(canonical);
        res
    }

    /// Adopts a finished canonical (worker 0 / lone-clone) solver
    /// wholesale: clause database, heuristics, model, stats, and proof,
    /// exactly as if the solve had run in place.
    pub(crate) fn adopt_canonical(&mut self, canonical: Solver) {
        let keep_workers = self.portfolio_workers;
        let keep_cube = self.cube_jobs;
        let keep_trigger = self.cube_trigger;
        *self = canonical;
        self.portfolio_workers = keep_workers;
        self.cube_jobs = keep_cube;
        self.cube_trigger = keep_trigger;
        self.stop = None;
        self.share_out = None;
        self.share_in = Vec::new();
    }

    /// UNSAT adjudication: adopt *nothing* of the winner's state; splice
    /// its `Learn` steps (deletions stripped — they might name clauses
    /// the persistent database still uses) so the persistent trace
    /// refutes these assumptions.
    pub(crate) fn adopt_unsat(
        &mut self,
        winner: &Solver,
        base_stats: &crate::stats::SolverStats,
        base_proof_len: usize,
    ) {
        self.stats += winner.stats.delta_since(base_stats);
        let mut bytes = 0usize;
        if let (Some(proof), Some(wproof)) = (&mut self.proof, winner.proof()) {
            for step in &wproof.steps()[base_proof_len..] {
                if let ProofStep::Learn(lits) = step {
                    bytes += proof.push(ProofStep::Learn(lits.clone()));
                }
            }
        }
        self.stats.proof_bytes += bytes as u64;
        if !winner.ok {
            // The winner derived the empty clause outright: the formula
            // itself (not just the assumptions) is unsatisfiable, and
            // the persistent solver must agree forever after.
            self.ok = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::solver::Solver;
    use crate::types::{Lit, SolveResult, Var};

    fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
        for bits in 0u64..(1 << num_vars) {
            let assignment = |v: usize| -> bool { (bits >> v) & 1 == 1 };
            if cnf
                .iter()
                .all(|clause| clause.iter().any(|&(v, pos)| assignment(v) == pos))
            {
                return true;
            }
        }
        false
    }

    fn random_cnf(rng: &mut impl rand::Rng, num_vars: usize) -> Vec<Vec<(usize, bool)>> {
        let num_clauses = rng.gen_range(1..=25usize);
        (0..num_clauses)
            .map(|_| {
                let len = rng.gen_range(1..=3usize);
                (0..len)
                    .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn portfolio_agrees_with_brute_force_and_stays_incremental() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x90F7);
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=7usize);
            let cnf = random_cnf(&mut rng, num_vars);
            let mut s = Solver::new();
            s.set_portfolio(3);
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            let expected = brute_force_sat(num_vars, &cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}: cnf {cnf:?}");
            if got {
                for clause in &cnf {
                    assert!(
                        clause.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos)),
                        "round {round}: model falsifies {clause:?}"
                    );
                }
                // The race must leave the solver usable: re-solving under a
                // pinning assumption still works.
                let pin = vars[0].lit(s.value(vars[0]).unwrap());
                assert_eq!(s.solve_with(&[pin]), SolveResult::Sat);
            }
        }
    }

    #[test]
    fn portfolio_models_match_the_sequential_solver() {
        // Worker 0 is canonical and adopted on SAT, so the model must be
        // byte-identical to a sequential run from the same state.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x51D3);
        for _ in 0..60 {
            let num_vars = rng.gen_range(2..=7usize);
            let cnf = random_cnf(&mut rng, num_vars);
            let build = |portfolio: usize| {
                let mut s = Solver::new();
                s.set_portfolio(portfolio);
                let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
                for clause in &cnf {
                    let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                    s.add_clause(&lits);
                }
                let res = s.solve();
                (res, s.model().to_vec())
            };
            let (seq_res, seq_model) = build(0);
            for n in [1usize, 2, 4] {
                let (par_res, par_model) = build(n);
                assert_eq!(par_res, seq_res, "verdict must not depend on width");
                if seq_res == SolveResult::Sat {
                    assert_eq!(par_model, seq_model, "SAT model is canonical (worker 0)");
                }
            }
        }
    }

    #[test]
    fn portfolio_unsat_trace_still_certifiable_shape() {
        use crate::proof::ProofStep;
        // Pigeonhole 4-into-3 under a portfolio: the spliced trace must
        // contain only Learn steps after the axioms and end refutable.
        let mut s = Solver::new();
        s.enable_proof_logging();
        s.set_portfolio(3);
        let p: Vec<Vec<Var>> = (0..4)
            .map(|_| (0..3).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        let axioms = s.proof_len();
        assert_eq!(s.solve(), SolveResult::Unsat);
        let steps = s.proof().expect("enabled").steps();
        assert!(steps.len() > axioms, "the race must splice learns");
        assert!(
            steps[axioms..]
                .iter()
                .all(|st| matches!(st, ProofStep::Learn(_))),
            "spliced steps are Learn-only (deletions stripped)"
        );
        assert!(!s.ok || steps.last() == Some(&ProofStep::Learn(Vec::new())));
        // The persistent solver remains usable after an UNSAT race.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn share_log_roundtrip() {
        use super::{ShareCursor, ShareLog};
        use std::sync::Arc;
        let log = Arc::new(ShareLog::new());
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).negative();
        log.push(vec![a, b]);
        log.push(vec![b]);
        let mut cur = ShareCursor::new(log.clone());
        assert_eq!(cur.next(), Some(vec![a, b]));
        assert_eq!(cur.next(), Some(vec![b]));
        assert_eq!(cur.next(), None);
        log.push(vec![a]);
        assert_eq!(cur.next(), Some(vec![a]), "cursor resumes after catch-up");
    }
}
