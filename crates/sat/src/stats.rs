//! Solver work counters.

/// Statistics accumulated across `solve` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Conflicts resolved by a chronological backtrack (one level) instead
    /// of a full non-chronological backjump.
    pub chrono_backtracks: u64,
    /// Phase-reset events (target/best rephasing).
    pub rephases: u64,
    /// Clauses shortened by vivification.
    pub vivified: u64,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: u64,
    /// Clauses deleted because another clause subsumes them.
    pub subsumed: u64,
    /// Variables removed by bounded variable elimination (net of
    /// restorations).
    pub eliminated_vars: u64,
    /// Learnt clauses imported from portfolio peers (after the local RUP
    /// probe accepted them).
    pub shared_imported: u64,
    /// Low-LBD learnt clauses exported to portfolio peers.
    pub shared_exported: u64,
    /// Leaf cubes produced by the lookahead cuber (see `cube.rs`).
    pub cubes_generated: u64,
    /// Cubes conquered UNSAT (counted deterministically: every cube in an
    /// all-UNSAT split, and exactly the cubes below the winning index in a
    /// SAT split).
    pub cubes_refuted: u64,
    /// Cross-design store clauses RUP-probed against this solver.
    pub reuse_probed: u64,
    /// Cross-design store clauses accepted by the probe and imported.
    pub reuse_imported: u64,
    /// Bytes appended to the buffered DRUP text renderer (0 unless
    /// [`Solver::enable_proof_text`](crate::Solver::enable_proof_text)
    /// turned incremental rendering on).
    pub proof_bytes: u64,
}

impl SolverStats {
    /// Folds another solver's statistics into this one. Used to aggregate
    /// across engines (one per design) or across parallel workers.
    pub fn merge(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.chrono_backtracks += other.chrono_backtracks;
        self.rephases += other.rephases;
        self.vivified += other.vivified;
        self.strengthened += other.strengthened;
        self.subsumed += other.subsumed;
        self.eliminated_vars += other.eliminated_vars;
        self.shared_imported += other.shared_imported;
        self.shared_exported += other.shared_exported;
        self.cubes_generated += other.cubes_generated;
        self.cubes_refuted += other.cubes_refuted;
        self.reuse_probed += other.reuse_probed;
        self.reuse_imported += other.reuse_imported;
        self.proof_bytes += other.proof_bytes;
    }

    /// Per-field difference against an earlier snapshot of the same
    /// counters (used to attribute portfolio-worker work to a race).
    pub(crate) fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - earlier.conflicts,
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            restarts: self.restarts - earlier.restarts,
            // `learnt_clauses` is a level, not a counter: a delta would go
            // negative when the race reduced the database. Report the
            // worker's growth clamped at zero.
            learnt_clauses: self.learnt_clauses.saturating_sub(earlier.learnt_clauses),
            chrono_backtracks: self.chrono_backtracks - earlier.chrono_backtracks,
            rephases: self.rephases - earlier.rephases,
            vivified: self.vivified - earlier.vivified,
            strengthened: self.strengthened - earlier.strengthened,
            subsumed: self.subsumed - earlier.subsumed,
            eliminated_vars: self.eliminated_vars.saturating_sub(earlier.eliminated_vars),
            shared_imported: self.shared_imported - earlier.shared_imported,
            shared_exported: self.shared_exported - earlier.shared_exported,
            cubes_generated: self.cubes_generated - earlier.cubes_generated,
            cubes_refuted: self.cubes_refuted - earlier.cubes_refuted,
            reuse_probed: self.reuse_probed - earlier.reuse_probed,
            reuse_imported: self.reuse_imported - earlier.reuse_imported,
            proof_bytes: self.proof_bytes - earlier.proof_bytes,
        }
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.merge(&rhs);
    }
}
