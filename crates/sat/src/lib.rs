//! # fastpath-sat
//!
//! A CDCL SAT solver, the decision-procedure substrate under FastPath's
//! formal verification step (the paper used a commercial property checker;
//! see DESIGN.md for the substitution argument).
//!
//! Features: two-watched-literal propagation, 1-UIP learning with clause
//! minimization, VSIDS, phase saving, Luby restarts, learnt-DB reduction,
//! incremental solving under assumptions, and DIMACS I/O.
//!
//! # Examples
//!
//! ```
//! use fastpath_sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(y), Some(true));
//! ```

#![warn(missing_docs)]

mod dimacs;
mod proof;
mod solver;
mod types;

pub use dimacs::{parse_dimacs, Cnf, ParseDimacsError};
pub use proof::{Proof, ProofStep};
pub use solver::{Solver, SolverStats};
pub use types::{LBool, Lit, SolveResult, Var};
