//! # fastpath-sat
//!
//! A CDCL SAT solver, the decision-procedure substrate under FastPath's
//! formal verification step (the paper used a commercial property checker;
//! see DESIGN.md for the substitution argument).
//!
//! Features: two-watched-literal propagation with a binary-clause fast
//! path, 1-UIP learning with clause minimization, VSIDS, phase saving and
//! target-phase rephasing, Luby restarts, chronological backtracking, a
//! three-tier (core/mid/local) learnt database, DRUP-sound inprocessing
//! (vivification, subsumption, bounded variable elimination), a
//! deterministic parallel portfolio, incremental solving under
//! assumptions, and DIMACS I/O.
//!
//! # Examples
//!
//! ```
//! use fastpath_sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(y), Some(true));
//! ```

#![warn(missing_docs)]

mod analyze;
mod cube;
mod dimacs;
mod heap;
mod inprocess;
mod portfolio;
mod proof;
mod propagate;
mod reduce;
mod solver;
mod stats;
mod types;

pub use cube::CUBE_TRIGGER_CONFLICTS;
pub use dimacs::{parse_dimacs, Cnf, ParseDimacsError};
pub use proof::{Proof, ProofStep};
pub use solver::Solver;
pub use stats::SolverStats;
pub use types::{LBool, Lit, SolveResult, Var};
