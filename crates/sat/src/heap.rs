//! The VSIDS decision heap.

use crate::types::Var;

/// An indexed binary max-heap over variables ordered by activity.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    position: Vec<Option<u32>>,
}

impl VarHeap {
    pub(crate) fn grow(&mut self, n: usize) {
        self.position.resize(n, None);
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.position[v.index()].is_some()
    }

    pub(crate) fn push(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = Some(self.heap.len() as u32);
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.position[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(pos) = self.position[v.index()] {
            self.sift_up(pos as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut largest = i;
            for child in [left, right] {
                if child < self.heap.len()
                    && activity[self.heap[child].index()] > activity[self.heap[largest].index()]
                {
                    largest = child;
                }
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = Some(i as u32);
        self.position[self.heap[j].index()] = Some(j as u32);
    }
}
