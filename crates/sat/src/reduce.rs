//! Glue-aware learnt-clause database reduction.
//!
//! Learnt clauses live in three tiers (see `Tier`): core clauses
//! (LBD ≤ 2) are kept forever, mid clauses are kept while they keep
//! appearing in conflicts and demoted to local when stale, and local
//! clauses are ranked by (LBD, activity) with the worst half deleted.
//! The `used` counter gives every clause a grace period of two
//! reductions after each conflict it participates in.

use crate::solver::{Solver, Tier};

impl Solver {
    pub(crate) fn reduce_db(&mut self) {
        // Demote mid-tier clauses that sat out the whole window since the
        // last reduction; give active ones another window.
        for c in &mut self.clauses {
            if c.learnt && !c.deleted && c.tier == Tier::Mid {
                if c.used > 0 {
                    c.used -= 1;
                } else {
                    c.tier = Tier::Local;
                }
            }
        }
        // Collect deletable local clauses. A clause currently acting as
        // the reason for an assignment is locked; recently used clauses
        // spend their grace counter instead of becoming candidates.
        let mut candidates: Vec<u32> = Vec::new();
        for cref in 0..self.clauses.len() as u32 {
            let c = &self.clauses[cref as usize];
            if !c.learnt || c.deleted || c.tier != Tier::Local {
                continue;
            }
            if self.is_reason(cref) {
                continue;
            }
            let c = &mut self.clauses[cref as usize];
            if c.used > 0 {
                c.used -= 1;
                continue;
            }
            candidates.push(cref);
        }
        // Worst first: highest LBD, then lowest activity.
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.total_cmp(&cb.activity))
        });
        for &cref in &candidates[..candidates.len() / 2] {
            self.delete_clause(cref);
        }
    }

    /// `true` if the clause is the reason for a current assignment (its
    /// implied literal is assigned with this clause as antecedent).
    pub(crate) fn is_reason(&self, cref: u32) -> bool {
        self.clauses[cref as usize]
            .lits
            .iter()
            .any(|l| self.reasons[l.var().index()] == Some(cref))
    }
}
