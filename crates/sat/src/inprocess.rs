//! Inprocessing: formula simplification between restarts.
//!
//! Four techniques run at the root level, every one of them DRUP-sound:
//!
//! * **Root simplification** — clauses satisfied at the root are
//!   deleted; root-false literals are stripped (the stripped clause is
//!   RUP from the root units, so it is logged as `Learn` before the
//!   original is `Delete`d).
//! * **Subsumption / self-subsuming resolution** — occurrence-list
//!   driven. `C ⊆ D` deletes `D`; `C` almost-subsuming `D` with one
//!   flipped literal strengthens `D` (the resolvent `D \ {¬l}` is RUP
//!   while both parents are present, hence `Learn` before `Delete`).
//! * **Vivification** — assert the negation of a clause's literals one
//!   by one; a conflict, an implied literal, or a falsified literal each
//!   yield a shorter RUP replacement.
//! * **Bounded variable elimination** — non-frozen variables whose
//!   resolvent count does not exceed the clauses removed. Resolvents of
//!   two present parents are RUP and logged as `Learn`. The removed
//!   *original* clauses are detached from the solver but deliberately
//!   **not** logged as deletions: the checker keeps them, which keeps
//!   the axiom stream authoritative (`Cnf::from_steps`, model checks)
//!   and keeps every later RUP check sound — RUP is monotone in the
//!   clause database, so verifying against a superset can only succeed
//!   more often, never less. Removed clauses are stored on an
//!   elimination stack for Eén–Biere model reconstruction and for
//!   restoration when an eliminated variable reappears in a new clause
//!   or assumption (incremental use).
//!
//! The caller must keep interface variables frozen ([`Solver::freeze`])
//! for the restoration path to stay cheap; assumption literals are
//! frozen automatically.

use crate::proof::ProofStep;
use crate::solver::{tier_for_lbd, Solver, Tier};
use crate::types::{LBool, Lit, Var};

/// Per-pass work bound for the subsumption sweep (literal visits).
const SUBSUME_BUDGET: u64 = 2_000_000;
/// Clauses probed by one vivification pass.
const VIVIFY_CLAUSES: usize = 128;
/// Per-pass propagation bound for vivification probes.
const VIVIFY_PROPS: u64 = 200_000;
/// Occurrence bound per polarity for variable elimination candidates.
const BVE_OCC_LIMIT: usize = 10;

impl Solver {
    /// One inprocessing pass. Called at a restart boundary (decision
    /// level 0). May set `ok = false` when a root conflict is derived;
    /// the search loop is responsible for logging the empty clause.
    pub(crate) fn inprocess(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.inprocess_passes += 1;
        self.root_simplify();
        if !self.ok {
            return;
        }
        self.subsume_pass();
        if !self.ok {
            return;
        }
        self.vivify_pass();
        if !self.ok {
            return;
        }
        if self.bve_enabled {
            self.bve_pass();
        }
    }

    /// Replaces a clause with a strictly stronger (RUP) version, first
    /// reconciling `new` with the *current* root assignment: the caller
    /// may hold literals that root units derived earlier in the same
    /// inprocessing pass have since satisfied or falsified. A root-true
    /// literal means the clause is permanently satisfied (deleted); root
    /// -false literals are stripped (the result is still RUP — it adds
    /// the root units as resolution antecedents). Without this,
    /// `replace_lits` could install a watch on an already-propagated
    /// false literal, silently breaking the two-watched-literal
    /// invariant and with it soundness.
    fn replace_clause(&mut self, cref: u32, new: Vec<Lit>) {
        debug_assert_eq!(self.decision_level(), 0);
        if new.iter().any(|&l| self.lit_value(l) == LBool::True) {
            self.delete_clause(cref);
            return;
        }
        let new: Vec<Lit> = new
            .into_iter()
            .filter(|&l| self.lit_value(l) != LBool::False)
            .collect();
        if new.len() >= 2 {
            self.replace_lits(cref, new);
        } else {
            self.replace_with_unit(cref, new);
        }
    }

    /// Replaces a clause's literals in place with a strictly stronger
    /// (RUP) version: `Learn(new)` then `Delete(old)`, watches moved.
    /// `new` must have at least 2 root-unassigned literals (see
    /// `replace_clause`).
    fn replace_lits(&mut self, cref: u32, new: Vec<Lit>) {
        debug_assert!(new.len() >= 2);
        debug_assert!(new.iter().all(|&l| self.lit_value(l) == LBool::Undef));
        self.detach_clause(cref);
        if self.proof.is_some() {
            let new_copy = new.clone();
            self.log(|| ProofStep::Learn(new_copy));
            let old = self.clauses[cref as usize].lits.clone();
            self.log(|| ProofStep::Delete(old));
        }
        let binary = new.len() == 2;
        self.watches[(!new[0]).index()].push(crate::solver::Watch::new(cref, new[1], binary));
        self.watches[(!new[1]).index()].push(crate::solver::Watch::new(cref, new[0], binary));
        let c = &mut self.clauses[cref as usize];
        c.lits = new;
        if c.learnt {
            let shorter = c.lits.len() as u32;
            if shorter < c.lbd {
                c.lbd = shorter;
                c.tier = tier_for_lbd(shorter);
            }
        }
    }

    /// Replaces a clause with a unit (or empty) RUP consequence: logs the
    /// learn, deletes the clause, asserts the unit at the root.
    fn replace_with_unit(&mut self, cref: u32, new: Vec<Lit>) {
        debug_assert!(new.len() <= 1);
        if self.proof.is_some() && !new.is_empty() {
            let new_copy = new.clone();
            self.log(|| ProofStep::Learn(new_copy));
        }
        self.delete_clause(cref);
        match new.first() {
            None => self.ok = false,
            Some(&u) => match self.lit_value(u) {
                LBool::False => self.ok = false,
                LBool::True => {}
                LBool::Undef => {
                    self.enqueue(u, None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
        }
    }

    /// Deletes clauses satisfied at the root and strips root-false
    /// literals from the rest.
    fn root_simplify(&mut self) {
        for cref in 0..self.clauses.len() as u32 {
            if self.clauses[cref as usize].deleted {
                continue;
            }
            let mut satisfied = false;
            let mut false_lits = 0usize;
            for &l in &self.clauses[cref as usize].lits {
                match self.lit_value(l) {
                    LBool::True if self.levels[l.var().index()] == 0 => {
                        satisfied = true;
                        break;
                    }
                    LBool::False if self.levels[l.var().index()] == 0 => false_lits += 1,
                    _ => {}
                }
            }
            if satisfied {
                self.delete_clause(cref);
                continue;
            }
            if false_lits == 0 {
                continue;
            }
            let new: Vec<Lit> = self.clauses[cref as usize]
                .lits
                .iter()
                .copied()
                .filter(|&l| {
                    !(self.lit_value(l) == LBool::False && self.levels[l.var().index()] == 0)
                })
                .collect();
            if new.len() >= 2 {
                self.replace_lits(cref, new);
            } else {
                self.replace_with_unit(cref, new);
                if !self.ok {
                    return;
                }
            }
        }
    }

    /// Subsumption and self-subsuming resolution over occurrence lists.
    fn subsume_pass(&mut self) {
        let occ = self.build_occ();
        // Membership stamps for the candidate clause being tested.
        let mut mark = vec![0u32; 2 * self.num_vars()];
        let mut generation = 0u32;
        let mut budget = SUBSUME_BUDGET;
        for cref in 0..self.clauses.len() as u32 {
            if budget == 0 {
                break;
            }
            if self.clauses[cref as usize].deleted {
                continue;
            }
            // Pick the literal with the fewest occurrences to scan.
            let best = self.clauses[cref as usize]
                .lits
                .iter()
                .copied()
                .min_by_key(|l| occ[l.index()].len());
            let Some(best) = best else { continue };
            // Candidates containing `best` (subsumption, and strengthening
            // on any other literal) plus candidates containing `¬best`
            // (strengthening on `best` itself).
            for phase in 0..2 {
                let key = if phase == 0 { best } else { !best };
                for &dref in &occ[key.index()] {
                    if budget == 0 || self.clauses[cref as usize].deleted {
                        break;
                    }
                    if dref == cref || self.clauses[dref as usize].deleted {
                        continue;
                    }
                    let (clen, dlen) = (
                        self.clauses[cref as usize].lits.len(),
                        self.clauses[dref as usize].lits.len(),
                    );
                    if dlen < clen {
                        continue;
                    }
                    budget = budget.saturating_sub(dlen as u64);
                    // Stamp D's literals.
                    generation += 1;
                    for &l in &self.clauses[dref as usize].lits {
                        mark[l.index()] = generation;
                    }
                    // Every literal of C must be in D, allowing at most
                    // one to appear flipped.
                    let mut flipped: Option<Lit> = None;
                    let mut subset = true;
                    for &l in &self.clauses[cref as usize].lits {
                        if mark[l.index()] == generation {
                            continue;
                        }
                        if mark[(!l).index()] == generation && flipped.is_none() {
                            flipped = Some(l);
                            continue;
                        }
                        subset = false;
                        break;
                    }
                    if !subset {
                        continue;
                    }
                    match flipped {
                        None => {
                            // C subsumes D. If D is irredundant and C is
                            // learnt, C inherits irredundancy first so the
                            // solver never drops the constraint later.
                            if !self.clauses[dref as usize].learnt
                                && self.clauses[cref as usize].learnt
                            {
                                self.clauses[cref as usize].learnt = false;
                                self.clauses[cref as usize].tier = Tier::Core;
                                self.stats.learnt_clauses -= 1;
                            }
                            self.delete_clause(dref);
                            self.stats.subsumed += 1;
                        }
                        Some(l) => {
                            // Self-subsuming resolution: D \ {¬l} is RUP.
                            let new: Vec<Lit> = self.clauses[dref as usize]
                                .lits
                                .iter()
                                .copied()
                                .filter(|&d| d != !l)
                                .collect();
                            self.replace_clause(dref, new);
                            if !self.ok {
                                return;
                            }
                            self.stats.strengthened += 1;
                        }
                    }
                }
            }
        }
    }

    /// Vivification: probe a bounded batch of clauses by asserting their
    /// negated literals in order, shortening when propagation conflicts,
    /// satisfies, or falsifies a literal.
    fn vivify_pass(&mut self) {
        let total = self.clauses.len();
        if total == 0 {
            return;
        }
        let props_before = self.stats.propagations;
        let mut probed = 0usize;
        let mut scanned = 0usize;
        while probed < VIVIFY_CLAUSES
            && scanned < total
            && self.stats.propagations - props_before < VIVIFY_PROPS
        {
            let cref = (self.vivify_head % total) as u32;
            self.vivify_head = (self.vivify_head + 1) % total;
            scanned += 1;
            let c = &self.clauses[cref as usize];
            // Local-tier learnts are not worth the probe; they churn.
            if c.deleted || c.lits.len() < 3 || (c.learnt && c.tier == Tier::Local) {
                continue;
            }
            probed += 1;
            self.vivify_one(cref);
            if !self.ok {
                return;
            }
        }
    }

    fn vivify_one(&mut self, cref: u32) {
        let lits = self.clauses[cref as usize].lits.clone();
        self.detach_clause(cref);
        self.trail_lim.push(self.trail.len());
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut shortened = false;
        for &l in &lits {
            match self.lit_value(l) {
                LBool::True => {
                    // Prefix negations imply l: clause `kept + [l]` is RUP.
                    kept.push(l);
                    shortened = kept.len() < lits.len();
                    break;
                }
                LBool::False => {
                    // Prefix negations imply ¬l: drop l.
                    shortened = true;
                }
                LBool::Undef => {
                    self.enqueue(!l, None);
                    kept.push(l);
                    if self.propagate().is_some() {
                        // ¬kept is contradictory: `kept` alone is RUP.
                        shortened = kept.len() < lits.len();
                        break;
                    }
                }
            }
        }
        self.backtrack(0);
        if !shortened {
            // Unchanged: reattach the original watches.
            let binary = lits.len() == 2;
            self.watches[(!lits[0]).index()].push(crate::solver::Watch::new(cref, lits[1], binary));
            self.watches[(!lits[1]).index()].push(crate::solver::Watch::new(cref, lits[0], binary));
            return;
        }
        self.stats.vivified += 1;
        self.replace_clause(cref, kept);
    }

    /// Occurrence lists over live clauses: `occ[lit.index()]` holds the
    /// clause references containing `lit`. Entries go stale as clauses
    /// are strengthened or deleted — users re-validate membership.
    fn build_occ(&self) -> Vec<Vec<u32>> {
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for (cref, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            for &l in &c.lits {
                occ[l.index()].push(cref as u32);
            }
        }
        occ
    }

    /// Bounded variable elimination (Eén–Biere style) on unfrozen,
    /// unassigned variables with small occurrence lists, accepted only
    /// when it does not grow the clause count.
    fn bve_pass(&mut self) {
        let mut occ = self.build_occ();
        let num_vars = self.num_vars();
        for vi in 0..num_vars {
            let v = Var::from_index(vi);
            if self.frozen[vi] || self.eliminated[vi] || self.assigns[vi] != LBool::Undef {
                continue;
            }
            let collect = |solver: &Solver, occ: &[Vec<u32>], lit: Lit| -> Vec<u32> {
                occ[lit.index()]
                    .iter()
                    .copied()
                    .filter(|&cr| {
                        let c = &solver.clauses[cr as usize];
                        !c.deleted && c.lits.contains(&lit)
                    })
                    .collect()
            };
            let pos_all = collect(self, &occ, v.positive());
            let neg_all = collect(self, &occ, v.negative());
            let pos: Vec<u32> = pos_all
                .iter()
                .copied()
                .filter(|&cr| !self.clauses[cr as usize].learnt)
                .collect();
            let neg: Vec<u32> = neg_all
                .iter()
                .copied()
                .filter(|&cr| !self.clauses[cr as usize].learnt)
                .collect();
            if pos.len() > BVE_OCC_LIMIT || neg.len() > BVE_OCC_LIMIT {
                continue;
            }
            // Build the non-tautological, non-satisfied resolvents.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut feasible = true;
            'outer: for &pc in &pos {
                for &nc in &neg {
                    if let Some(r) = self.resolve(pc, nc, v) {
                        resolvents.push(r);
                        if resolvents.len() > pos.len() + neg.len() {
                            feasible = false;
                            break 'outer;
                        }
                    }
                }
            }
            if !feasible {
                continue;
            }
            // Commit: log + attach the resolvents, then remove every
            // clause mentioning v. Original clauses go to the elimination
            // stack (silently — see the module docs); learnt ones are
            // deleted with a logged step.
            for r in &resolvents {
                if self.proof.is_some() {
                    let r_copy = r.clone();
                    self.log(|| ProofStep::Learn(r_copy));
                }
            }
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(pos.len() + neg.len());
            for &cr in pos_all.iter().chain(neg_all.iter()) {
                if self.clauses[cr as usize].deleted {
                    continue; // duplicates across the two lists
                }
                if self.clauses[cr as usize].learnt {
                    self.delete_clause(cr);
                } else {
                    stored.push(self.clauses[cr as usize].lits.clone());
                    self.remove_clause_silently(cr);
                }
            }
            self.elim_stack.push((v, stored));
            self.eliminated[vi] = true;
            self.stats.eliminated_vars += 1;
            // Attach the resolvents after the removals so none of them is
            // deleted as "mentioning v" (they never do), and extend the
            // occurrence lists so later eliminations see them.
            for r in resolvents {
                match r.len() {
                    0 => {
                        self.ok = false;
                        return;
                    }
                    1 => match self.lit_value(r[0]) {
                        LBool::False => {
                            self.ok = false;
                            return;
                        }
                        LBool::True => {}
                        LBool::Undef => {
                            self.enqueue(r[0], None);
                        }
                    },
                    _ => {
                        let cref = self.attach_clause(r, false);
                        for &l in &self.clauses[cref as usize].lits {
                            occ[l.index()].push(cref);
                        }
                    }
                }
            }
            if self.propagate().is_some() {
                self.ok = false;
                return;
            }
        }
    }

    /// The resolvent of two clauses on pivot `v` (positive in `pc`,
    /// negative in `nc`): `None` for tautologies and root-satisfied
    /// resolvents; root-false literals are stripped (still RUP from the
    /// parents plus root units).
    fn resolve(&mut self, pc: u32, nc: u32, v: Var) -> Option<Vec<Lit>> {
        let mut out: Vec<Lit> = Vec::new();
        for source in [pc, nc] {
            for &l in &self.clauses[source as usize].lits {
                if l.var() == v {
                    continue;
                }
                match self.lit_value(l) {
                    LBool::True => return None,
                    LBool::False if self.levels[l.var().index()] == 0 => continue,
                    _ => out.push(l),
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        if out.windows(2).any(|w| w[0] == !w[1]) {
            return None;
        }
        Some(out)
    }

    /// Detaches and tombstones a clause with **no** proof deletion — used
    /// only for BVE-removed originals, which the checker must keep (the
    /// solver restores them on demand without re-logging).
    fn remove_clause_silently(&mut self, cref: u32) {
        debug_assert!(!self.clauses[cref as usize].deleted);
        debug_assert!(!self.clauses[cref as usize].learnt);
        self.detach_clause(cref);
        self.clauses[cref as usize].deleted = true;
    }

    /// Restores every eliminated variable occurring in `lits`, plus any
    /// eliminated variable appearing in the clauses brought back
    /// (worklist closure). Called from `add_clause` and `solve_with`.
    pub(crate) fn restore_eliminated_in(&mut self, lits: &[Lit]) {
        let mut work: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|v| self.eliminated[v.index()])
            .collect();
        while let Some(v) = work.pop() {
            if !self.eliminated[v.index()] {
                continue;
            }
            let brought_back = self.restore_var(v);
            for clause in &brought_back {
                for l in clause {
                    if self.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
            }
        }
    }

    /// Un-eliminates one variable: re-attaches its stored clauses
    /// (simplified against the current root assignment, no proof steps —
    /// the checker never dropped them) and permanently freezes the
    /// variable so it cannot thrash. Returns the restored clauses.
    pub(crate) fn restore_var(&mut self, v: Var) -> Vec<Vec<Lit>> {
        let idx = self
            .elim_stack
            .iter()
            .position(|(u, _)| *u == v)
            .expect("eliminated variable has a stack entry");
        let (_, stored) = self.elim_stack.remove(idx);
        self.eliminated[v.index()] = false;
        self.frozen[v.index()] = true;
        self.heap.push(v, &self.activity);
        self.stats.eliminated_vars = self.stats.eliminated_vars.saturating_sub(1);
        for clause in &stored {
            let mut satisfied = false;
            let mut live: Vec<Lit> = Vec::with_capacity(clause.len());
            for &l in clause {
                match self.lit_value(l) {
                    LBool::True if self.levels[l.var().index()] == 0 => {
                        satisfied = true;
                        break;
                    }
                    LBool::False if self.levels[l.var().index()] == 0 => {}
                    _ => live.push(l),
                }
            }
            if satisfied {
                continue;
            }
            match live.len() {
                0 => {
                    self.ok = false;
                    return stored;
                }
                1 => match self.lit_value(live[0]) {
                    LBool::False => {
                        self.ok = false;
                        return stored;
                    }
                    LBool::True => {}
                    LBool::Undef => {
                        self.enqueue(live[0], None);
                        if self.propagate().is_some() {
                            self.ok = false;
                            return stored;
                        }
                    }
                },
                _ => {
                    self.attach_clause(live, false);
                }
            }
        }
        stored
    }

    /// Eén–Biere model reconstruction: walk the elimination stack in
    /// reverse, flipping each eliminated variable when one of its removed
    /// clauses is otherwise falsified. Because all resolvents are
    /// satisfied by the model, at most one polarity's clauses can demand
    /// a flip, so a single pass per variable suffices.
    pub(crate) fn reconstruct_model(&mut self) {
        let stack = std::mem::take(&mut self.elim_stack);
        for (v, clauses) in stack.iter().rev() {
            for clause in clauses {
                let satisfied = clause
                    .iter()
                    .any(|&l| self.model[l.var().index()] == l.is_positive());
                if !satisfied {
                    let pol = clause
                        .iter()
                        .find(|l| l.var() == *v)
                        .expect("stored clause mentions its variable")
                        .is_positive();
                    self.model[v.index()] = pol;
                }
            }
        }
        self.elim_stack = stack;
    }
}

#[cfg(test)]
mod tests {
    use crate::solver::Solver;
    use crate::types::{Lit, SolveResult, Var};

    fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
        for bits in 0u64..(1 << num_vars) {
            let assignment = |v: usize| -> bool { (bits >> v) & 1 == 1 };
            if cnf
                .iter()
                .all(|clause| clause.iter().any(|&(v, pos)| assignment(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn bve_eliminates_and_reconstructs_the_model() {
        // v is eliminable: (v|a) & (!v|b) resolves to (a|b). The model
        // must still cover v and satisfy the *original* clauses.
        let mut s = Solver::new();
        let v = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[v.positive(), a.positive()]);
        s.add_clause(&[v.negative(), b.positive()]);
        s.inprocess();
        assert!(s.eliminated[v.index()], "v should be eliminated");
        s.add_clause(&[a.negative()]); // force a=0, so v must be 1, so b=1
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(v), Some(true), "reconstruction must set v");
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn frozen_variables_are_never_eliminated() {
        let mut s = Solver::new();
        let v = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.freeze(v);
        s.add_clause(&[v.positive(), a.positive()]);
        s.add_clause(&[v.negative(), b.positive()]);
        s.inprocess();
        assert!(!s.eliminated[v.index()], "frozen v must survive BVE");
        assert!(s.is_frozen(v));
    }

    #[test]
    fn adding_a_clause_over_an_eliminated_variable_restores_it() {
        let mut s = Solver::new();
        let v = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[v.positive(), a.positive()]);
        s.add_clause(&[v.negative(), b.positive()]);
        s.inprocess();
        assert!(s.eliminated[v.index()]);
        // New obligation over v: forces restoration, then the combined
        // formula pins all three variables.
        s.add_clause(&[v.positive()]);
        s.add_clause(&[a.negative()]);
        assert!(!s.eliminated[v.index()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn assumptions_over_eliminated_variables_restore_and_freeze() {
        let mut s = Solver::new();
        let v = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[v.positive(), a.positive()]);
        s.add_clause(&[v.negative(), b.positive()]);
        s.inprocess();
        assert!(s.eliminated[v.index()]);
        assert_eq!(s.solve_with(&[v.negative()]), SolveResult::Sat);
        assert_eq!(s.value(v), Some(false));
        assert_eq!(s.value(a), Some(true));
        assert!(s.is_frozen(v), "assumption vars freeze permanently");
    }

    #[test]
    fn subsumption_strengthening_and_vivification_preserve_answers() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1A9F);
        for round in 0..200 {
            let num_vars = rng.gen_range(2..=8usize);
            let num_clauses = rng.gen_range(2..=25usize);
            let cnf: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1..=4usize);
                    (0..len)
                        .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            // Hammer the formula with repeated inprocessing passes.
            for _ in 0..3 {
                if s.ok {
                    s.inprocess();
                }
            }
            let expected = brute_force_sat(num_vars, &cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}: cnf {cnf:?}");
            if got {
                // The model must satisfy the ORIGINAL cnf, including any
                // clauses inprocessing removed (reconstruction).
                for clause in &cnf {
                    assert!(
                        clause.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos)),
                        "round {round}: model falsifies {clause:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn inprocessing_during_search_keeps_unsat_traces_well_formed() {
        use crate::proof::ProofStep;
        // Pigeonhole 7-into-6 generates enough conflicts to restart many
        // times; trigger inprocessing at the first restart.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let p: Vec<Vec<Var>> = (0..7)
            .map(|_| (0..6).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        s.next_inprocess = 1;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.inprocess_passes > 0, "inprocessing must have run");
        let proof = s.proof().expect("enabled");
        assert_eq!(
            proof.steps().last(),
            Some(&ProofStep::Learn(Vec::new())),
            "UNSAT trace must still end with the empty clause"
        );
    }

    #[test]
    fn incremental_solving_with_inprocessing_between_calls() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB7E2);
        for _ in 0..100 {
            let num_vars = rng.gen_range(2..=7usize);
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            let mut cnf: Vec<Vec<(usize, bool)>> = Vec::new();
            for _batch in 0..3 {
                for _ in 0..rng.gen_range(1..=6usize) {
                    let len = rng.gen_range(1..=3usize);
                    let clause: Vec<(usize, bool)> = (0..len)
                        .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                        .collect();
                    let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                    s.add_clause(&lits);
                    cnf.push(clause);
                }
                if s.ok {
                    s.inprocess();
                }
                let expected = brute_force_sat(num_vars, &cnf);
                let got = s.solve() == SolveResult::Sat;
                assert_eq!(got, expected, "cnf {cnf:?}");
                if !expected {
                    break;
                }
            }
        }
    }
}
