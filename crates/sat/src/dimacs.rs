//! DIMACS CNF parsing and printing, for interoperability and debugging.

use crate::proof::ProofStep;
use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::error::Error;
use std::fmt;

/// A parsed CNF formula: variable count and clauses of literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    /// Declared number of variables.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Builds the exact CNF a proof-logging solver holds: every
    /// [`ProofStep::Axiom`] in `steps` verbatim — including incremental
    /// additions such as asserted activation-literal units — plus one unit
    /// clause per literal of `assumptions`. The variable count covers
    /// every referenced variable, so `to_dimacs` output round-trips and
    /// matches what was actually solved.
    pub fn from_steps(steps: &[ProofStep], assumptions: &[Lit]) -> Cnf {
        let mut clauses: Vec<Vec<Lit>> = steps
            .iter()
            .filter_map(|s| match s {
                ProofStep::Axiom(lits) => Some(lits.clone()),
                _ => None,
            })
            .collect();
        clauses.extend(assumptions.iter().map(|&a| vec![a]));
        let num_vars = steps
            .iter()
            .flat_map(|s| s.lits())
            .chain(assumptions)
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        Cnf { num_vars, clauses }
    }

    /// Loads the formula into a fresh solver.
    pub fn into_solver(&self) -> Solver {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        let _ = vars;
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }

    /// Renders as DIMACS text.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for &lit in clause {
                let n = lit.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

/// An error while parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError(String);

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DIMACS: {}", self.0)
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens, or
/// literals exceeding the declared variable count.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError("expected `p cnf`".into()));
            }
            let nv = parts
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(|| ParseDimacsError("bad var count".into()))?;
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or_else(|| ParseDimacsError("clause before header".into()))?;
        for token in line.split_whitespace() {
            let n: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError(format!("bad token {token}")))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let index = n.unsigned_abs() as usize - 1;
                if index >= nv {
                    return Err(ParseDimacsError(format!(
                        "literal {n} exceeds {nv} variables"
                    )));
                }
                current.push(Var::from_index(index).lit(n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.ok_or_else(|| ParseDimacsError("missing header".into()))?,
        clauses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SolveResult;

    #[test]
    fn roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).expect("valid");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let re = parse_dimacs(&cnf.to_dimacs()).expect("valid");
        assert_eq!(cnf, re);
    }

    #[test]
    fn solves_parsed_formula() {
        let text = "p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n";
        let cnf = parse_dimacs(text).expect("valid");
        let mut solver = cnf.into_solver();
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn random_cnfs_roundtrip_writer_parser() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD1AC5);
        for _ in 0..200 {
            let num_vars = rng.gen_range(1..=12usize);
            let clauses: Vec<Vec<Lit>> = (0..rng.gen_range(0..=15usize))
                .map(|_| {
                    (0..rng.gen_range(1..=4usize))
                        .map(|_| Var::from_index(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let cnf = Cnf { num_vars, clauses };
            let re = parse_dimacs(&cnf.to_dimacs()).expect("writer output");
            assert_eq!(cnf, re, "writer⇄parser round trip");
        }
    }

    #[test]
    fn from_steps_is_the_exact_solved_cnf() {
        // A proof-logging solver's axiom stream — incremental additions
        // and activation units included — must round-trip through the
        // writer into a formula equisatisfiable with the live solver.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let a = s.new_var();
        let b = s.new_var();
        let g = s.new_var(); // activation literal
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[g.negative(), a.negative()]); // guarded obligation
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Sat);
        s.add_clause(&[g.negative()]); // retire the check
        let proof = s.proof().expect("logging on");
        let cnf = Cnf::from_steps(proof.steps(), &[]);
        assert_eq!(cnf.num_vars, 3);
        // All three axioms present verbatim, including the ¬g unit.
        assert_eq!(cnf.clauses.len(), 3);
        assert_eq!(cnf.clauses[2], vec![g.negative()]);
        let reparsed = parse_dimacs(&cnf.to_dimacs()).expect("valid");
        assert_eq!(reparsed, cnf);
        assert_eq!(reparsed.into_solver().solve(), SolveResult::Sat);
        // With the assumption baked in as a unit, the formula flips to
        // UNSAT only if ¬g retirement is included — i.e. the dump
        // reflects what was actually asserted, in order.
        let with_assumption = Cnf::from_steps(proof.steps(), &[g.positive()]);
        assert_eq!(with_assumption.into_solver().solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("p cnf x 2\n").is_err());
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n5 0\n").is_err());
        assert!(parse_dimacs("").is_err());
    }
}
