//! Core SAT types: variables, literals, truth values.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a raw index (must be < the solver's
    /// variable count to be meaningful).
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign
    /// (`true` ⇒ positive).
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `var << 1 | neg`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` iff this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Three-valued assignment state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal under this variable assignment.
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula (with assumptions) is unsatisfiable.
    Unsat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!(!v.positive()), v.positive());
        assert_eq!(Lit::from_index(v.positive().index()), v.positive());
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var::from_index(0);
        assert_eq!(LBool::True.of_lit(v.positive()), LBool::True);
        assert_eq!(LBool::True.of_lit(v.negative()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.positive()), LBool::False);
        assert_eq!(LBool::Undef.of_lit(v.positive()), LBool::Undef);
    }
}
