//! Deterministic cube-and-conquer on top of the CDCL core.
//!
//! [`Solver::solve_with`] with a cube width (`set_cube`) runs a hard
//! check in three stages:
//!
//! 1. **Canonical attempt.** A speculative clone of the persistent solver
//!    (the width-1 portfolio discipline) searches under a fixed conflict
//!    budget ([`CUBE_TRIGGER_CONFLICTS`]). Checks that finish inside the
//!    budget — the overwhelming majority — take exactly the monolithic
//!    trajectory: SAT adopts the clone wholesale, UNSAT splices its
//!    learns. The budget is a conflict *count*, so the split decision is
//!    machine-independent.
//! 2. **Lookahead cubing.** On budget exhaustion, a discardable clone of
//!    the attempt scores branch candidates by ternary lookahead (top
//!    VSIDS variables, both polarities propagated, product of the
//!    propagation yields; failed literals score zero) and splits the
//!    check into a cube tree of depth ≤ [`CUBE_DEPTH`]. Generation is
//!    purely sequential and side-effect free, so the tree is a function
//!    of the attempt's deterministic end state.
//! 3. **Conquest.** Each leaf cube is solved on a fresh clone of the
//!    attempt (inheriting its learnt clauses) under `assumptions ∪ cube`,
//!    scheduled over `cube_jobs` threads from an atomic work queue — the
//!    same FIFO work-claiming discipline `fastpath::parallel` uses at the
//!    flow layer (the sat crate sits below it and cannot depend on it).
//!
//! # Determinism rules
//!
//! The persistent solver's evolution must be a pure function of its
//! starting state, independent of `cube_jobs` and thread timing:
//!
//! * **SAT** answers come from the *minimum-index* satisfiable cube `m`.
//!   Early-stop flags are only ever raised for cubes with index greater
//!   than the current minimum SAT index, which only decreases — so no
//!   cube at or below the final `m` is ever interrupted, and `m` is the
//!   same for every width. The winner's entire clone state is adopted
//!   wholesale (its trace extends the attempt's, which extends the
//!   persistent trace). Stats absorb only the attempt, the winner, and
//!   the refuted cubes *below* `m` — cubes above `m` may or may not have
//!   completed depending on timing, so their work is discarded.
//! * **UNSAT** (every cube refuted — nothing was ever stopped) adopts
//!   no state. The attempt's learns are spliced first, then each cube's
//!   learns in leaf order, interleaved with the **spine clauses** that
//!   stitch the per-cube refutations into one DRUP artifact: for a tree
//!   node with assumption set `A` and cube prefix `C`, the spine clause
//!   `¬A ∨ ¬C` is RUP — at a leaf because the cube solver's final
//!   database (a subset of the checker's: splicing strips deletions, and
//!   RUP is monotone in the clause set) propagates `A ∪ C` to a
//!   conflict, and at an internal node because its two children's spines
//!   differ only in the split literal and resolve in two propagation
//!   steps. The root spine is the negated-assumption clause itself, so
//!   the stitched trace refutes the assumptions exactly like a
//!   monolithic UNSAT trace and `--certify` still checks one artifact.

use crate::proof::ProofStep;
use crate::solver::Solver;
use crate::stats::SolverStats;
use crate::types::{LBool, Lit, SolveResult, Var};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Conflicts granted to the canonical monolithic attempt before a check
/// is declared hard and split into cubes (`Solver::set_cube_trigger`
/// overrides per solver).
pub const CUBE_TRIGGER_CONFLICTS: u64 = 20_000;
/// Maximum cube-tree depth (at most `2^CUBE_DEPTH` leaf cubes).
const CUBE_DEPTH: usize = 3;
/// Branch candidates scored by lookahead at each tree node.
const CUBE_CANDIDATES: usize = 24;

/// A binary cube tree. Leaves carry the index of their cube in leaf
/// (DFS) order; every node knows its cube prefix for spine emission.
enum CubeTree {
    Leaf { index: usize },
    Split { prefix: Vec<Lit>, first: Box<CubeTree>, second: Box<CubeTree> },
}

/// What the conquest of one cube produced. UNSAT keeps only the splice
/// material so at most one full solver clone (a SAT winner) is retained.
enum CubeOutcome {
    Sat(Box<Solver>),
    Unsat {
        learns: Vec<Vec<Lit>>,
        stats: SolverStats,
        ok: bool,
    },
    Stopped,
}

impl Solver {
    /// The cube-and-conquer solve path (see the module docs).
    pub(crate) fn solve_cube(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Freeze/restore assumption variables on the persistent solver
        // before cloning, exactly like the portfolio: UNSAT outcomes
        // adopt nothing, but the frozen contract must survive them.
        for a in assumptions {
            let v = a.var();
            if self.eliminated[v.index()] {
                self.restore_var(v);
            }
            self.frozen[v.index()] = true;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        let base_stats = self.stats;
        let base_proof_len = self.proof_len();

        // Stage 1: the canonical budgeted attempt.
        let mut attempt = self.clone();
        attempt.cube_jobs = 0;
        attempt.portfolio_workers = 0;
        match attempt.solve_with_budget(assumptions, self.cube_trigger) {
            Some(SolveResult::Sat) => {
                self.adopt_canonical(attempt);
                return SolveResult::Sat;
            }
            Some(SolveResult::Unsat) => {
                self.adopt_unsat(&attempt, &base_stats, base_proof_len);
                return SolveResult::Unsat;
            }
            None => {}
        }

        // Stage 2: build the cube tree on a discardable clone of the
        // attempt (proof logging off — generation never derives clauses).
        let mut cuber = attempt.clone();
        cuber.proof = None;
        let mut cubes: Vec<Vec<Lit>> = Vec::new();
        let tree = build_tree(&mut cuber, assumptions, Vec::new(), CUBE_DEPTH, &mut cubes);
        drop(cuber);
        let attempt_stats = attempt.stats;
        let attempt_proof_len = attempt.proof_len();

        // Stage 3: conquer the cubes over `cube_jobs` workers.
        let jobs = self.cube_jobs.max(1).min(cubes.len());
        let stops: Vec<Arc<AtomicBool>> = (0..cubes.len())
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        let min_sat = AtomicUsize::new(usize::MAX);
        let run_cube = |index: usize| -> CubeOutcome {
            if index > min_sat.load(Ordering::Relaxed) {
                return CubeOutcome::Stopped;
            }
            let mut worker = attempt.clone();
            worker.cube_jobs = 0;
            worker.portfolio_workers = 0;
            worker.stop = Some(stops[index].clone());
            let mut asmps = assumptions.to_vec();
            asmps.extend_from_slice(&cubes[index]);
            match worker.solve_with_core(&asmps) {
                Some(SolveResult::Sat) => {
                    // Stop only cubes *above* the new minimum: the
                    // minimum only decreases, so nothing at or below the
                    // final winner is ever interrupted.
                    let prev = min_sat.fetch_min(index, Ordering::Relaxed);
                    let m = prev.min(index);
                    for stop in &stops[m + 1..] {
                        stop.store(true, Ordering::Relaxed);
                    }
                    CubeOutcome::Sat(Box::new(worker))
                }
                Some(SolveResult::Unsat) => {
                    let learns = worker
                        .proof()
                        .map(|p| {
                            p.steps()[attempt_proof_len..]
                                .iter()
                                .filter_map(|s| match s {
                                    ProofStep::Learn(lits) => Some(lits.clone()),
                                    _ => None,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    CubeOutcome::Unsat {
                        learns,
                        stats: worker.stats,
                        ok: worker.ok,
                    }
                }
                None => CubeOutcome::Stopped,
            }
        };
        let mut outcomes: Vec<Option<CubeOutcome>> = if jobs <= 1 {
            (0..cubes.len()).map(|i| Some(run_cube(i))).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<CubeOutcome>>> =
                (0..cubes.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        scope.spawn(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cubes.len() {
                                break;
                            }
                            let outcome = run_cube(i);
                            *slots[i].lock().expect("cube slot poisoned") = Some(outcome);
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("cube worker panicked");
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("cube slot poisoned"))
                .collect()
        };

        // Adjudication (see the module-level determinism rules).
        let winner_index = outcomes
            .iter()
            .position(|o| matches!(o, Some(CubeOutcome::Sat(_))));
        if let Some(m) = winner_index {
            let Some(CubeOutcome::Sat(winner)) = outcomes[m].take() else {
                unreachable!("winner slot checked above");
            };
            let refuted_below: SolverStats = outcomes[..m]
                .iter()
                .map(|o| match o {
                    Some(CubeOutcome::Unsat { stats, .. }) => stats.delta_since(&attempt_stats),
                    _ => unreachable!("cubes below the winner are never stopped"),
                })
                .fold(SolverStats::default(), |mut acc, d| {
                    acc += d;
                    acc
                });
            self.adopt_canonical(*winner);
            self.stats += refuted_below;
            self.stats.cubes_generated += cubes.len() as u64;
            self.stats.cubes_refuted += m as u64;
            return SolveResult::Sat;
        }

        // All cubes refuted: splice and stitch.
        self.adopt_unsat(&attempt, &base_stats, base_proof_len);
        let mut formula_unsat = false;
        let mut spliced = SolverStats::default();
        let mut unsat_cubes: Vec<Vec<Vec<Lit>>> = Vec::with_capacity(cubes.len());
        for outcome in outcomes {
            match outcome {
                Some(CubeOutcome::Unsat { learns, stats, ok }) => {
                    spliced += stats.delta_since(&attempt_stats);
                    formula_unsat |= !ok;
                    unsat_cubes.push(learns);
                }
                _ => unreachable!("no SAT cube, so no cube was ever stopped"),
            }
        }
        self.stats += spliced;
        self.stats.cubes_generated += cubes.len() as u64;
        self.stats.cubes_refuted += cubes.len() as u64;
        let mut bytes = 0usize;
        if self.proof.is_some() {
            let mut steps: Vec<ProofStep> = Vec::new();
            emit_stitched(&tree, assumptions, &unsat_cubes, &mut steps);
            if let Some(proof) = &mut self.proof {
                for step in steps {
                    bytes += proof.push(step);
                }
            }
        }
        self.stats.proof_bytes += bytes as u64;
        if formula_unsat || assumptions.is_empty() {
            // Either a cube derived the empty clause outright, or the
            // cubes cover the whole space with nothing assumed — the
            // formula itself is unsatisfiable.
            self.ok = false;
        }
        SolveResult::Unsat
    }
}

/// Emits each refuted cube's learns followed by its spine clause, then
/// the internal spines bottom-up (post-order), so every spine is RUP
/// where it lands (see the module docs).
fn emit_stitched(
    tree: &CubeTree,
    assumptions: &[Lit],
    unsat_cubes: &[Vec<Vec<Lit>>],
    out: &mut Vec<ProofStep>,
) {
    match tree {
        CubeTree::Leaf { index } => {
            for lits in &unsat_cubes[*index] {
                out.push(ProofStep::Learn(lits.clone()));
            }
        }
        CubeTree::Split { prefix, first, second } => {
            emit_stitched(first, assumptions, unsat_cubes, out);
            emit_stitched(second, assumptions, unsat_cubes, out);
            let spine: Vec<Lit> = assumptions
                .iter()
                .chain(prefix.iter())
                .map(|&l| !l)
                .collect();
            out.push(ProofStep::Learn(spine));
        }
    }
}

/// Recursively builds the cube tree. At each node the generation solver
/// re-establishes the node's context (assumptions + prefix as
/// pseudo-decision levels) from the root, scores candidates, and splits
/// on the best one; contexts that conflict under unit propagation alone
/// become leaves (their conquest refutes them in near-zero conflicts,
/// yielding the spine material cheaply).
fn build_tree(
    gen: &mut Solver,
    assumptions: &[Lit],
    prefix: Vec<Lit>,
    depth: usize,
    cubes: &mut Vec<Vec<Lit>>,
) -> CubeTree {
    let leaf = |cubes: &mut Vec<Vec<Lit>>, prefix: Vec<Lit>| {
        cubes.push(prefix);
        CubeTree::Leaf {
            index: cubes.len() - 1,
        }
    };
    if depth == 0 {
        return leaf(cubes, prefix);
    }
    if !establish_context(gen, assumptions, &prefix) {
        return leaf(cubes, prefix);
    }
    let split = pick_split(gen);
    gen.backtrack(0);
    let Some(var) = split else {
        return leaf(cubes, prefix);
    };
    // Saved-phase polarity first, so a satisfiable check tends to put
    // its model in the lowest-index cube (the adjudication winner).
    let lit = var.lit(gen.phase[var.index()]);
    let mut first_prefix = prefix.clone();
    first_prefix.push(lit);
    let mut second_prefix = prefix.clone();
    second_prefix.push(!lit);
    let first = Box::new(build_tree(gen, assumptions, first_prefix, depth - 1, cubes));
    let second = Box::new(build_tree(gen, assumptions, second_prefix, depth - 1, cubes));
    CubeTree::Split {
        prefix,
        first,
        second,
    }
}

/// Propagates `assumptions ++ prefix` as pseudo-decision levels from the
/// root. Returns `false` (leaving the solver backtracked to the root) if
/// the context conflicts under unit propagation alone.
fn establish_context(gen: &mut Solver, assumptions: &[Lit], prefix: &[Lit]) -> bool {
    gen.backtrack(0);
    if gen.propagate().is_some() {
        gen.ok = false;
        return false;
    }
    for &lit in assumptions.iter().chain(prefix.iter()) {
        match gen.lit_value(lit) {
            LBool::False => {
                gen.backtrack(0);
                return false;
            }
            LBool::True => continue,
            LBool::Undef => {
                gen.trail_lim.push(gen.trail.len());
                gen.enqueue(lit, None);
                if gen.propagate().is_some() {
                    gen.backtrack(0);
                    return false;
                }
            }
        }
    }
    true
}

/// Ternary-lookahead scoring over the top-VSIDS unassigned variables in
/// the current context: both polarities are probed one level deeper and
/// a candidate scores the product of the two propagation yields. A
/// probe that conflicts is a failed literal — asserting it is the
/// conquest solver's job, so the candidate simply scores zero here.
/// Returns the best-scoring variable (ties to the lowest index), or
/// `None` when nothing scores above zero.
fn pick_split(gen: &mut Solver) -> Option<Var> {
    let mut candidates: Vec<Var> = (0..gen.num_vars())
        .map(|i| Var::from_index(i))
        .filter(|v| {
            gen.assigns[v.index()] == LBool::Undef && !gen.eliminated[v.index()]
        })
        .collect();
    candidates.sort_by(|a, b| {
        gen.activity[b.index()]
            .partial_cmp(&gen.activity[a.index()])
            .expect("VSIDS activities are never NaN")
            .then(a.index().cmp(&b.index()))
    });
    candidates.truncate(CUBE_CANDIDATES);
    let context_level = gen.decision_level();
    let context_trail = gen.trail.len();
    let mut best: Option<(u64, Var)> = None;
    for v in candidates {
        if gen.assigns[v.index()] != LBool::Undef {
            continue; // assigned by an earlier probe? probes are undone — defensive
        }
        let mut yields = [0u64; 2];
        let mut failed = false;
        for (slot, lit) in [v.positive(), v.negative()].into_iter().enumerate() {
            gen.trail_lim.push(gen.trail.len());
            gen.enqueue(lit, None);
            let conflict = gen.propagate().is_some();
            yields[slot] = (gen.trail.len() - context_trail) as u64;
            gen.backtrack(context_level);
            if conflict {
                failed = true;
                break;
            }
        }
        if failed {
            continue;
        }
        let score = yields[0] * yields[1];
        if score > 0 && best.map_or(true, |(s, _)| score > s) {
            best = Some((score, v));
        }
    }
    best.map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use crate::proof::ProofStep;
    use crate::solver::Solver;
    use crate::types::{Lit, SolveResult, Var};

    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) -> Vec<Vec<Var>> {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        p
    }

    fn random_cnf(rng: &mut impl rand::Rng, num_vars: usize) -> Vec<Vec<(usize, bool)>> {
        let num_clauses = rng.gen_range(1..=25usize);
        (0..num_clauses)
            .map(|_| {
                let len = rng.gen_range(1..=3usize);
                (0..len)
                    .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect()
    }

    fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
        for bits in 0u64..(1 << num_vars) {
            let assignment = |v: usize| -> bool { (bits >> v) & 1 == 1 };
            if cnf
                .iter()
                .all(|clause| clause.iter().any(|&(v, pos)| assignment(v) == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn cube_agrees_with_brute_force_even_with_tiny_trigger() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0BE);
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=7usize);
            let cnf = random_cnf(&mut rng, num_vars);
            let mut s = Solver::new();
            s.set_cube(2);
            s.set_cube_trigger(1); // force the split machinery on
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            let expected = brute_force_sat(num_vars, &cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}: cnf {cnf:?}");
            if got {
                for clause in &cnf {
                    assert!(
                        clause.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos)),
                        "round {round}: model falsifies {clause:?}"
                    );
                }
                // The split must leave the solver usable and incremental.
                let pin = vars[0].lit(s.value(vars[0]).unwrap());
                assert_eq!(s.solve_with(&[pin]), SolveResult::Sat);
            }
        }
    }

    #[test]
    fn cube_results_are_identical_across_widths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..40 {
            let num_vars = rng.gen_range(3..=7usize);
            let cnf = random_cnf(&mut rng, num_vars);
            let build = |jobs: usize| {
                let mut s = Solver::new();
                s.set_cube(jobs);
                s.set_cube_trigger(1);
                let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
                for clause in &cnf {
                    let lits: Vec<Lit> =
                        clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                    s.add_clause(&lits);
                }
                let res = s.solve();
                (res, s.model().to_vec(), s.stats())
            };
            let (res1, model1, stats1) = build(1);
            for jobs in [2usize, 4] {
                let (res, model, stats) = build(jobs);
                assert_eq!(res, res1, "verdict must not depend on cube width");
                assert_eq!(model, model1, "model must not depend on cube width");
                assert_eq!(stats, stats1, "stats must not depend on cube width");
            }
        }
    }

    #[test]
    fn stitched_unsat_trace_certifies_under_assumptions() {
        // Pigeonhole under a guard assumption, forced through the cube
        // path: the stitched trace must still refute the assumptions by
        // unit propagation (the root spine is the negated-assumption
        // clause), which is exactly what the downstream checker probes.
        let mut s = Solver::new();
        s.enable_proof_logging();
        s.set_cube(2);
        s.set_cube_trigger(1);
        let g = s.new_var();
        let p: Vec<Vec<Var>> = (0..4)
            .map(|_| (0..3).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let mut lits: Vec<Lit> = vec![g.negative()];
            lits.extend(row.iter().map(|v| v.positive()));
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Unsat);
        assert!(s.stats().cubes_generated > 0, "check must actually cube");
        assert_eq!(s.stats().cubes_refuted, s.stats().cubes_generated);
        let steps = s.proof().expect("enabled").steps();
        // The root spine is the negated assumption: propagating g must
        // hit it, which is what certification's final probe relies on.
        assert!(
            steps
                .iter()
                .any(|st| *st == ProofStep::Learn(vec![g.negative()])),
            "stitched trace must end in the root spine clause"
        );
        // The solver stays usable: retiring the guard flips to SAT.
        s.add_clause(&[g.negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unassumed_unsat_through_cubes_poisons_the_solver() {
        let mut s = Solver::new();
        s.enable_proof_logging();
        s.set_cube(3);
        s.set_cube_trigger(1);
        pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // With nothing assumed, all-cubes-UNSAT refutes the formula
        // itself; the trace must end in the empty clause (the root
        // spine) and the solver must stay UNSAT forever.
        assert_eq!(
            s.proof().expect("enabled").steps().last(),
            Some(&ProofStep::Learn(Vec::new()))
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn within_budget_checks_match_the_monolithic_trajectory() {
        // With the default (large) trigger, easy checks never split and
        // the cube path is byte-identical to the width-1 portfolio.
        let build = |cube: usize| {
            let mut s = Solver::new();
            s.set_cube(cube);
            pigeonhole(&mut s, 4, 3);
            let res = s.solve();
            (res, s.stats().conflicts, s.stats().cubes_generated)
        };
        let (res0, conflicts0, _) = build(0);
        let (res1, conflicts1, cubes1) = build(1);
        assert_eq!(res0, res1);
        assert_eq!(conflicts0, conflicts1);
        assert_eq!(cubes1, 0, "an easy check must not cube");
    }

    #[test]
    fn import_clause_probes_and_attaches() {
        let mut s = Solver::new();
        s.enable_proof_logging();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        // a → c is implied (RUP): accepted, attached, Learn-logged.
        assert!(s.import_clause(&[a.negative(), c.positive()]));
        assert_eq!(s.stats().reuse_probed, 1);
        assert_eq!(s.stats().reuse_imported, 1);
        assert!(matches!(
            s.proof().expect("enabled").steps().last(),
            Some(ProofStep::Learn(_))
        ));
        // a → ¬c is not implied: probed, rejected, nothing logged.
        let len = s.proof_len();
        assert!(!s.import_clause(&[a.negative(), c.negative()]));
        assert_eq!(s.stats().reuse_probed, 2);
        assert_eq!(s.stats().reuse_imported, 1);
        assert_eq!(s.proof_len(), len);
        assert_eq!(s.solve(), SolveResult::Sat);
    }
}
