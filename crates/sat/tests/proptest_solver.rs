//! Property-based tests for the CDCL solver against a brute-force oracle:
//! plain solving, solving under assumptions, incremental clause addition,
//! and model validity.

use fastpath_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

type CnfSpec = Vec<Vec<(usize, bool)>>;

fn cnf_strategy() -> impl Strategy<Value = (usize, CnfSpec)> {
    (1usize..=9).prop_flat_map(|num_vars| {
        let clause = prop::collection::vec((0..num_vars, any::<bool>()), 1..=3);
        let cnf = prop::collection::vec(clause, 0..=25);
        (Just(num_vars), cnf)
    })
}

fn brute_force(num_vars: usize, cnf: &CnfSpec, fixed: &[(usize, bool)]) -> bool {
    'outer: for bits in 0u64..(1 << num_vars) {
        let assignment = |v: usize| (bits >> v) & 1 == 1;
        for &(v, polarity) in fixed {
            if assignment(v) != polarity {
                continue 'outer;
            }
        }
        if cnf
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| assignment(v) == pos))
        {
            return true;
        }
    }
    false
}

fn load(num_vars: usize, cnf: &CnfSpec) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in cnf {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        solver.add_clause(&lits);
    }
    (solver, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn solve_matches_brute_force((num_vars, cnf) in cnf_strategy()) {
        let (mut solver, vars) = load(num_vars, &cnf);
        let expected = brute_force(num_vars, &cnf, &[]);
        let got = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            for clause in &cnf {
                prop_assert!(clause.iter().any(|&(v, pos)| {
                    solver.value(vars[v]) == Some(pos)
                }), "model must satisfy every clause");
            }
        }
    }

    #[test]
    fn assumptions_match_brute_force(
        (num_vars, cnf) in cnf_strategy(),
        assumption_bits in any::<u64>(),
        assumption_mask in any::<u64>(),
    ) {
        let (mut solver, vars) = load(num_vars, &cnf);
        let fixed: Vec<(usize, bool)> = (0..num_vars)
            .filter(|v| (assumption_mask >> v) & 1 == 1)
            .map(|v| (v, (assumption_bits >> v) & 1 == 1))
            .collect();
        let assumptions: Vec<Lit> = fixed
            .iter()
            .map(|&(v, polarity)| vars[v].lit(polarity))
            .collect();
        let expected = brute_force(num_vars, &cnf, &fixed);
        let got = solver.solve_with(&assumptions) == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            for &(v, polarity) in &fixed {
                prop_assert_eq!(solver.value(vars[v]), Some(polarity));
            }
        }
        // The solver must remain reusable with different assumptions.
        let plain = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(plain, brute_force(num_vars, &cnf, &[]));
    }

    #[test]
    fn incremental_addition_is_equivalent_to_batch(
        (num_vars, cnf) in cnf_strategy(),
    ) {
        // Solve after each added clause; the final answer must equal the
        // batch answer, and satisfiability must be monotonically
        // non-increasing as clauses accumulate.
        let mut solver = Solver::new();
        let vars: Vec<Var> =
            (0..num_vars).map(|_| solver.new_var()).collect();
        let mut previous_sat = true;
        for (i, clause) in cnf.iter().enumerate() {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| vars[v].lit(pos))
                .collect();
            solver.add_clause(&lits);
            let sat = solver.solve() == SolveResult::Sat;
            prop_assert_eq!(sat, brute_force(num_vars, &cnf[..=i].to_vec(), &[]));
            prop_assert!(
                previous_sat || !sat,
                "satisfiability cannot come back after UNSAT"
            );
            previous_sat = sat;
        }
    }
}
