//! # fastpath-hfg
//!
//! HyperFlow Graph (HFG) construction and querying — the structural-analysis
//! leg of the FastPath hybrid verification flow (paper Sec. III-A / IV-A).
//!
//! The HFG is an over-approximate static model of information flow in an
//! RTL design: one node per signal, one labeled edge per flow scenario.
//! Because the abstraction never misses a real flow, an *empty* path query
//! `q(n_s, n_d) = ∅` proves that `sig_s` cannot influence `sig_d` — which
//! lets FastPath discharge whole designs (the paper's crypto accelerators)
//! without simulation or formal proof.
//!
//! # Examples
//!
//! ```
//! use fastpath_hfg::{extract_hfg, PathQuery};
//! use fastpath_rtl::ModuleBuilder;
//!
//! # fn main() -> Result<(), fastpath_rtl::RtlError> {
//! let mut b = ModuleBuilder::new("demo");
//! let secret = b.data_input("secret", 32);
//! let s = b.sig(secret);
//! let acc = b.reg("acc", 32, 0);
//! let acc_sig = b.sig(acc);
//! let sum = b.add(acc_sig, s);
//! b.set_next(acc, sum)?;
//! b.data_output("digest", acc_sig);
//! let count = b.reg("count", 4, 0);
//! let count_sig = b.sig(count);
//! let one = b.lit(4, 1);
//! let inc = b.add(count_sig, one);
//! b.set_next(count, inc)?;
//! let done = b.eq_lit(count_sig, 15);
//! let done_out = b.control_output("done", done);
//! let module = b.build()?;
//!
//! let hfg = extract_hfg(&module);
//! let query = PathQuery::new(&hfg);
//! // The secret only reaches the digest, never the `done` handshake:
//! assert!(query.no_flow_possible(&[secret], &[done_out]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod extract;
mod graph;
mod query;

pub use extract::{extract_hfg, extract_hfg_with, ExtractOptions};
pub use graph::{Edge, EdgeId, FlowKind, Guard, Hfg, HfgStats};
pub use query::{HfgPath, PathQuery, QueryOptions};
