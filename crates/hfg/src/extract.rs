//! HFG extraction: static analysis of a [`Module`]'s driver expressions.
//!
//! For every driven signal we walk its driver expression and record:
//!
//! - an **explicit** edge from each signal whose value reaches the driven
//!   signal through operators, guarded by the stack of mux conditions that
//!   enclose the occurrence;
//! - an **implicit** edge from each signal appearing in a mux select
//!   condition, because the selector steers which value propagates (classic
//!   implicit flow / control dependence).
//!
//! The analysis is purely structural: no reachability reasoning, no constant
//! propagation beyond what hash-consing already folded. It therefore
//! over-approximates flows — the soundness direction FastPath needs.

use crate::graph::{Edge, EdgeId, FlowKind, Guard, Hfg};
use fastpath_rtl::{Expr, ExprId, Module, SignalId};
use std::collections::HashSet;

/// Options controlling HFG extraction.
#[derive(Clone, Copy, Debug)]
pub struct ExtractOptions {
    /// Maximum mux-nesting depth for which guards are recorded. Deeper
    /// guards are dropped (making the edge *less* conditional, which keeps
    /// the over-approximation sound while bounding edge labels).
    pub max_guard_depth: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_guard_depth: 16,
        }
    }
}

/// Extracts the HyperFlow Graph of a module with default options.
///
/// # Examples
///
/// ```
/// use fastpath_hfg::extract_hfg;
/// use fastpath_rtl::ModuleBuilder;
///
/// # fn main() -> Result<(), fastpath_rtl::RtlError> {
/// let mut b = ModuleBuilder::new("m");
/// let a = b.input("a", 8);
/// let a_sig = b.sig(a);
/// b.output("out", a_sig);
/// let module = b.build()?;
/// let hfg = extract_hfg(&module);
/// assert_eq!(hfg.edge_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn extract_hfg(module: &Module) -> Hfg {
    extract_hfg_with(module, ExtractOptions::default())
}

/// Extracts the HyperFlow Graph with explicit options.
pub fn extract_hfg_with(module: &Module, options: ExtractOptions) -> Hfg {
    let mut collector = Collector {
        module,
        options,
        edges: Vec::new(),
        dedup: HashSet::new(),
    };
    for (dst, _) in module.signals() {
        if let Some(driver) = module.driver(dst) {
            let mut guards = Vec::new();
            collector.walk(driver, dst, &mut guards);
        }
    }
    Hfg::new(module, collector.edges)
}

struct Collector<'m> {
    module: &'m Module,
    options: ExtractOptions,
    edges: Vec<Edge>,
    dedup: HashSet<(SignalId, SignalId, Vec<Guard>, FlowKind)>,
}

impl Collector<'_> {
    fn emit(&mut self, src: SignalId, dst: SignalId, guards: &[Guard], kind: FlowKind) {
        let key = (src, dst, guards.to_vec(), kind);
        if self.dedup.insert(key) {
            let id = EdgeId(self.edges.len() as u32);
            self.edges.push(Edge {
                id,
                src,
                dst,
                guards: guards.to_vec(),
                kind,
            });
        }
    }

    fn walk(&mut self, expr: ExprId, dst: SignalId, guards: &mut Vec<Guard>) {
        match self.module.expr(expr) {
            Expr::Const(_) => {}
            Expr::Signal(s) => {
                self.emit(*s, dst, guards, FlowKind::Explicit);
            }
            Expr::Unary(_, a)
            | Expr::Slice { arg: a, .. }
            | Expr::Zext { arg: a, .. }
            | Expr::Sext { arg: a, .. } => self.walk(*a, dst, guards),
            Expr::Binary(_, a, b) | Expr::Concat(a, b) => {
                self.walk(*a, dst, guards);
                self.walk(*b, dst, guards);
            }
            Expr::Mux {
                cond,
                then_expr,
                else_expr,
            } => {
                // Implicit flows: every signal in the selector's support
                // steers the result.
                for s in self.module.expr_supports(*cond) {
                    self.emit(s, dst, guards, FlowKind::Implicit);
                }
                let (cond, then_expr, else_expr) = (*cond, *then_expr, *else_expr);
                if guards.len() < self.options.max_guard_depth {
                    guards.push(Guard {
                        cond,
                        polarity: true,
                    });
                    self.walk(then_expr, dst, guards);
                    guards.pop();
                    guards.push(Guard {
                        cond,
                        polarity: false,
                    });
                    self.walk(else_expr, dst, guards);
                    guards.pop();
                } else {
                    // Depth cap: drop the new guard, keep soundness.
                    self.walk(then_expr, dst, guards);
                    self.walk(else_expr, dst, guards);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn explicit_edge_from_operand() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let a_sig = b.sig(a);
        let c_sig = b.sig(c);
        let sum = b.add(a_sig, c_sig);
        let out = b.output("out", sum);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        let srcs: Vec<SignalId> = hfg.incoming(out).map(|e| e.src).collect();
        assert!(srcs.contains(&a));
        assert!(srcs.contains(&c));
        assert_eq!(hfg.edge_count(), 2);
    }

    #[test]
    fn implicit_edge_from_mux_selector() {
        let mut b = ModuleBuilder::new("m");
        let sel = b.input("sel", 1);
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let sel_sig = b.sig(sel);
        let a_sig = b.sig(a);
        let c_sig = b.sig(c);
        let muxed = b.mux(sel_sig, a_sig, c_sig);
        let out = b.output("out", muxed);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        let sel_edge = hfg
            .incoming(out)
            .find(|e| e.src == sel)
            .expect("selector edge");
        assert_eq!(sel_edge.kind, FlowKind::Implicit);
        let a_edge = hfg.incoming(out).find(|e| e.src == a).expect("data edge");
        assert_eq!(a_edge.kind, FlowKind::Explicit);
        assert_eq!(a_edge.guards.len(), 1);
        assert!(a_edge.guards[0].polarity);
        let c_edge = hfg.incoming(out).find(|e| e.src == c).expect("data edge");
        assert!(!c_edge.guards[0].polarity);
    }

    #[test]
    fn constants_produce_no_edges() {
        let mut b = ModuleBuilder::new("m");
        let k = b.lit(8, 42);
        b.output("out", k);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        assert_eq!(hfg.edge_count(), 0);
    }

    #[test]
    fn register_next_state_produces_edges() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 4);
        let d_sig = b.sig(d);
        let q = b.reg("q", 4, 0);
        b.set_next(q, d_sig).expect("drive");
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        assert!(hfg.incoming(q).any(|e| e.src == d));
    }

    #[test]
    fn guard_depth_cap_drops_guards_not_edges() {
        let mut b = ModuleBuilder::new("m");
        let x = b.input("x", 1);
        let x_sig = b.sig(x);
        let mut expr = x_sig;
        let sels: Vec<_> = (0..5)
            .map(|i| {
                let s = b.input(&format!("sel{i}"), 1);
                b.sig(s)
            })
            .collect();
        let zero = b.bit_lit(false);
        for &sel in &sels {
            expr = b.mux(sel, expr, zero);
        }
        let out = b.output("out", expr);
        let m = b.build().expect("valid");
        let hfg = extract_hfg_with(&m, ExtractOptions { max_guard_depth: 2 });
        let edge = hfg
            .incoming(out)
            .find(|e| e.src == x)
            .expect("flow survives the cap");
        assert!(edge.guards.len() <= 2);
    }

    #[test]
    fn stats_count_kinds() {
        let mut b = ModuleBuilder::new("m");
        let sel = b.input("sel", 1);
        let a = b.input("a", 8);
        let sel_sig = b.sig(sel);
        let a_sig = b.sig(a);
        let zero = b.lit(8, 0);
        let muxed = b.mux(sel_sig, a_sig, zero);
        b.output("out", muxed);
        let m = b.build().expect("valid");
        let stats = extract_hfg(&m).stats();
        assert_eq!(stats.explicit_edges, 1);
        assert_eq!(stats.implicit_edges, 1);
        assert_eq!(stats.guarded_edges, 1);
    }
}
