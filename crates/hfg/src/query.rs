//! HFG path queries.
//!
//! [`PathQuery`] implements the paper's `q(n_s, n_d)` primitive: it returns
//! the set of HFG paths that could *potentially* carry information from a
//! source signal to a destination signal. An empty result is a proof of
//! non-interference for that pair (no false negatives); a non-empty result
//! requires further analysis (simulation / formal) because paths may be
//! unrealizable (false positives).

use crate::graph::{EdgeId, Hfg};
use fastpath_rtl::SignalId;
use std::collections::VecDeque;

/// A single HFG path: a finite sequence of edges `(e_1, …, e_k)` leading
/// from the query source to the query destination.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HfgPath {
    /// Edge ids in source-to-destination order.
    pub edges: Vec<EdgeId>,
}

impl HfgPath {
    /// The number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the path has no edges (source equals destination).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The signals visited, in order, given the graph the path came from.
    pub fn signals(&self, hfg: &Hfg) -> Vec<SignalId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        if let Some(&first) = self.edges.first() {
            out.push(hfg.edge(first).src);
        }
        for &e in &self.edges {
            out.push(hfg.edge(e).dst);
        }
        out
    }
}

/// Limits for path enumeration; reachability checks are never limited.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Maximum number of paths to enumerate.
    pub max_paths: usize,
    /// Maximum path length in edges.
    pub max_length: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            max_paths: 64,
            max_length: 64,
        }
    }
}

/// Path-query engine over one [`Hfg`].
///
/// # Examples
///
/// ```
/// use fastpath_hfg::{extract_hfg, PathQuery};
/// use fastpath_rtl::ModuleBuilder;
///
/// # fn main() -> Result<(), fastpath_rtl::RtlError> {
/// let mut b = ModuleBuilder::new("m");
/// let secret = b.data_input("secret", 8);
/// let ready_in = b.control_input("ready_in", 1);
/// let r = b.sig(ready_in);
/// b.control_output("ready_out", r);
/// let s = b.sig(secret);
/// b.data_output("result", s);
/// let module = b.build()?;
/// let hfg = extract_hfg(&module);
/// let query = PathQuery::new(&hfg);
/// let ready_out = module.signal_by_name("ready_out").expect("exists");
/// // No structural path secret -> ready_out: proven non-interferent.
/// assert!(!query.reachable(secret, ready_out));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PathQuery<'g> {
    hfg: &'g Hfg,
}

impl<'g> PathQuery<'g> {
    /// Creates a query engine for the given graph.
    pub fn new(hfg: &'g Hfg) -> Self {
        PathQuery { hfg }
    }

    /// `true` iff at least one HFG path connects `src` to `dst`.
    ///
    /// A `false` answer is a *guarantee* that `src` cannot influence `dst`
    /// (the HFG never under-approximates); `true` is only a possibility.
    pub fn reachable(&self, src: SignalId, dst: SignalId) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.hfg.node_count()];
        seen[src.index()] = true;
        let mut queue = VecDeque::from([src]);
        while let Some(node) = queue.pop_front() {
            for edge in self.hfg.outgoing(node) {
                if edge.dst == dst {
                    return true;
                }
                if !seen[edge.dst.index()] {
                    seen[edge.dst.index()] = true;
                    queue.push_back(edge.dst);
                }
            }
        }
        false
    }

    /// All signals reachable from `src` (excluding `src` itself unless it
    /// lies on a cycle).
    pub fn reachable_set(&self, src: SignalId) -> Vec<SignalId> {
        let mut seen = vec![false; self.hfg.node_count()];
        let mut queue = VecDeque::from([src]);
        let mut visited_src = false;
        let mut out = Vec::new();
        while let Some(node) = queue.pop_front() {
            for edge in self.hfg.outgoing(node) {
                let i = edge.dst.index();
                if edge.dst == src {
                    if !visited_src {
                        visited_src = true;
                        out.push(src);
                    }
                    continue;
                }
                if !seen[i] {
                    seen[i] = true;
                    out.push(edge.dst);
                    queue.push_back(edge.dst);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The multi-source reachable cone: every signal reachable from *any*
    /// of `sources`, **including the sources themselves**, sorted by
    /// signal id.
    ///
    /// With `sources = X_D` this is the complete set of signals a
    /// confidential data input could possibly influence. Because the HFG
    /// never under-approximates, any signal *outside* the cone provably
    /// cannot carry confidential information — in particular, state
    /// outside the cone can never diverge between the two instances of
    /// the UPEC 2-safety model (only `DataIn` inputs differ there, and
    /// everything the cone excludes is a function of shared values and
    /// cone-free state alone). The differential fuzzing oracle leans on
    /// exactly this property.
    pub fn reachable_cone(&self, sources: &[SignalId]) -> Vec<SignalId> {
        let mut seen = vec![false; self.hfg.node_count()];
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        for &s in sources {
            if !seen[s.index()] {
                seen[s.index()] = true;
                out.push(s);
                queue.push_back(s);
            }
        }
        while let Some(node) = queue.pop_front() {
            for edge in self.hfg.outgoing(node) {
                let i = edge.dst.index();
                if !seen[i] {
                    seen[i] = true;
                    out.push(edge.dst);
                    queue.push_back(edge.dst);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The paper's `q(n_s, n_d)`: enumerates simple paths from `src` to
    /// `dst`, bounded by `options` (the bound only truncates enumeration;
    /// use [`reachable`](Self::reachable) for the exact emptiness check).
    pub fn paths(&self, src: SignalId, dst: SignalId, options: QueryOptions) -> Vec<HfgPath> {
        let mut out = Vec::new();
        let mut on_path = vec![false; self.hfg.node_count()];
        let mut stack = Vec::new();
        on_path[src.index()] = true;
        self.dfs(src, dst, &options, &mut on_path, &mut stack, &mut out);
        out
    }

    fn dfs(
        &self,
        node: SignalId,
        dst: SignalId,
        options: &QueryOptions,
        on_path: &mut Vec<bool>,
        stack: &mut Vec<EdgeId>,
        out: &mut Vec<HfgPath>,
    ) {
        if out.len() >= options.max_paths || stack.len() >= options.max_length {
            return;
        }
        for edge in self.hfg.outgoing(node) {
            if out.len() >= options.max_paths {
                return;
            }
            stack.push(edge.id);
            if edge.dst == dst {
                out.push(HfgPath {
                    edges: stack.clone(),
                });
            } else if !on_path[edge.dst.index()] {
                on_path[edge.dst.index()] = true;
                self.dfs(edge.dst, dst, options, on_path, stack, out);
                on_path[edge.dst.index()] = false;
            }
            stack.pop();
        }
    }

    /// FastPath's early-exit condition (Sec. IV-A): `true` iff **no** pair
    /// of a data input and a control output is structurally connected, i.e.
    /// `∀ n_x ∈ X_D, ∀ n_y ∈ Y_C : q(n_x, n_y) = ∅`.
    pub fn no_flow_possible(&self, data_inputs: &[SignalId], control_outputs: &[SignalId]) -> bool {
        data_inputs.iter().all(|&x| {
            let reach = self.reachable_set(x);
            control_outputs
                .iter()
                .all(|y| !reach.contains(y) && *y != x)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_hfg;
    use fastpath_rtl::ModuleBuilder;

    fn chain_module() -> (fastpath_rtl::Module, Vec<SignalId>) {
        // a -> r1 -> r2 -> out, plus an isolated input `iso`.
        let mut b = ModuleBuilder::new("chain");
        let a = b.input("a", 4);
        let iso = b.input("iso", 4);
        let a_sig = b.sig(a);
        let r1 = b.reg("r1", 4, 0);
        b.set_next(r1, a_sig).expect("drive");
        let r1_sig = b.sig(r1);
        let r2 = b.reg("r2", 4, 0);
        b.set_next(r2, r1_sig).expect("drive");
        let r2_sig = b.sig(r2);
        let out = b.output("out", r2_sig);
        let iso_sig = b.sig(iso);
        let out_iso = b.output("out_iso", iso_sig);
        let m = b.build().expect("valid");
        (m, vec![a, r1, r2, out, iso, out_iso])
    }

    #[test]
    fn reachability_along_chain() {
        let (m, ids) = chain_module();
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        let (a, out, iso) = (ids[0], ids[3], ids[4]);
        assert!(q.reachable(a, out));
        assert!(!q.reachable(a, iso));
        assert!(!q.reachable(out, a));
    }

    #[test]
    fn paths_enumerates_the_chain() {
        let (m, ids) = chain_module();
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        let paths = q.paths(ids[0], ids[3], QueryOptions::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
        let sigs = paths[0].signals(&hfg);
        assert_eq!(sigs, vec![ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn path_limit_respected() {
        // Diamond: src feeds out through two parallel wires.
        let mut b = ModuleBuilder::new("diamond");
        let a = b.input("a", 4);
        let a_sig = b.sig(a);
        let w1 = b.wire("w1", a_sig);
        let w2 = b.wire("w2", a_sig);
        let w1_sig = b.sig(w1);
        let w2_sig = b.sig(w2);
        let sum = b.add(w1_sig, w2_sig);
        let out = b.output("out", sum);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        let all = q.paths(a, out, QueryOptions::default());
        assert_eq!(all.len(), 2);
        let capped = q.paths(
            a,
            out,
            QueryOptions {
                max_paths: 1,
                max_length: 64,
            },
        );
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn early_exit_condition() {
        let mut b = ModuleBuilder::new("sep");
        let secret = b.data_input("secret", 8);
        let go = b.control_input("go", 1);
        let go_sig = b.sig(go);
        let busy = b.reg("busy", 1, 0);
        b.set_next(busy, go_sig).expect("drive");
        let busy_sig = b.sig(busy);
        let done = b.control_output("done", busy_sig);
        let s_sig = b.sig(secret);
        b.data_output("result", s_sig);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        assert!(q.no_flow_possible(&[secret], &[done]));
        assert!(!q.no_flow_possible(&[go], &[done]));
    }

    #[test]
    fn reachable_cone_unions_sources_and_closures() {
        let (m, ids) = chain_module();
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        let (a, r1, r2, out, iso, out_iso) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        // Single source: the source itself plus its downstream chain.
        let cone = q.reachable_cone(&[a]);
        assert_eq!(cone, {
            let mut v = vec![a, r1, r2, out];
            v.sort_unstable();
            v
        });
        assert!(!cone.contains(&iso));
        // Multi-source: the union, sorted, deduplicated.
        let both = q.reachable_cone(&[a, iso, a]);
        assert_eq!(both.len(), 6);
        assert!(both.contains(&out_iso));
        assert!(both.windows(2).all(|w| w[0] < w[1]));
        // Empty sources: empty cone.
        assert!(q.reachable_cone(&[]).is_empty());
        // Consistency with the single-source query.
        for &s in &[a, iso] {
            for d in q.reachable_set(s) {
                assert!(q.reachable_cone(&[a, iso]).contains(&d));
            }
        }
    }

    #[test]
    fn cycles_do_not_hang_queries() {
        // Two registers feeding each other (sequential cycle is legal).
        let mut b = ModuleBuilder::new("cyc");
        let r1 = b.reg("r1", 4, 0);
        let r2 = b.reg("r2", 4, 1);
        let r1_sig = b.sig(r1);
        let r2_sig = b.sig(r2);
        b.set_next(r1, r2_sig).expect("drive");
        b.set_next(r2, r1_sig).expect("drive");
        let out = b.output("out", r1_sig);
        let m = b.build().expect("valid");
        let hfg = extract_hfg(&m);
        let q = PathQuery::new(&hfg);
        assert!(q.reachable(r1, out));
        assert!(q.reachable(r1, r1)); // on a cycle
        let paths = q.paths(r2, out, QueryOptions::default());
        assert!(!paths.is_empty());
        assert!(q.reachable_set(r1).contains(&r1));
    }
}
