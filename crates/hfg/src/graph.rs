//! The HyperFlow Graph data model.
//!
//! An HFG `G(N, E)` (paper Sec. III-A, after Meza & Kastner) has one node
//! per hierarchical design signal and directed, labeled edges for *flow
//! scenarios*: an edge `e(ui, n_s, n_d, C)` states that information can flow
//! from `sig_s` to `sig_d` whenever all guarding conditions in `C` hold
//! simultaneously. An empty guard set means the flow is always active.
//!
//! The graph is an *over-approximation* of real information flow: path
//! queries can return false positives but never false negatives, which is
//! exactly the property FastPath's early-exit check relies on.

use fastpath_rtl::{ExprId, Module, SignalId};
use std::fmt;

/// Unique identifier of an HFG edge (the paper's `ui`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The raw index of this edge in the graph's edge table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether an edge carries an explicit (dataflow) or implicit
/// (control-dependence) flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlowKind {
    /// The source's *value* feeds the destination through an operator.
    Explicit,
    /// The source steers *which* value reaches the destination (it appears
    /// in a mux select or enable condition).
    Implicit,
}

/// A guarding condition: the flow is active only when the referenced 1-bit
/// condition expression evaluates to `polarity`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Guard {
    /// The 1-bit condition expression in the module's arena.
    pub cond: ExprId,
    /// Required truth value of the condition.
    pub polarity: bool,
}

/// A directed, labeled HFG edge `e(ui, n_s, n_d, C)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Unique identifier.
    pub id: EdgeId,
    /// Source signal `n_s`.
    pub src: SignalId,
    /// Destination signal `n_d`.
    pub dst: SignalId,
    /// Guarding conditions `C`; empty means always active.
    pub guards: Vec<Guard>,
    /// Explicit or implicit flow.
    pub kind: FlowKind,
}

/// A HyperFlow Graph over the signals of one [`Module`].
///
/// Nodes are implicit (every signal is a node); edges are stored in a table
/// with per-node adjacency indices for fast traversal.
#[derive(Clone, Debug)]
pub struct Hfg {
    module_name: String,
    signal_count: usize,
    edges: Vec<Edge>,
    /// Outgoing edge ids per source signal.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per destination signal.
    in_edges: Vec<Vec<EdgeId>>,
}

impl Hfg {
    pub(crate) fn new(module: &Module, edges: Vec<Edge>) -> Self {
        let signal_count = module.signal_count();
        let mut out_edges = vec![Vec::new(); signal_count];
        let mut in_edges = vec![Vec::new(); signal_count];
        for edge in &edges {
            out_edges[edge.src.index()].push(edge.id);
            in_edges[edge.dst.index()].push(edge.id);
        }
        Hfg {
            module_name: module.name().to_string(),
            signal_count,
            edges,
            out_edges,
            in_edges,
        }
    }

    /// The name of the module this graph was extracted from.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// The number of nodes (= signals in the module).
    pub fn node_count(&self) -> usize {
        self.signal_count
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Looks up an edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of a signal.
    pub fn outgoing(&self, src: SignalId) -> impl Iterator<Item = &Edge> {
        self.out_edges[src.index()].iter().map(|&id| self.edge(id))
    }

    /// Incoming edges of a signal.
    pub fn incoming(&self, dst: SignalId) -> impl Iterator<Item = &Edge> {
        self.in_edges[dst.index()].iter().map(|&id| self.edge(id))
    }

    /// Summary statistics for reports.
    pub fn stats(&self) -> HfgStats {
        let implicit = self
            .edges
            .iter()
            .filter(|e| e.kind == FlowKind::Implicit)
            .count();
        let guarded = self.edges.iter().filter(|e| !e.guards.is_empty()).count();
        HfgStats {
            nodes: self.signal_count,
            edges: self.edges.len(),
            implicit_edges: implicit,
            explicit_edges: self.edges.len() - implicit,
            guarded_edges: guarded,
        }
    }

    /// Renders the graph in Graphviz DOT format (signal indices as labels).
    pub fn to_dot(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.module_name);
        for (id, sig) in module.signals() {
            let _ = writeln!(s, "  n{} [label=\"{}\"];", id.index(), sig.name);
        }
        for e in &self.edges {
            let style = match e.kind {
                FlowKind::Explicit => "solid",
                FlowKind::Implicit => "dashed",
            };
            let _ = writeln!(
                s,
                "  n{} -> n{} [style={style}, label=\"{}g\"];",
                e.src.index(),
                e.dst.index(),
                e.guards.len()
            );
        }
        s.push('}');
        s
    }
}

/// Aggregate counts describing an [`Hfg`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HfgStats {
    /// Number of nodes (signals).
    pub nodes: usize,
    /// Total number of edges.
    pub edges: usize,
    /// Edges carrying implicit (control) flows.
    pub implicit_edges: usize,
    /// Edges carrying explicit (data) flows.
    pub explicit_edges: usize,
    /// Edges with at least one guard condition.
    pub guarded_edges: usize,
}

impl fmt::Display for HfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges ({} explicit, {} implicit, {} guarded)",
            self.nodes, self.edges, self.explicit_edges, self.implicit_edges, self.guarded_edges
        )
    }
}
