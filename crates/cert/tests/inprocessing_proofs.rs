//! Certification of traces produced by an *inprocessing* solver.
//!
//! The inprocessing passes (root simplification, subsumption /
//! self-subsuming resolution, vivification, bounded variable
//! elimination) rewrite the clause database mid-search, so their DRUP
//! obligations are subtler than plain conflict-analysis learns: original
//! clauses get `Delete`d, strengthened replacements must be `Learn`ed
//! *before* the original disappears, and BVE detaches originals without
//! logging deletions at all (the checker keeps them — RUP is monotone).
//! These tests pin that contract from the checker's side: genuine traces
//! certify, DIMACS/DRUP artifacts round-trip, and a planted *unsound*
//! elimination is rejected.

use fastpath_cert::artifacts::proof_to_drup;
use fastpath_cert::{check_model, check_unsat_certificate, CertError, Checker};
use fastpath_sat::{parse_dimacs, Cnf, Lit, ProofStep, SolveResult, Solver, Var};

/// Pigeonhole: `holes + 1` pigeons into `holes` holes — hard enough to
/// drive restarts (and therefore inprocessing passes) before UNSAT.
fn add_pigeonhole(s: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let vars: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &vars {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    for (i, row_i) in vars.iter().enumerate() {
        for row_j in &vars[i + 1..] {
            for (a, b) in row_i.iter().zip(row_j) {
                s.add_clause(&[a.negative(), b.negative()]);
            }
        }
    }
}

/// An UNSAT solve whose trace provably contains inprocessing deletions:
/// a root-satisfied clause and a root-strippable clause ride along with
/// a pigeonhole core that forces restarts. Returns the solver plus the
/// two side clauses.
fn inprocessed_unsat_solver() -> (Solver, Vec<Lit>, Vec<Lit>) {
    let mut s = Solver::new();
    s.enable_proof_logging();
    // Fire inprocessing on the first eligible restart instead of after
    // the default 4096 conflicts — the pigeonhole core below conflicts
    // a few hundred times, enough for restarts but not for the default.
    s.set_inprocess_interval(256);
    let u = s.new_var();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    let d = s.new_var();
    // Added while `u` is unassigned, so both enter the clause database.
    let satisfied = vec![u.positive(), a.positive(), b.positive()];
    let strippable = vec![u.negative(), c.positive(), d.positive()];
    s.add_clause(&satisfied);
    s.add_clause(&strippable);
    // Now `u` becomes a root unit: `satisfied` is satisfied at the root
    // and `strippable` carries a root-false literal. The first
    // inprocessing pass must delete the former and strengthen the
    // latter to (c | d).
    s.add_clause(&[u.positive()]);
    add_pigeonhole(&mut s, 6);
    assert_eq!(s.solve(), SolveResult::Unsat);
    (s, satisfied, strippable)
}

fn normalized(lits: &[Lit]) -> Vec<Lit> {
    let mut v = lits.to_vec();
    v.sort_unstable();
    v
}

#[test]
fn inprocessed_unsat_proof_certifies_and_deletes_originals() {
    let (s, satisfied, strippable) = inprocessed_unsat_solver();
    let steps = s.proof().expect("logging on").steps();

    // The trace really exercised inprocessing deletions of *original*
    // clauses, not just learnt-clause reduction.
    let deleted: Vec<&ProofStep> = steps
        .iter()
        .filter(|st| matches!(st, ProofStep::Delete(_)))
        .collect();
    assert!(!deleted.is_empty(), "trace must contain deletions");
    assert!(
        deleted
            .iter()
            .any(|st| normalized(st.lits()) == normalized(&satisfied)),
        "root-satisfied original must be Delete-logged"
    );
    assert!(
        deleted
            .iter()
            .any(|st| normalized(st.lits()) == normalized(&strippable)),
        "strengthened original must be Delete-logged"
    );
    // ... and the strengthened replacement (c | d) was learnt BEFORE the
    // original was deleted, so the checker can justify it.
    let stripped: Vec<Lit> = strippable
        .iter()
        .copied()
        .filter(|l| *l != strippable[0])
        .collect();
    let learn_pos = steps
        .iter()
        .position(|st| matches!(st, ProofStep::Learn(l) if normalized(l) == normalized(&stripped)))
        .expect("strengthened clause is Learn-logged");
    let delete_pos = steps
        .iter()
        .position(
            |st| matches!(st, ProofStep::Delete(l) if normalized(l) == normalized(&strippable)),
        )
        .expect("original is Delete-logged");
    assert!(learn_pos < delete_pos, "Learn(strengthened) before Delete");

    // The independent checker certifies the whole inprocessed trace.
    let stats = check_unsat_certificate(steps, &[]).expect("inprocessed proof certifies");
    assert!(stats.learns > 0);
    assert!(stats.deletions > 0, "checker applied the deletions");
}

#[test]
fn dimacs_drup_artifacts_roundtrip_with_inprocessing() {
    let (s, _, _) = inprocessed_unsat_solver();
    let steps = s.proof().expect("logging on").steps();

    // DIMACS side: the axiom stream survives the writer⇄parser loop and
    // stays UNSAT when re-solved from scratch (by a solver that will
    // make its own, different inprocessing decisions).
    let cnf = Cnf::from_steps(steps, &[]);
    let reparsed = parse_dimacs(&cnf.to_dimacs()).expect("writer output parses");
    assert_eq!(reparsed, cnf, "DIMACS round trip");
    assert_eq!(reparsed.into_solver().solve(), SolveResult::Unsat);

    // DRUP side: deletions appear as `d` lines, the proof terminates in
    // the empty clause, and every non-deletion line is a Learn step.
    let drup = proof_to_drup(steps, &[]);
    assert!(drup.lines().any(|l| l.starts_with("d ")), "has d-lines");
    assert_eq!(drup.lines().last(), Some("0"), "ends with empty clause");
    let learns = steps
        .iter()
        .filter(|st| matches!(st, ProofStep::Learn(l) if !l.is_empty()))
        .count();
    let clause_lines = drup
        .lines()
        .filter(|l| !l.starts_with("d ") && *l != "0")
        .count();
    assert_eq!(clause_lines, learns, "one DRUP line per learnt clause");
}

#[test]
fn planted_unsound_elimination_is_rejected() {
    // A fraudulent "variable elimination" of `a`: the genuine resolvent
    // of (a|b) and (!a|c) on `a` is (b|c), but the planted trace claims
    // the stronger (c) — exactly the kind of bug an unsound BVE
    // implementation would produce. The checker's RUP probe must refuse
    // it: assuming !c propagates !a (from !a|c) and b (from a|b) with no
    // conflict.
    let a = Var::from_index(0);
    let b = Var::from_index(1);
    let c = Var::from_index(2);
    let steps = vec![
        ProofStep::Axiom(vec![a.positive(), b.positive()]),
        ProofStep::Axiom(vec![a.negative(), c.positive()]),
        ProofStep::Learn(vec![c.positive()]),
    ];
    match check_unsat_certificate(&steps, &[c.negative()]) {
        Err(CertError::LearnNotRup { step, clause }) => {
            assert_eq!(step, 2);
            assert_eq!(clause, vec![c.positive()]);
        }
        other => panic!("unsound resolvent must be rejected, got {other:?}"),
    }

    // Ordering fraud: the true resolvent (b|c) logged only AFTER its
    // parent (a|b) was deleted is no longer RUP — the checker enforces
    // the Learn-before-Delete discipline BVE and strengthening rely on.
    let steps = vec![
        ProofStep::Axiom(vec![a.positive(), b.positive()]),
        ProofStep::Axiom(vec![a.negative(), c.positive()]),
        ProofStep::Delete(vec![a.positive(), b.positive()]),
        ProofStep::Learn(vec![b.positive(), c.positive()]),
    ];
    let mut checker = Checker::new();
    assert!(
        matches!(
            checker.feed(&steps),
            Err(CertError::LearnNotRup { step: 3, .. })
        ),
        "resolvent after parent deletion must fail its RUP probe"
    );
}

#[test]
fn models_with_eliminated_variables_pass_the_axiom_check() {
    // BVE detaches original clauses without Delete-logging them, so a
    // reconstructed model must still satisfy the FULL axiom stream —
    // including clauses over eliminated variables. Random hard-but-SAT
    // 3-SAT cores drive enough conflicts for inprocessing to fire, and
    // dangling single-occurrence variables guarantee elimination
    // candidates.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut sat_cases = 0u32;
    let mut eliminated_cases = 0u32;
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let mut s = Solver::new();
        s.enable_proof_logging();
        s.set_inprocess_interval(64);
        let num_vars = 150usize;
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        for _ in 0..(num_vars * 42 / 10) {
            let lits: Vec<Lit> = (0..3)
                .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                .collect();
            s.add_clause(&lits);
        }
        // Dangling variables: each appears in exactly one clause, one
        // polarity — zero resolvents, always profitable to eliminate.
        for _ in 0..6 {
            let v = s.new_var();
            let x = vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5));
            s.add_clause(&[v.positive(), x]);
        }
        if s.solve() != SolveResult::Sat {
            // UNSAT instances certify too — the trace now interleaves
            // subsumption deletions and unlogged BVE detachments.
            let steps = s.proof().expect("logging on").steps();
            check_unsat_certificate(steps, &[])
                .unwrap_or_else(|e| panic!("seed {seed}: inprocessed proof rejected: {e}"));
            continue;
        }
        sat_cases += 1;
        if s.stats().eliminated_vars > 0 {
            eliminated_cases += 1;
        }
        let steps = s.proof().expect("logging on").steps();
        let model = s.model().to_vec();
        check_model(steps, &[], &model)
            .unwrap_or_else(|e| panic!("seed {seed}: reconstructed model rejected: {e}"));
    }
    assert!(sat_cases > 0, "some instances must be satisfiable");
    assert!(
        eliminated_cases > 0,
        "at least one SAT case must have exercised variable elimination"
    );
}
