//! # fastpath-cert
//!
//! Independent certification of `fastpath-sat` verdicts.
//!
//! Every "proven data-oblivious" verdict in the FastPath reproduction rests
//! on an UNSAT answer from the home-grown CDCL solver. This crate closes
//! that trust gap: the solver emits a DRUP-style proof trace
//! ([`fastpath_sat::Proof`]), and this crate replays it with a **forward
//! unit-propagation RUP checker** that shares *none* of the solver's data
//! structures — different clause storage, different propagation scheme
//! (occurrence lists with non-false-literal counters instead of two watched
//! literals), different assignment representation. A correlated bug would
//! have to be independently implemented twice to slip through.
//!
//! Three checks are offered:
//!
//! - [`check_unsat_certificate`] replays a trace prefix and certifies that
//!   the formula is unsatisfiable under the given assumptions — each
//!   learnt clause is verified to have the RUP property (assume its
//!   negation, unit-propagate, reach a conflict) before being admitted,
//!   so every admitted clause is a logical consequence of the axioms.
//! - [`check_model`] certifies a SAT answer: the returned assignment must
//!   satisfy every axiom clause and every assumption.
//! - [`Checker`] is the incremental form: a long-lived UPEC engine feeds
//!   each check's new trace steps exactly once, avoiding quadratic
//!   re-replay across the hundreds of incremental `solve` calls one
//!   elaborated design produces.
//!
//! The [`artifacts`] module renders traces in textual DRUP (and models in
//! SAT-competition `v`-line format) so external tools such as `drat-trim`
//! can cross-audit the same certificates.
//!
//! # Soundness argument
//!
//! The checker admits a `Learn` step only after proving it RUP with
//! respect to its current database (axioms plus previously admitted
//! learns, minus applied deletions). By induction every admitted clause is
//! implied by the axiom set, so a derived contradiction — or a successful
//! RUP probe of the negated-assumption clause — certifies genuine
//! unsatisfiability. Deletions can only *weaken* the checker's
//! propagation; at worst a valid proof fails to check (incompleteness),
//! never the reverse. Root-level assignments are kept across deletions for
//! the same reason: they were derived from implied clauses and remain
//! logical consequences of the axioms.

#![warn(missing_docs)]

pub mod artifacts;
mod checker;

pub use artifacts::{
    check_hinted_unsat_artifact, revalidate_unsat_artifact, trim_unsat_artifact,
    trim_unsat_artifact_hinted, HintedTracker, RevalidateError,
};
pub use checker::{check_model, check_unsat_certificate, CertError, Checker, CheckerStats};
