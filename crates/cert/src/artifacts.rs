//! Textual certificate artifacts for external cross-auditing.
//!
//! A dumped check is two files: a DIMACS CNF (the exact formula the
//! incremental engine held, rendered by [`fastpath_sat::Cnf::from_steps`]
//! with the check's assumptions baked in as unit clauses) and either a
//! DRUP proof ([`proof_to_drup`], UNSAT checks) or a SAT-competition model
//! line ([`model_to_text`], SAT checks). `drat-trim CHECK.cnf CHECK.drup`
//! verifies the former; any DIMACS-aware solver confirms the latter.

use fastpath_sat::{Lit, ProofStep};
use std::fmt::Write as _;

fn write_clause(out: &mut String, lits: &[Lit]) {
    for &lit in lits {
        let n = lit.var().index() as i64 + 1;
        let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
    }
    let _ = writeln!(out, "0");
}

/// Renders a trace prefix as a textual DRUP proof of unsatisfiability for
/// the companion CNF (which must contain the trace's axioms *plus* one
/// unit clause per assumption — exactly what
/// [`fastpath_sat::Cnf::from_steps`] emits).
///
/// Axiom steps are skipped (they live in the CNF); `Learn` steps become
/// clause lines and `Delete` steps become `d` lines. The proof ends with
/// the negated-assumption clause — RUP because propagating the assumption
/// units into the replayed database conflicts — followed by the empty
/// clause. A trace that already ends in an empty `Learn` terminates at
/// that line instead; checkers stop at the first empty clause.
pub fn proof_to_drup(steps: &[ProofStep], assumptions: &[Lit]) -> String {
    let mut out = String::new();
    for step in steps {
        match step {
            ProofStep::Axiom(_) => {}
            ProofStep::Learn(lits) => {
                write_clause(&mut out, lits);
                if lits.is_empty() {
                    return out;
                }
            }
            ProofStep::Delete(lits) => {
                let _ = write!(out, "d ");
                write_clause(&mut out, lits);
            }
        }
    }
    if !assumptions.is_empty() {
        let negated: Vec<Lit> = assumptions.iter().map(|&a| !a).collect();
        write_clause(&mut out, &negated);
    }
    let _ = writeln!(out, "0");
    out
}

/// Renders a model as a SAT-competition style `v` line terminated by `0`,
/// using 1-based DIMACS variable numbering.
pub fn model_to_text(model: &[bool]) -> String {
    let mut out = String::from("v");
    for (index, &value) in model.iter().enumerate() {
        let n = index as i64 + 1;
        let _ = write!(out, " {}", if value { n } else { -n });
    }
    let _ = writeln!(out, " 0");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_sat::Var;

    #[test]
    fn drup_renders_learns_deletes_and_final_claim() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Learn(vec![b]),
            ProofStep::Delete(vec![a, b]),
        ];
        let text = proof_to_drup(&steps, &[!b]);
        assert_eq!(text, "2 0\nd 1 2 0\n2 0\n0\n");
    }

    #[test]
    fn drup_stops_at_empty_clause() {
        let a = Var::from_index(0).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a]),
            ProofStep::Learn(Vec::new()),
            ProofStep::Learn(vec![a]), // never emitted
        ];
        assert_eq!(proof_to_drup(&steps, &[]), "0\n");
    }

    #[test]
    fn model_line_is_dimacs_numbered() {
        assert_eq!(model_to_text(&[true, false, true]), "v 1 -2 3 0\n");
        assert_eq!(model_to_text(&[]), "v 0\n");
    }
}
