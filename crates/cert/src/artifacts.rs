//! Textual certificate artifacts for external cross-auditing.
//!
//! A dumped check is two files: a DIMACS CNF (the exact formula the
//! incremental engine held, rendered by [`fastpath_sat::Cnf::from_steps`]
//! with the check's assumptions baked in as unit clauses) and either a
//! DRUP proof ([`proof_to_drup`], UNSAT checks) or a SAT-competition model
//! line ([`model_to_text`], SAT checks). `drat-trim CHECK.cnf CHECK.drup`
//! verifies the former; any DIMACS-aware solver confirms the latter.

//! The module also runs the reverse direction: [`parse_drup`] reads a
//! textual proof back into steps and [`revalidate_unsat_artifact`] replays
//! a stored `(CNF, DRUP)` pair through the RUP checker, so a verdict
//! served from a content-addressed proof cache is *re-certified on load*
//! instead of trusted — a tampered or bit-rotted artifact is rejected and
//! the check falls back to a fresh proof.

use crate::checker::{check_unsat_certificate, CertError, Checker, CheckerStats};
use fastpath_sat::{parse_dimacs, Lit, ProofStep, Var};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

fn write_clause(out: &mut String, lits: &[Lit]) {
    for &lit in lits {
        let n = lit.var().index() as i64 + 1;
        let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
    }
    let _ = writeln!(out, "0");
}

/// Renders a trace prefix as a textual DRUP proof of unsatisfiability for
/// the companion CNF (which must contain the trace's axioms *plus* one
/// unit clause per assumption — exactly what
/// [`fastpath_sat::Cnf::from_steps`] emits).
///
/// Axiom steps are skipped (they live in the CNF); `Learn` steps become
/// clause lines and `Delete` steps become `d` lines. The proof ends with
/// the negated-assumption clause — RUP because propagating the assumption
/// units into the replayed database conflicts — followed by the empty
/// clause. A trace that already ends in an empty `Learn` terminates at
/// that line instead; checkers stop at the first empty clause.
pub fn proof_to_drup(steps: &[ProofStep], assumptions: &[Lit]) -> String {
    let mut out = String::new();
    for step in steps {
        match step {
            ProofStep::Axiom(_) => {}
            ProofStep::Learn(lits) => {
                write_clause(&mut out, lits);
                if lits.is_empty() {
                    return out;
                }
            }
            ProofStep::Delete(lits) => {
                let _ = write!(out, "d ");
                write_clause(&mut out, lits);
            }
        }
    }
    if !assumptions.is_empty() {
        let negated: Vec<Lit> = assumptions.iter().map(|&a| !a).collect();
        write_clause(&mut out, &negated);
    }
    let _ = writeln!(out, "0");
    out
}

/// Renders a model as a SAT-competition style `v` line terminated by `0`,
/// using 1-based DIMACS variable numbering.
pub fn model_to_text(model: &[bool]) -> String {
    let mut out = String::from("v");
    for (index, &value) in model.iter().enumerate() {
        let n = index as i64 + 1;
        let _ = write!(out, " {}", if value { n } else { -n });
    }
    let _ = writeln!(out, " 0");
    out
}

/// An error while re-validating a stored proof artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RevalidateError {
    /// The stored CNF text is not valid DIMACS.
    Cnf(String),
    /// The stored proof text is not valid DRUP.
    Drup(String),
    /// Both artifacts parsed, but the proof does not certify the CNF
    /// unsatisfiable (tampering, truncation, or mismatched pairing).
    Check(CertError),
}

impl fmt::Display for RevalidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevalidateError::Cnf(m) => write!(f, "artifact CNF: {m}"),
            RevalidateError::Drup(m) => write!(f, "artifact DRUP: {m}"),
            RevalidateError::Check(e) => write!(f, "artifact proof rejected: {e}"),
        }
    }
}

impl Error for RevalidateError {}

/// Parses textual DRUP (the format [`proof_to_drup`] emits) back into
/// [`ProofStep::Learn`]/[`ProofStep::Delete`] steps.
///
/// Literal magnitudes must stay within `num_vars` — our proofs never use
/// extension variables, so an out-of-range literal means corruption.
/// Parsing stops at the first empty clause, mirroring how checkers read
/// DRUP files.
///
/// # Errors
///
/// Returns [`RevalidateError::Drup`] on non-integer tokens, missing `0`
/// terminators, or out-of-range literals.
pub fn parse_drup(text: &str, num_vars: usize) -> Result<Vec<ProofStep>, RevalidateError> {
    let bad = |m: String| RevalidateError::Drup(m);
    let mut steps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (is_delete, body) = match line.strip_prefix("d ") {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for token in body.split_whitespace() {
            let n: i64 = token
                .parse()
                .map_err(|_| bad(format!("line {}: bad token `{token}`", lineno + 1)))?;
            if n == 0 {
                terminated = true;
                break;
            }
            let index = n.unsigned_abs() as usize - 1;
            if index >= num_vars {
                return Err(bad(format!(
                    "line {}: literal {n} exceeds {num_vars} variables",
                    lineno + 1
                )));
            }
            let var = Var::from_index(index);
            lits.push(if n > 0 {
                var.positive()
            } else {
                var.negative()
            });
        }
        if !terminated {
            return Err(bad(format!("line {}: clause not 0-terminated", lineno + 1)));
        }
        if is_delete {
            steps.push(ProofStep::Delete(lits));
        } else {
            let empty = lits.is_empty();
            steps.push(ProofStep::Learn(lits));
            if empty {
                return Ok(steps);
            }
        }
    }
    Ok(steps)
}

/// Re-validates a stored `(DIMACS CNF, DRUP proof)` artifact pair from
/// scratch: the CNF clauses become axioms, the DRUP lines replay as
/// learn/delete steps, and the whole derivation must certify UNSAT under
/// the independent RUP checker.
///
/// This is the certification-on-load path of the proof cache: a cache hit
/// only counts as a *certified* verdict if its artifacts still prove the
/// claim today.
///
/// # Errors
///
/// Returns [`RevalidateError`] if either artifact fails to parse or the
/// replayed proof is rejected.
pub fn revalidate_unsat_artifact(
    cnf_text: &str,
    drup_text: &str,
) -> Result<CheckerStats, RevalidateError> {
    let cnf = parse_dimacs(cnf_text).map_err(|e| RevalidateError::Cnf(e.to_string()))?;
    let mut steps: Vec<ProofStep> = cnf.clauses.iter().cloned().map(ProofStep::Axiom).collect();
    steps.extend(parse_drup(drup_text, cnf.num_vars)?);
    check_unsat_certificate(&steps, &[]).map_err(RevalidateError::Check)
}

/// Backward-trims a valid `(DIMACS CNF, DRUP proof)` artifact pair down to
/// the clauses its final refutation actually uses, returning the trimmed
/// pair `(core CNF, trimmed DRUP)`.
///
/// The full proof is replayed once with conflict-core tracking: every RUP
/// probe records the clauses its unit-propagation derivation touched, and
/// a backward pass from the final contradiction marks the transitively
/// needed axioms and learnt clauses. Deletion lines are dropped — they
/// only ever weaken propagation, and every retained clause is a valid
/// consequence, so keeping them active is sound.
///
/// Soundness of serving the trimmed pair in place of the original:
/// unsatisfiability of a clause *subset* implies unsatisfiability of the
/// whole formula, so a checker that certifies the core certifies the
/// original claim. The trimmed pair is re-validated through
/// [`revalidate_unsat_artifact`] before being returned, so a caller can
/// store it knowing it will certify on load.
///
/// This is what makes certification-on-load cheap enough for a hot proof
/// cache: replay cost scales with the refutation's core, not with every
/// clause the solver ever learnt.
///
/// # Errors
///
/// Returns [`RevalidateError`] if the input pair fails to parse or does
/// not certify (only valid artifacts can be trimmed).
pub fn trim_unsat_artifact(
    cnf_text: &str,
    drup_text: &str,
) -> Result<(String, String), RevalidateError> {
    let trimmed = trim_replay(cnf_text, drup_text)?;
    // Never hand back a pair that would miss on load.
    revalidate_unsat_artifact(&trimmed.core_cnf, &trimmed.drup)?;
    Ok((trimmed.core_cnf, trimmed.drup))
}

/// Like [`trim_unsat_artifact`], but the proof side carries LRAT-style
/// propagation hints: each retained learnt clause lists, in order, the
/// clauses whose unit propagations derive its conflict (conflicting
/// clause last). Validating a hinted proof ([`check_hinted_unsat_artifact`])
/// walks the hint chains instead of running full unit propagation, so it
/// is linear in the proof text — the format the proof cache stores.
///
/// # Errors
///
/// Returns [`RevalidateError`] if the input pair fails to parse or does
/// not certify.
pub fn trim_unsat_artifact_hinted(
    cnf_text: &str,
    drup_text: &str,
) -> Result<(String, String), RevalidateError> {
    let trimmed = trim_replay(cnf_text, drup_text)?;
    // Never hand back a pair that would miss on load.
    check_hinted_unsat_artifact(&trimmed.core_cnf, &trimmed.hinted)?;
    Ok((trimmed.core_cnf, trimmed.hinted))
}

struct Trimmed {
    core_cnf: String,
    drup: String,
    hinted: String,
}

/// The shared tracked replay behind both trim flavours.
fn trim_replay(cnf_text: &str, drup_text: &str) -> Result<Trimmed, RevalidateError> {
    let cnf = parse_dimacs(cnf_text).map_err(|e| RevalidateError::Cnf(e.to_string()))?;
    let drup_steps = parse_drup(drup_text, cnf.num_vars)?;

    // Tracked replay: feed step by step so each admitted clause's index
    // can be tied back to its source (CNF clause or proof line).
    let mut checker = Checker::with_core_tracking();
    let mut axioms: Vec<(u32, usize)> = Vec::new(); // (cref, CNF clause index)
    for (index, clause) in cnf.clauses.iter().enumerate() {
        let cref = checker.clause_count() as u32;
        checker
            .feed(&[ProofStep::Axiom(clause.clone())])
            .map_err(RevalidateError::Check)?;
        if checker.clause_count() > cref as usize {
            axioms.push((cref, index));
        }
    }
    let mut learns: Vec<(u32, Vec<Lit>)> = Vec::new(); // (cref, literals)
    for step in &drup_steps {
        let cref = checker.clause_count() as u32;
        checker
            .feed(std::slice::from_ref(step))
            .map_err(RevalidateError::Check)?;
        if let ProofStep::Learn(lits) = step {
            if !lits.is_empty() && checker.clause_count() > cref as usize {
                learns.push((cref, lits.clone()));
            }
        }
    }
    checker.verify_unsat(&[]).map_err(RevalidateError::Check)?;
    let final_hints: Vec<u32> = checker.final_core().unwrap_or(&[]).to_vec();

    // Backward pass: the final conflict's core, closed under each needed
    // learnt clause's own probe core.
    let mut needed: HashSet<u32> = HashSet::new();
    let mut stack: Vec<u32> = final_hints.clone();
    while let Some(cref) = stack.pop() {
        if needed.insert(cref) {
            if let Some(core) = checker.learn_core(cref) {
                stack.extend_from_slice(core);
            }
        }
    }

    // Renumber kept clauses: core-CNF axioms first, kept learns after, in
    // original order. Every hint lands in `needed` by construction.
    let kept_axioms: Vec<(u32, usize)> = axioms
        .iter()
        .filter(|(cref, _)| needed.contains(cref))
        .copied()
        .collect();
    let kept_learns: Vec<&(u32, Vec<Lit>)> = learns
        .iter()
        .filter(|(cref, _)| needed.contains(cref))
        .collect();
    let mut new_index: HashMap<u32, u32> = HashMap::new();
    for (next, (cref, _)) in kept_axioms.iter().enumerate() {
        new_index.insert(*cref, next as u32);
    }
    for (offset, (cref, _)) in kept_learns.iter().enumerate() {
        new_index.insert(*cref, (kept_axioms.len() + offset) as u32);
    }
    let map_hints = |hints: &[u32]| -> Result<Vec<u32>, RevalidateError> {
        hints
            .iter()
            .map(|h| {
                new_index
                    .get(h)
                    .copied()
                    .ok_or_else(|| RevalidateError::Drup("hint outside trimmed core".into()))
            })
            .collect()
    };

    let mut core_cnf = format!("p cnf {} {}\n", cnf.num_vars, kept_axioms.len());
    for &(_, index) in &kept_axioms {
        write_clause(&mut core_cnf, &cnf.clauses[index]);
    }
    let mut drup = String::new();
    let mut hinted = String::new();
    for (cref, lits) in &kept_learns {
        write_clause(&mut drup, lits);
        write_hinted_line(
            &mut hinted,
            lits,
            &map_hints(checker.learn_core(*cref).unwrap_or(&[]))?,
        );
    }
    let _ = writeln!(drup, "0");
    write_hinted_line(&mut hinted, &[], &map_hints(&final_hints)?);
    Ok(Trimmed {
        core_cnf,
        drup,
        hinted,
    })
}

/// An incremental, core-tracking replay that emits trimmed hinted
/// artifacts directly from the live trace.
///
/// This is the backward-certification fast path: a long-lived engine feeds
/// each check's new trace steps exactly once (like [`Checker`]), and after
/// a successful [`HintedTracker::verify_unsat`] the caller asks for the
/// check's artifact with [`HintedTracker::emit_hinted`] — the UNSAT core
/// is extracted from conflict cores recorded *during* the replay, so no
/// DRUP text is rendered, parsed back, or replayed a second time (the
/// [`trim_unsat_artifact_hinted`] round trip this supersedes).
///
/// The one structural difference from the offline trimmer: assumptions are
/// not baked into the fed trace, so the emitted core CNF appends one unit
/// clause per assumption (the stored-artifact convention) and the final
/// hint chain starts with those units — replaying them reproduces the
/// probe's assumed literals before the recorded derivation runs.
#[derive(Debug, Default)]
pub struct HintedTracker {
    checker: Checker,
    /// Admitted axiom clauses: `(cref, literals)` in admission order.
    axioms: Vec<(u32, Vec<Lit>)>,
    /// Admitted learnt clauses: `(cref, literals)` in admission order.
    learns: Vec<(u32, Vec<Lit>)>,
}

impl HintedTracker {
    /// Creates an empty tracker.
    ///
    /// The underlying checker runs in *deferred* (backward) mode: `Learn`
    /// steps are admitted without an eager RUP probe, and each
    /// [`HintedTracker::verify_unsat`] verifies only the lemmas in the
    /// refutation's dependency closure, each against the strictly earlier
    /// part of the trace. On SAT-heavy incremental traces (most UPEC
    /// checks end in a model, not a refutation) this skips nearly all of
    /// the forward replay's probe work; lemmas nothing ever depends on
    /// are never checked, which is the standard backward-checking trade.
    pub fn new() -> Self {
        HintedTracker {
            checker: Checker::with_deferred_checking(),
            axioms: Vec::new(),
            learns: Vec::new(),
        }
    }

    /// Replays trace steps in order (see [`Checker::feed`]), recording
    /// which clause each admitted step became so cores can be mapped back
    /// to sources at emission time.
    ///
    /// # Errors
    ///
    /// Any [`CertError`] produced during replay.
    pub fn feed(&mut self, steps: &[ProofStep]) -> Result<(), CertError> {
        for step in steps {
            let cref = self.checker.clause_count() as u32;
            self.checker.feed(std::slice::from_ref(step))?;
            if self.checker.clause_count() > cref as usize {
                match step {
                    ProofStep::Axiom(lits) => self.axioms.push((cref, lits.clone())),
                    ProofStep::Learn(lits) => self.learns.push((cref, lits.clone())),
                    ProofStep::Delete(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Certifies the replayed formula unsatisfiable under `assumptions`
    /// and records the refutation's core (see [`Checker::verify_unsat`]).
    ///
    /// # Errors
    ///
    /// [`CertError::AssumptionsNotRefuted`] if the probe does not conflict.
    pub fn verify_unsat(&mut self, assumptions: &[Lit]) -> Result<(), CertError> {
        self.checker.verify_unsat(assumptions)
    }

    /// Work counters of the underlying checker.
    pub fn stats(&self) -> CheckerStats {
        self.checker.stats()
    }

    /// `true` once root propagation has derived the empty clause.
    pub fn contradiction(&self) -> bool {
        self.checker.contradiction()
    }

    /// The number of trace steps fed so far.
    pub fn steps_fed(&self) -> usize {
        self.checker.steps_fed()
    }

    /// Emits the trimmed `(core CNF, hinted proof)` pair for the most
    /// recent successful [`HintedTracker::verify_unsat`]: a backward pass
    /// from the final conflict's core closes over each needed learnt
    /// clause's own probe core, kept clauses are renumbered (axioms,
    /// then assumption units, then learns), and every learn line carries
    /// its recorded LRAT-style hint chain. The pair is validated through
    /// [`check_hinted_unsat_artifact`] before being returned, so a caller
    /// can store it knowing it will certify on load.
    ///
    /// `assumptions` must be the same literals passed to `verify_unsat`.
    ///
    /// # Errors
    ///
    /// Returns [`RevalidateError`] if no refutation core is available or
    /// the emitted pair fails its own validation.
    pub fn emit_hinted(&self, assumptions: &[Lit]) -> Result<(String, String), RevalidateError> {
        let final_hints: Vec<u32> = self
            .checker
            .final_core()
            .ok_or_else(|| RevalidateError::Drup("no refutation core recorded".into()))?
            .to_vec();

        // Backward pass: the final conflict's core, closed under each
        // needed learnt clause's own probe core. Cores recorded while a
        // since-deleted clause was active may still reach it — deletions
        // only remove clauses from *future* derivations — so deleted
        // clauses stay emittable and the closure never dangles.
        let mut needed: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = final_hints.clone();
        while let Some(cref) = stack.pop() {
            if needed.insert(cref) {
                if let Some(core) = self.checker.learn_core(cref) {
                    stack.extend_from_slice(core);
                }
            }
        }

        let kept_axioms: Vec<&(u32, Vec<Lit>)> = self
            .axioms
            .iter()
            .filter(|(cref, _)| needed.contains(cref))
            .collect();
        let kept_learns: Vec<&(u32, Vec<Lit>)> = self
            .learns
            .iter()
            .filter(|(cref, _)| needed.contains(cref))
            .collect();

        // Renumber: kept axioms first, assumption units next, kept learns
        // after — matching the database order the hinted checker builds.
        let mut new_index: HashMap<u32, u32> = HashMap::new();
        for (next, (cref, _)) in kept_axioms.iter().enumerate() {
            new_index.insert(*cref, next as u32);
        }
        let assumption_base = kept_axioms.len() as u32;
        let learn_base = assumption_base + assumptions.len() as u32;
        for (offset, (cref, _)) in kept_learns.iter().enumerate() {
            new_index.insert(*cref, learn_base + offset as u32);
        }
        let map_hints = |hints: &[u32]| -> Result<Vec<u32>, RevalidateError> {
            hints
                .iter()
                .map(|h| {
                    new_index
                        .get(h)
                        .copied()
                        .ok_or_else(|| RevalidateError::Drup("hint outside trimmed core".into()))
                })
                .collect()
        };

        let num_vars = kept_axioms
            .iter()
            .flat_map(|(_, lits)| lits.iter())
            .chain(kept_learns.iter().flat_map(|(_, lits)| lits.iter()))
            .chain(assumptions.iter())
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);

        let mut core_cnf = format!(
            "p cnf {} {}\n",
            num_vars,
            kept_axioms.len() + assumptions.len()
        );
        for (_, lits) in &kept_axioms {
            write_clause(&mut core_cnf, lits);
        }
        for &a in assumptions {
            write_clause(&mut core_cnf, &[a]);
        }

        let mut hinted = String::new();
        for (cref, lits) in &kept_learns {
            write_hinted_line(
                &mut hinted,
                lits,
                &map_hints(self.checker.learn_core(*cref).unwrap_or(&[]))?,
            );
        }
        // The final refutation assumed the assumption literals before
        // propagating; scripting the assumption units first reproduces
        // those seeds in the hint walk.
        let mut last: Vec<u32> = (assumption_base..learn_base).collect();
        last.extend(map_hints(&final_hints)?);
        write_hinted_line(&mut hinted, &[], &last);

        // Never hand back a pair that would miss on load.
        check_hinted_unsat_artifact(&core_cnf, &hinted)?;
        Ok((core_cnf, hinted))
    }
}

fn write_hinted_line(out: &mut String, lits: &[Lit], hints: &[u32]) {
    for &lit in lits {
        let n = lit.var().index() as i64 + 1;
        let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
    }
    let _ = write!(out, "0");
    // Hints are 1-based on the wire: index 0 would collide with the
    // section terminator (the same reason LRAT numbers clauses from 1).
    for h in hints {
        let _ = write!(out, " {}", h + 1);
    }
    let _ = writeln!(out, " 0");
}

/// Validates a `(core CNF, hinted proof)` pair produced by
/// [`trim_unsat_artifact_hinted`] without running unit propagation: for
/// each proof line the learnt clause's negation is assumed and the hint
/// clauses are walked in order — each must be unit (its literal is
/// assigned) or conflicting (ends the line). The final line must be the
/// empty clause. Anything else — a hint that is satisfied or has two free
/// literals, a missing conflict, literals out of range — is a typed
/// rejection, so a corrupted artifact falls back to a fresh proof.
///
/// Soundness: every accepted line is a clause with the RUP property over
/// the axioms and previously accepted lines (the hint walk *is* a unit
/// propagation derivation, just one the prover scripted in advance), so
/// an accepted empty clause certifies the CNF unsatisfiable exactly as
/// [`revalidate_unsat_artifact`] would — only the search for the
/// derivation is skipped, never the derivation itself.
///
/// # Errors
///
/// Returns [`RevalidateError`] on parse failure or any invalid hint step.
pub fn check_hinted_unsat_artifact(
    cnf_text: &str,
    proof_text: &str,
) -> Result<CheckerStats, RevalidateError> {
    let cnf = parse_dimacs(cnf_text).map_err(|e| RevalidateError::Cnf(e.to_string()))?;
    let bad = |m: String| RevalidateError::Drup(m);
    // Duplicate literals would double-count as "free" and make a unit
    // hint look two-free, so clauses are deduplicated up front.
    let dedup = |lits: &[Lit]| -> Vec<Lit> {
        let mut c = lits.to_vec();
        c.sort_unstable_by_key(|l| (l.var().index(), l.is_positive()));
        c.dedup();
        c
    };
    let mut db: Vec<Vec<Lit>> = cnf.clauses.iter().map(|c| dedup(c)).collect();
    let mut assign: Vec<i8> = vec![0; cnf.num_vars];
    let mut touched: Vec<usize> = Vec::new();
    let mut stats = CheckerStats {
        axioms: db.len() as u64,
        ..CheckerStats::default()
    };
    let value = |assign: &[i8], l: Lit| -> i8 {
        let v = assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    };
    let mut refuted = false;
    for (lineno, raw) in proof_text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if refuted {
            break;
        }
        // `<lit>... 0 <hint>... 0`
        let mut lits: Vec<Lit> = Vec::new();
        let mut hints: Vec<usize> = Vec::new();
        let mut section = 0usize;
        for token in line.split_whitespace() {
            let n: i64 = token
                .parse()
                .map_err(|_| bad(format!("line {}: bad token `{token}`", lineno + 1)))?;
            if n == 0 {
                section += 1;
                continue;
            }
            match section {
                0 => {
                    let index = n.unsigned_abs() as usize - 1;
                    if index >= cnf.num_vars {
                        return Err(bad(format!("line {}: literal out of range", lineno + 1)));
                    }
                    let var = Var::from_index(index);
                    lits.push(if n > 0 {
                        var.positive()
                    } else {
                        var.negative()
                    });
                }
                1 => {
                    if n < 1 {
                        return Err(bad(format!("line {}: bad hint index", lineno + 1)));
                    }
                    hints.push(n as usize - 1);
                }
                _ => return Err(bad(format!("line {}: trailing tokens", lineno + 1))),
            }
        }
        if section != 2 {
            return Err(bad(format!("line {}: missing terminator", lineno + 1)));
        }
        // Assume the clause's negation...
        let mut conflict = false;
        for &l in &lits {
            match value(&assign, l) {
                1 => {
                    // The literal is already true: the clause is a
                    // tautology under the assumed negation — conflict.
                    conflict = true;
                    break;
                }
                -1 => {}
                _ => {
                    assign[l.var().index()] = if l.is_positive() { -1 } else { 1 };
                    touched.push(l.var().index());
                }
            }
        }
        // ...and walk the scripted propagation chain.
        if !conflict {
            for &h in &hints {
                let clause = db
                    .get(h)
                    .ok_or_else(|| bad(format!("line {}: hint {h} out of range", lineno + 1)))?;
                let mut unit: Option<Lit> = None;
                let mut nonfalse = 0usize;
                let mut satisfied = false;
                for &l in clause {
                    match value(&assign, l) {
                        -1 => {}
                        1 => {
                            satisfied = true;
                            break;
                        }
                        _ => {
                            nonfalse += 1;
                            unit = Some(l);
                        }
                    }
                }
                stats.propagations += 1;
                if satisfied {
                    // Already-true hints are inert (their conclusion is
                    // assigned); skipping them never adds an assignment,
                    // so the walk stays a valid propagation derivation.
                    continue;
                }
                match (nonfalse, unit) {
                    (0, _) => {
                        conflict = true;
                        break;
                    }
                    (1, Some(u)) => {
                        assign[u.var().index()] = if u.is_positive() { 1 } else { -1 };
                        touched.push(u.var().index());
                    }
                    _ => {
                        return Err(bad(format!(
                            "line {}: hint {h} is neither unit nor conflicting",
                            lineno + 1
                        )));
                    }
                }
            }
        }
        for v in touched.drain(..) {
            assign[v] = 0;
        }
        if !conflict {
            return Err(RevalidateError::Check(CertError::LearnNotRup {
                step: lineno,
                clause: lits,
            }));
        }
        if lits.is_empty() {
            refuted = true;
        } else {
            stats.learns += 1;
            db.push(dedup(&lits));
        }
    }
    if refuted {
        Ok(stats)
    } else {
        Err(RevalidateError::Check(CertError::AssumptionsNotRefuted {
            assumptions: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_sat::Var;

    #[test]
    fn drup_renders_learns_deletes_and_final_claim() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Learn(vec![b]),
            ProofStep::Delete(vec![a, b]),
        ];
        let text = proof_to_drup(&steps, &[!b]);
        assert_eq!(text, "2 0\nd 1 2 0\n2 0\n0\n");
    }

    #[test]
    fn drup_stops_at_empty_clause() {
        let a = Var::from_index(0).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a]),
            ProofStep::Learn(Vec::new()),
            ProofStep::Learn(vec![a]), // never emitted
        ];
        assert_eq!(proof_to_drup(&steps, &[]), "0\n");
    }

    #[test]
    fn model_line_is_dimacs_numbered() {
        assert_eq!(model_to_text(&[true, false, true]), "v 1 -2 3 0\n");
        assert_eq!(model_to_text(&[]), "v 0\n");
    }

    #[test]
    fn parse_drup_round_trips_renderer() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Learn(vec![b]),
            ProofStep::Delete(vec![a, b]),
        ];
        let text = proof_to_drup(&steps, &[!b]);
        let parsed = parse_drup(&text, 2).expect("parses");
        assert_eq!(
            parsed,
            vec![
                ProofStep::Learn(vec![b]),
                ProofStep::Delete(vec![a, b]),
                ProofStep::Learn(vec![b]),
                ProofStep::Learn(Vec::new()),
            ]
        );
        // Corruption is typed, not panicked.
        assert!(matches!(
            parse_drup("x 0\n", 2),
            Err(RevalidateError::Drup(_))
        ));
        assert!(matches!(
            parse_drup("7 0\n", 2),
            Err(RevalidateError::Drup(_))
        ));
        assert!(matches!(
            parse_drup("1 2\n", 2),
            Err(RevalidateError::Drup(_))
        ));
    }

    fn unsat_artifact() -> (String, String) {
        use fastpath_sat::{Cnf, SolveResult, Solver};
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[x.positive(), y.positive()]);
        s.add_clause(&[x.positive(), y.negative()]);
        s.add_clause(&[x.negative(), y.positive()]);
        s.add_clause(&[x.negative(), y.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let steps = s.proof().expect("logged").steps().to_vec();
        let cnf = Cnf::from_steps(&steps, &[]).to_dimacs();
        let drup = proof_to_drup(&steps, &[]);
        (cnf, drup)
    }

    #[test]
    fn trimmed_artifacts_certify_and_shrink() {
        use fastpath_sat::{Cnf, SolveResult, Solver};
        // A formula with an obvious irrelevant half: x/y force UNSAT, the
        // a/b clauses are satisfiable padding the trimmer should drop.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let y = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[x.positive(), y.positive()]);
        s.add_clause(&[x.positive(), y.negative()]);
        s.add_clause(&[x.negative(), y.positive()]);
        s.add_clause(&[x.negative(), y.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let steps = s.proof().expect("logged").steps().to_vec();
        let cnf = Cnf::from_steps(&steps, &[]).to_dimacs();
        let drup = proof_to_drup(&steps, &[]);

        let (core_cnf, trimmed) = trim_unsat_artifact(&cnf, &drup).expect("trims");
        // The trimmed pair must certify on its own...
        revalidate_unsat_artifact(&core_cnf, &trimmed).expect("trimmed pair certifies");
        // ...and must not have grown.
        assert!(core_cnf.len() <= cnf.len());
        assert!(trimmed.len() <= drup.len());
        // The padding clauses over a/b cannot be part of any refutation.
        let core = parse_dimacs(&core_cnf).expect("core parses");
        let a_lit = a.positive();
        let b_lit = b.positive();
        for clause in &core.clauses {
            assert!(
                !clause
                    .iter()
                    .any(|l| l.var() == a_lit.var() || l.var() == b_lit.var()),
                "irrelevant clause survived trimming: {clause:?}"
            );
        }
        // Tampering with the trimmed core is still caught.
        let missing_axiom = core_cnf.replacen("-1 -2 0\n", "", 1);
        if missing_axiom != core_cnf {
            assert!(revalidate_unsat_artifact(&missing_axiom, &trimmed).is_err());
        }
    }

    #[test]
    fn trimming_random_unsat_instances_preserves_certification() {
        use fastpath_sat::{Cnf, SolveResult, Solver, Var};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x7219);
        let mut trimmed_any = false;
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=9usize);
            let num_clauses = rng.gen_range(4..=40usize);
            let mut s = Solver::new();
            s.enable_proof_logging();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<_> = (0..len)
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&lits);
            }
            if s.solve() != SolveResult::Unsat {
                continue;
            }
            let steps = s.proof().expect("logged").steps().to_vec();
            let cnf = Cnf::from_steps(&steps, &[]).to_dimacs();
            let drup = proof_to_drup(&steps, &[]);
            let (core_cnf, trimmed) = trim_unsat_artifact(&cnf, &drup)
                .unwrap_or_else(|e| panic!("round {round}: trim failed: {e}"));
            revalidate_unsat_artifact(&core_cnf, &trimmed)
                .unwrap_or_else(|e| panic!("round {round}: trimmed pair rejected: {e}"));
            trimmed_any |= core_cnf.len() < cnf.len() || trimmed.len() < drup.len();
        }
        assert!(trimmed_any, "no instance shrank — trimming is inert");
    }

    #[test]
    fn hinted_artifacts_certify_and_reject_corruption() {
        let (cnf, drup) = unsat_artifact();
        let (core_cnf, hinted) = trim_unsat_artifact_hinted(&cnf, &drup).expect("trims");
        let stats = check_hinted_unsat_artifact(&core_cnf, &hinted).expect("hinted certifies");
        assert!(stats.axioms > 0);
        // Dropping an axiom makes the scripted hints dangle or the final
        // refutation fail — either way a typed rejection, never a verdict.
        let tampered = core_cnf.replacen("-1 -2 0\n", "", 1);
        assert_ne!(tampered, core_cnf);
        assert!(check_hinted_unsat_artifact(&tampered, &hinted).is_err());
        // Truncating the proof removes the final empty clause.
        let truncated: String = hinted
            .lines()
            .take(hinted.lines().count().saturating_sub(1))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(check_hinted_unsat_artifact(&core_cnf, &truncated).is_err());
        // Mangled hint indices are out of range or non-unit.
        assert!(check_hinted_unsat_artifact(&core_cnf, "0 99 0\n").is_err());
        // Garbage text is a typed parse error.
        assert!(matches!(
            check_hinted_unsat_artifact(&core_cnf, "1 x 0 0\n"),
            Err(RevalidateError::Drup(_))
        ));
    }

    #[test]
    fn hinting_random_unsat_instances_preserves_certification() {
        use fastpath_sat::{Cnf, SolveResult, Solver, Var};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x51c3);
        let mut checked = 0usize;
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=9usize);
            let num_clauses = rng.gen_range(4..=40usize);
            let mut s = Solver::new();
            s.enable_proof_logging();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<_> = (0..len)
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&lits);
            }
            if s.solve() != SolveResult::Unsat {
                continue;
            }
            let steps = s.proof().expect("logged").steps().to_vec();
            let cnf = Cnf::from_steps(&steps, &[]).to_dimacs();
            let drup = proof_to_drup(&steps, &[]);
            let (core_cnf, hinted) = trim_unsat_artifact_hinted(&cnf, &drup)
                .unwrap_or_else(|e| panic!("round {round}: hinted trim failed: {e}"));
            check_hinted_unsat_artifact(&core_cnf, &hinted)
                .unwrap_or_else(|e| panic!("round {round}: hinted pair rejected: {e}"));
            checked += 1;
        }
        assert!(checked > 10, "too few UNSAT instances exercised: {checked}");
    }

    #[test]
    fn hinted_tracker_emits_per_check_artifacts_incrementally() {
        use fastpath_sat::{SolveResult, Solver};
        // The engine pattern: one long-lived solver + tracker, several
        // guarded UNSAT checks, each fed exactly once and emitted at its
        // own snapshot.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let y = s.new_var();
        let g1 = s.new_var();
        let g2 = s.new_var();
        s.add_clause(&[g1.negative(), x.positive()]);
        s.add_clause(&[g1.negative(), x.negative()]);
        let mut tracker = HintedTracker::new();
        let mut consumed = 0usize;

        assert_eq!(s.solve_with(&[g1.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        let steps = s.proof().expect("logged").steps();
        tracker.feed(&steps[consumed..snapshot]).expect("replay ok");
        consumed = snapshot;
        tracker.verify_unsat(&[g1.positive()]).expect("check 1");
        let (cnf1, hinted1) = tracker.emit_hinted(&[g1.positive()]).expect("emit 1");
        check_hinted_unsat_artifact(&cnf1, &hinted1).expect("artifact 1 certifies");
        // The g2 clauses don't exist yet; the y clauses never will be
        // relevant — the core must only mention x and g1.
        assert!(!cnf1.contains(&format!("{} ", g2.index() + 1)));

        // Second check over a disjoint cone, same tracker.
        s.add_clause(&[g2.negative(), y.positive()]);
        s.add_clause(&[g2.negative(), y.negative()]);
        assert_eq!(s.solve_with(&[g2.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        let steps = s.proof().expect("logged").steps();
        tracker.feed(&steps[consumed..snapshot]).expect("replay ok");
        tracker.verify_unsat(&[g2.positive()]).expect("check 2");
        let (cnf2, hinted2) = tracker.emit_hinted(&[g2.positive()]).expect("emit 2");
        check_hinted_unsat_artifact(&cnf2, &hinted2).expect("artifact 2 certifies");

        // A wrong claim is rejected, not silently emitted.
        assert!(tracker.verify_unsat(&[x.positive()]).is_err());
    }

    #[test]
    fn hinted_tracker_agrees_with_offline_trimmer_on_random_instances() {
        use fastpath_sat::{Cnf, SolveResult, Solver, Var};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA11C);
        let mut checked = 0usize;
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=9usize);
            let num_clauses = rng.gen_range(4..=40usize);
            let mut s = Solver::new();
            s.enable_proof_logging();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<_> = (0..len)
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&lits);
            }
            let assumptions: Vec<Lit> = (0..rng.gen_range(0..=2usize))
                .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                .collect();
            if s.solve_with(&assumptions) != SolveResult::Unsat {
                continue;
            }
            let snapshot = s.proof_len();
            let steps = &s.proof().expect("logged").steps()[..snapshot];
            let mut tracker = HintedTracker::new();
            tracker.feed(steps).expect("replay ok");
            tracker
                .verify_unsat(&assumptions)
                .unwrap_or_else(|e| panic!("round {round}: verify failed: {e}"));
            let (core_cnf, hinted) = tracker
                .emit_hinted(&assumptions)
                .unwrap_or_else(|e| panic!("round {round}: emit failed: {e}"));
            check_hinted_unsat_artifact(&core_cnf, &hinted)
                .unwrap_or_else(|e| panic!("round {round}: tracker pair rejected: {e}"));
            // The offline round trip must agree that this is certifiable.
            let cnf = Cnf::from_steps(steps, &assumptions).to_dimacs();
            let drup = proof_to_drup(steps, &assumptions);
            trim_unsat_artifact_hinted(&cnf, &drup)
                .unwrap_or_else(|e| panic!("round {round}: offline trim failed: {e}"));
            checked += 1;
        }
        assert!(checked > 10, "too few UNSAT instances exercised: {checked}");
    }

    #[test]
    fn revalidates_stored_artifacts_and_rejects_tampering() {
        let (cnf, drup) = unsat_artifact();
        revalidate_unsat_artifact(&cnf, &drup).expect("genuine artifact certifies");
        // Truncating the proof must fail the refutation probe.
        let truncated: String = String::new();
        assert!(matches!(
            revalidate_unsat_artifact(&cnf, &truncated),
            Err(RevalidateError::Check(_))
        ));
        // Deleting an axiom makes the formula satisfiable; a sound
        // checker must now reject the stale proof rather than certify a
        // SAT formula unsatisfiable.
        let tampered = cnf.replacen("-1 -2 0\n", "", 1);
        assert_ne!(tampered, cnf);
        assert!(matches!(
            revalidate_unsat_artifact(&tampered, &drup),
            Err(RevalidateError::Check(_))
        ));
        // Garbage artifacts are typed errors.
        assert!(matches!(
            revalidate_unsat_artifact("p cnf x", &drup),
            Err(RevalidateError::Cnf(_))
        ));
    }
}
