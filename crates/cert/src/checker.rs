//! The forward unit-propagation RUP checker.

use fastpath_sat::{Lit, ProofStep};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// A `Learn` step failed its RUP probe: assuming the clause's negation
    /// and unit-propagating did not produce a conflict, so the clause is
    /// not justified by the trace up to that point.
    LearnNotRup {
        /// Position of the offending step in the fed trace.
        step: usize,
        /// The unjustified clause.
        clause: Vec<Lit>,
    },
    /// An empty `Learn` step (the solver claims the formula itself became
    /// unsatisfiable) arrived while the checker's root propagation had not
    /// derived a contradiction.
    EmptyLearnWithoutConflict {
        /// Position of the offending step in the fed trace.
        step: usize,
    },
    /// The final UNSAT claim failed: assuming every assumption literal and
    /// unit-propagating over the replayed database did not conflict.
    AssumptionsNotRefuted {
        /// The assumptions that were supposed to be refuted.
        assumptions: Vec<Lit>,
    },
    /// A claimed model falsifies an axiom clause.
    ClauseFalsified {
        /// Index of the clause among the trace's axiom steps.
        axiom: usize,
        /// The falsified clause.
        clause: Vec<Lit>,
    },
    /// A claimed model falsifies an assumption literal.
    AssumptionFalsified {
        /// The falsified assumption.
        lit: Lit,
    },
    /// A claimed model does not cover a variable referenced by the
    /// formula or the assumptions.
    ModelTooShort {
        /// Index of the first uncovered variable.
        var: usize,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::LearnNotRup { step, clause } => {
                write!(f, "learnt clause at step {step} is not RUP: {clause:?}")
            }
            CertError::EmptyLearnWithoutConflict { step } => write!(
                f,
                "empty clause at step {step} but root propagation found no \
                 conflict"
            ),
            CertError::AssumptionsNotRefuted { assumptions } => write!(
                f,
                "assumptions not refuted by unit propagation: {assumptions:?}"
            ),
            CertError::ClauseFalsified { axiom, clause } => {
                write!(f, "model falsifies axiom clause #{axiom}: {clause:?}")
            }
            CertError::AssumptionFalsified { lit } => {
                write!(f, "model falsifies assumption {lit}")
            }
            CertError::ModelTooShort { var } => {
                write!(f, "model does not cover variable x{var}")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Work counters accumulated by a [`Checker`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Axiom clauses admitted.
    pub axioms: u64,
    /// Learnt clauses verified (RUP probes that succeeded). In deferred
    /// (backward) mode this counts only the clauses a refutation actually
    /// needed — the rest are admitted unchecked and never probed.
    pub learns: u64,
    /// Deletions applied.
    pub deletions: u64,
    /// Literals propagated (root fixpoint plus probes).
    pub propagations: u64,
}

impl CheckerStats {
    /// Folds another checker's counters into this one.
    pub fn merge(&mut self, other: &CheckerStats) {
        self.axioms += other.axioms;
        self.learns += other.learns;
        self.deletions += other.deletions;
        self.propagations += other.propagations;
    }
}

#[derive(Clone, Debug)]
struct CClause {
    lits: Vec<Lit>,
    /// Count of literals not currently assigned false. When it reaches 1
    /// the clause is unit (or satisfied); at 0 it is conflicting.
    nonfalse: u32,
    active: bool,
}

/// Sentinel reason for assumed (probe) literals.
const NO_REASON: u32 = u32::MAX;

/// What triggered a conflict, for core extraction.
#[derive(Clone, Copy, Debug)]
enum ConflictSeed {
    /// A clause's literals all became false.
    Clause(u32),
    /// An assumed literal was already false under the current assignment.
    Lit(Lit),
}

/// An incremental forward RUP checker.
///
/// Feed trace steps in order with [`Checker::feed`]; between feeds, call
/// [`Checker::verify_unsat`] to certify that the formula replayed so far
/// is unsatisfiable under given assumptions. The checker deliberately uses
/// a propagation scheme different from the solver's (occurrence lists with
/// per-clause non-false counters, not watched literals) so the two
/// implementations do not share failure modes.
#[derive(Debug, Default)]
pub struct Checker {
    clauses: Vec<CClause>,
    /// `occ[lit.index()]`: clauses containing `lit`.
    occ: Vec<Vec<u32>>,
    /// Per-variable truth value: 0 = unassigned, 1 = true, -1 = false.
    assign: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Root propagation derived the empty clause; everything is implied.
    contradiction: bool,
    /// Sorted-and-deduped literal vector → active clause indices, for
    /// resolving `Delete` steps (the solver mutates literal order in
    /// place, so deletions match up to permutation only).
    by_lits: HashMap<Vec<Lit>, Vec<u32>>,
    /// Steps fed so far (for error positions across incremental feeds).
    steps_fed: usize,
    stats: CheckerStats,
    /// `reason[var]`: clause that propagated the variable's current
    /// assignment, or [`NO_REASON`] for probe assumptions. Only read for
    /// assigned variables, so stale entries are harmless.
    reason: Vec<u32>,
    /// `order[var]`: monotone stamp of the variable's current assignment,
    /// for ordering derivation chains. Stale for unassigned variables.
    order: Vec<u64>,
    /// Next assignment stamp.
    stamp: u64,
    /// Record conflict cores for [backward trimming](crate::trim_unsat_artifact).
    track_cores: bool,
    /// Seed of the most recent conflict (valid until the next `undo_to`).
    conflict_seed: Option<ConflictSeed>,
    /// Per learnt clause (by clause index): the clauses its RUP probe's
    /// conflict derivation touched. Populated only when `track_cores`.
    learn_cores: HashMap<u32, Vec<u32>>,
    /// Core of the root-level contradiction, captured the moment
    /// `contradiction` was set. Populated only when `track_cores`.
    root_core: Option<Vec<u32>>,
    /// Core left behind by the most recent conflicting probe.
    last_probe_core: Option<Vec<u32>>,
    /// Core of the most recent successful `verify_unsat` probe.
    final_core: Option<Vec<u32>>,
    /// Backward mode: admit `Learn` steps without probing them and verify
    /// only the needed closure at [`Checker::verify_unsat`] time.
    deferred: bool,
    /// Deferred mode: clause index → trace position of its `Learn` step.
    /// Doubles as the is-learnt predicate during backward verification.
    learn_step: HashMap<u32, usize>,
    /// Deferred mode: learnt clauses whose bounded RUP probe succeeded
    /// (memoized across incremental `verify_unsat` calls).
    verified: HashSet<u32>,
}

impl Checker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Checker::default()
    }

    /// Creates a checker that records, for every learnt clause and for the
    /// final refutation, the set of clauses its conflict derivation
    /// actually used — the raw material for backward proof trimming.
    pub(crate) fn with_core_tracking() -> Self {
        Checker {
            track_cores: true,
            ..Checker::default()
        }
    }

    /// Creates a *backward* checker: `Learn` steps are admitted without
    /// their RUP probe, and [`Checker::verify_unsat`] verifies only the
    /// clauses in the refutation's dependency closure, each against the
    /// strictly earlier portion of the database (so no circular
    /// justification is possible). Lemmas no refutation ever needs are
    /// never probed at all — the standard backward-checking trade: far
    /// less propagation work on SAT-heavy incremental traces, in exchange
    /// for not flagging junk lemmas that nothing depends on.
    pub(crate) fn with_deferred_checking() -> Self {
        Checker {
            track_cores: true,
            deferred: true,
            ..Checker::default()
        }
    }

    /// Clauses admitted so far (including inactive ones); the next added
    /// clause gets this index.
    pub(crate) fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// The recorded conflict core of the learnt clause at `cref`, if any.
    pub(crate) fn learn_core(&self, cref: u32) -> Option<&[u32]> {
        self.learn_cores.get(&cref).map(Vec::as_slice)
    }

    /// The core of the most recent successful [`Checker::verify_unsat`]
    /// (falling back to the root contradiction's core).
    pub(crate) fn final_core(&self) -> Option<&[u32]> {
        self.final_core.as_deref().or(self.root_core.as_deref())
    }

    /// Walks reasons transitively from the recorded conflict seed and
    /// returns every clause index on the derivation, ordered so that each
    /// clause is unit under the assignments made by its predecessors (plus
    /// the probe assumptions), with the conflicting clause last — a
    /// ready-made LRAT-style hint chain. Must run before the conflicting
    /// probe is undone (reasons are only valid while their assignments
    /// stand).
    fn capture_core(&self) -> Vec<u32> {
        let mut visited = vec![false; self.assign.len()];
        let mut stack: Vec<usize> = Vec::new();
        let seed_clause = match self.conflict_seed {
            Some(ConflictSeed::Clause(cref)) => {
                stack.extend(
                    self.clauses[cref as usize]
                        .lits
                        .iter()
                        .map(|l| l.var().index()),
                );
                Some(cref)
            }
            Some(ConflictSeed::Lit(lit)) => {
                stack.push(lit.var().index());
                None
            }
            None => None,
        };
        // (assignment stamp, reason clause) per derivation literal: a
        // clause propagated exactly one literal, so stamps order the
        // chain and no clause appears twice.
        let mut chain: Vec<(u64, u32)> = Vec::new();
        while let Some(v) = stack.pop() {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            match self.reason.get(v) {
                Some(&r) if r != NO_REASON => {
                    chain.push((self.order[v], r));
                    stack.extend(
                        self.clauses[r as usize]
                            .lits
                            .iter()
                            .map(|l| l.var().index()),
                    );
                }
                _ => {}
            }
        }
        chain.sort_unstable();
        let mut core: Vec<u32> = chain.into_iter().map(|(_, r)| r).collect();
        if let Some(cref) = seed_clause {
            core.push(cref);
        }
        core
    }

    /// Work counters.
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// `true` once root propagation has derived the empty clause: the
    /// replayed formula is unsatisfiable outright.
    pub fn contradiction(&self) -> bool {
        self.contradiction
    }

    /// The number of trace steps fed so far.
    pub fn steps_fed(&self) -> usize {
        self.steps_fed
    }

    fn ensure_var(&mut self, lit: Lit) {
        let need = lit.var().index() + 1;
        if self.assign.len() < need {
            self.assign.resize(need, 0);
            self.occ.resize(2 * need, Vec::new());
            self.reason.resize(need, NO_REASON);
            self.order.resize(need, 0);
        }
    }

    fn value(&self, lit: Lit) -> i8 {
        let v = self.assign[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Assigns `lit` true and pushes it on the trail, recording the clause
    /// that forced it ([`NO_REASON`] for assumptions). Returns `false` if
    /// it was already false (immediate conflict).
    fn enqueue(&mut self, lit: Lit, reason: u32) -> bool {
        match self.value(lit) {
            1 => true,
            -1 => false,
            _ => {
                self.assign[lit.var().index()] = if lit.is_positive() { 1 } else { -1 };
                self.reason[lit.var().index()] = reason;
                self.order[lit.var().index()] = self.stamp;
                self.stamp += 1;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagates to fixpoint from the current queue head. Returns `true`
    /// on conflict.
    ///
    /// Invariant maintained for [`Checker::undo_to`]: clause counters
    /// reflect exactly the assignments of `trail[..qhead]` — on conflict
    /// the partially applied pass for the current literal is rolled back
    /// before returning, leaving that literal at `qhead`.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let falsified = !self.trail[self.qhead];
            let mut conflict_at: Option<usize> = None;
            for idx in 0..self.occ[falsified.index()].len() {
                let cref = self.occ[falsified.index()][idx] as usize;
                if !self.clauses[cref].active {
                    continue;
                }
                self.clauses[cref].nonfalse -= 1;
                match self.clauses[cref].nonfalse {
                    0 => {
                        // Only falsified literals are ever decremented, so
                        // zero non-false means no satisfied literal either.
                        conflict_at = Some(idx);
                        self.conflict_seed = Some(ConflictSeed::Clause(cref as u32));
                        break;
                    }
                    1 => {
                        // The counter can overstate: a counted literal may
                        // already be false but still pending in the queue.
                        // Scan defensively rather than trusting it.
                        let unit = self.clauses[cref]
                            .lits
                            .iter()
                            .copied()
                            .find(|&l| self.value(l) != -1);
                        match unit {
                            Some(u) if self.value(u) == 0 => {
                                let enqueued = self.enqueue(u, cref as u32);
                                debug_assert!(enqueued);
                            }
                            Some(_) => {} // satisfied clause
                            None => {
                                conflict_at = Some(idx);
                                self.conflict_seed = Some(ConflictSeed::Clause(cref as u32));
                                break;
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Some(stop) = conflict_at {
                for idx in (0..=stop).rev() {
                    let cref = self.occ[falsified.index()][idx] as usize;
                    if self.clauses[cref].active {
                        self.clauses[cref].nonfalse += 1;
                    }
                }
                return true;
            }
            self.qhead += 1;
            self.stats.propagations += 1;
        }
        false
    }

    /// Rolls the trail back to length `mark`, restoring counters.
    fn undo_to(&mut self, mark: usize) {
        // Counters were decremented exactly for trail entries whose
        // occurrence pass completed, i.e. entries before `qhead` (the
        // `propagate` invariant). Re-increment exactly those.
        for i in (mark..self.qhead).rev() {
            let falsified = !self.trail[i];
            for idx in 0..self.occ[falsified.index()].len() {
                let cref = self.occ[falsified.index()][idx] as usize;
                if self.clauses[cref].active {
                    self.clauses[cref].nonfalse += 1;
                }
            }
        }
        for &lit in &self.trail[mark..] {
            self.assign[lit.var().index()] = 0;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
    }

    /// Sorted, deduped literals; `None` for tautologies.
    fn normalize(lits: &[Lit]) -> Option<Vec<Lit>> {
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.windows(2).any(|w| w[0] == !w[1]) {
            return None;
        }
        Some(sorted)
    }

    /// Admits a (pre-normalized) clause into the database and runs root
    /// propagation.
    fn add_clause(&mut self, lits: Vec<Lit>) {
        if self.contradiction {
            return;
        }
        for &l in &lits {
            self.ensure_var(l);
        }
        if lits.is_empty() {
            self.contradiction = true;
            return;
        }
        let nonfalse = lits.iter().filter(|&&l| self.value(l) != -1).count() as u32;
        let cref = self.clauses.len() as u32;
        for &l in &lits {
            self.occ[l.index()].push(cref);
        }
        self.by_lits.entry(lits.clone()).or_default().push(cref);
        self.clauses.push(CClause {
            lits: lits.clone(),
            nonfalse,
            active: true,
        });
        match nonfalse {
            0 => {
                // All literals false at root (a True literal counts as
                // non-false, so none is satisfied): conflict.
                self.conflict_seed = Some(ConflictSeed::Clause(cref));
                self.note_root_conflict();
                self.contradiction = true;
            }
            1 => {
                let unit = lits
                    .iter()
                    .copied()
                    .find(|&l| self.value(l) != -1)
                    .expect("one non-false literal");
                if self.value(unit) == 0 {
                    let enqueued = self.enqueue(unit, cref);
                    debug_assert!(enqueued);
                    if self.propagate() {
                        self.note_root_conflict();
                        self.contradiction = true;
                    }
                }
                // `unit` already true ⇒ clause satisfied, nothing to do.
            }
            _ => {}
        }
    }

    /// Captures the core of a conflict reached at root level (while the
    /// reasons behind it are still live) for [`Checker::final_core`].
    fn note_root_conflict(&mut self) {
        if self.track_cores && self.root_core.is_none() {
            self.root_core = Some(self.capture_core());
        }
    }

    /// RUP probe: temporarily assume every literal of `assumed` true,
    /// propagate, report whether a conflict was reached, and undo. When
    /// core tracking is on, a conflicting probe leaves its derivation's
    /// clause set in `last_probe_core`.
    fn probes_to_conflict(&mut self, assumed: &[Lit]) -> bool {
        if self.contradiction {
            self.last_probe_core = self.root_core.clone();
            return true;
        }
        for &l in assumed {
            self.ensure_var(l);
        }
        let mark = self.trail.len();
        debug_assert_eq!(self.qhead, mark, "root state is a fixpoint");
        let mut conflict = false;
        for &l in assumed {
            if !self.enqueue(l, NO_REASON) {
                self.conflict_seed = Some(ConflictSeed::Lit(l));
                conflict = true;
                break;
            }
        }
        let conflict = conflict || self.propagate();
        if conflict && self.track_cores {
            self.last_probe_core = Some(self.capture_core());
        }
        self.undo_to(mark);
        conflict
    }

    /// Replays trace steps in order, verifying each `Learn` step's RUP
    /// property before admitting it.
    ///
    /// # Errors
    ///
    /// [`CertError::LearnNotRup`] if a learnt clause is not justified by
    /// the database built so far; [`CertError::EmptyLearnWithoutConflict`]
    /// if the trace claims outright unsatisfiability the checker cannot
    /// reproduce.
    pub fn feed(&mut self, steps: &[ProofStep]) -> Result<(), CertError> {
        for step in steps {
            let pos = self.steps_fed;
            self.steps_fed += 1;
            match step {
                ProofStep::Axiom(lits) => {
                    self.stats.axioms += 1;
                    if let Some(norm) = Self::normalize(lits) {
                        self.add_clause(norm);
                    }
                }
                ProofStep::Learn(lits) if lits.is_empty() => {
                    if !self.contradiction {
                        return Err(CertError::EmptyLearnWithoutConflict { step: pos });
                    }
                }
                ProofStep::Learn(lits) => {
                    if self.deferred {
                        // Admit without probing; `verify_unsat` will
                        // RUP-check this clause iff a refutation's
                        // dependency closure reaches it.
                        if let Some(norm) = Self::normalize(lits) {
                            let cref = self.clauses.len() as u32;
                            self.add_clause(norm);
                            if self.clauses.len() > cref as usize {
                                self.learn_step.insert(cref, pos);
                            }
                        }
                        continue;
                    }
                    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                    if !self.probes_to_conflict(&negated) {
                        return Err(CertError::LearnNotRup {
                            step: pos,
                            clause: lits.clone(),
                        });
                    }
                    self.stats.learns += 1;
                    let core = self.track_cores.then(|| self.last_probe_core.take());
                    if let Some(norm) = Self::normalize(lits) {
                        let cref = self.clauses.len() as u32;
                        self.add_clause(norm);
                        if let (Some(core), true) =
                            (core.flatten(), self.clauses.len() > cref as usize)
                        {
                            self.learn_cores.insert(cref, core);
                        }
                    }
                }
                ProofStep::Delete(lits) => {
                    self.delete(lits);
                }
            }
        }
        Ok(())
    }

    /// Applies a deletion. Unknown clauses are ignored: deletions only
    /// ever weaken propagation, so skipping one is sound (the solver also
    /// deletes nothing the checker relies on for already-derived root
    /// literals — those stay assigned, as consequences of the axioms).
    fn delete(&mut self, lits: &[Lit]) {
        let Some(norm) = Self::normalize(lits) else {
            return;
        };
        let Some(refs) = self.by_lits.get_mut(&norm) else {
            return;
        };
        let Some(cref) = refs.pop() else {
            return;
        };
        if refs.is_empty() {
            self.by_lits.remove(&norm);
        }
        self.clauses[cref as usize].active = false;
        self.stats.deletions += 1;
    }

    /// Certifies that the replayed formula is unsatisfiable under
    /// `assumptions` (empty slice ⇒ unconditionally unsatisfiable): the
    /// negated-assumption clause must have the RUP property, which covers
    /// both of the solver's UNSAT return paths — an empty learnt clause in
    /// the trace, or an assumption literal falsified by propagation.
    ///
    /// # Errors
    ///
    /// [`CertError::AssumptionsNotRefuted`] if assuming every assumption
    /// and unit-propagating does not conflict.
    pub fn verify_unsat(&mut self, assumptions: &[Lit]) -> Result<(), CertError> {
        if self.probes_to_conflict(assumptions) {
            if self.track_cores {
                self.final_core = self.last_probe_core.take();
            }
            if self.deferred {
                let seed = self.final_core.clone().unwrap_or_default();
                self.verify_backward(&seed)?;
            }
            Ok(())
        } else {
            Err(CertError::AssumptionsNotRefuted {
                assumptions: assumptions.to_vec(),
            })
        }
    }

    /// Backward verification pass: RUP-checks every unverified learnt
    /// clause in the dependency closure of `seed`, in decreasing clause
    /// order, each against only the clauses admitted *before* it. Cores
    /// recorded here feed [`Checker::learn_core`] exactly as the eager
    /// mode's probes would, so hint emission is mode-agnostic.
    ///
    /// The scratch assignment starts as the root trail restricted to
    /// literals whose derivation lies entirely below the current bound —
    /// for a lemma at index `i` that is precisely the root fixpoint the
    /// eager checker would have probed against at admission time (every
    /// literal assigned before step `i` has a derivation chain through
    /// clauses `< i`; later literals cannot, because their chain passes
    /// through the clause that triggered them). Bounds only decrease
    /// across the pass, so the restriction is a single monotone sweep.
    fn verify_backward(&mut self, seed: &[u32]) -> Result<(), CertError> {
        let mut heap: BinaryHeap<u32> = seed
            .iter()
            .copied()
            .filter(|c| self.learn_step.contains_key(c) && !self.verified.contains(c))
            .collect();
        if heap.is_empty() {
            return Ok(());
        }
        let nvars = self.assign.len();
        let mut val = vec![0i8; nvars];
        let mut reason2 = vec![NO_REASON; nvars];
        let mut order2 = vec![0u64; nvars];
        // chain_max[v]: the largest clause index on the derivation of v's
        // root assignment. Trail order guarantees reason antecedents are
        // computed before their consequences.
        let mut chain_max = vec![0u32; nvars];
        for &lit in &self.trail {
            let v = lit.var().index();
            let r = self.reason[v];
            let mut m = 0u32;
            if r != NO_REASON {
                m = r;
                for &l in &self.clauses[r as usize].lits {
                    let u = l.var().index();
                    if u != v {
                        m = m.max(chain_max[u]);
                    }
                }
            }
            chain_max[v] = m;
            val[v] = self.assign[v];
            reason2[v] = r;
            order2[v] = self.order[v];
        }
        let mut by_chain: Vec<(u32, Lit)> = self
            .trail
            .iter()
            .map(|&l| (chain_max[l.var().index()], l))
            .collect();
        by_chain.sort_unstable_by_key(|&(m, _)| m);
        let mut active_end = by_chain.len();
        let mut stamp2 = self.stamp;
        let mut seen = vec![0u32; nvars];
        let mut generation = 0u32;
        let value2 = |val: &[i8], lit: Lit| -> i8 {
            let v = val[lit.var().index()];
            if lit.is_positive() {
                v
            } else {
                -v
            }
        };
        // Per-clause non-false counters under the scratch assignment, kept
        // consistent across probes and base shrinks so each clause touch
        // during probe propagation is O(1) — the same scheme the eager
        // path uses, rebuilt once per backward pass.
        let mut nonfalse2: Vec<u32> = self
            .clauses
            .iter()
            .map(|c| c.lits.iter().filter(|&&l| value2(&val, l) != -1).count() as u32)
            .collect();
        while let Some(cref) = heap.pop() {
            if self.verified.contains(&cref) {
                continue;
            }
            while active_end > 0 && by_chain[active_end - 1].0 >= cref {
                let lit = by_chain[active_end - 1].1;
                val[lit.var().index()] = 0;
                // `!lit` occurrences were false and are now open again.
                for &c2 in &self.occ[(!lit).index()] {
                    nonfalse2[c2 as usize] += 1;
                }
                active_end -= 1;
            }
            let lits = self.clauses[cref as usize].lits.clone();
            let mut trail2: Vec<Lit> = Vec::new();
            let mut conflict: Option<ConflictSeed> = None;
            for &l in &lits {
                let nl = !l;
                match value2(&val, nl) {
                    1 => {}
                    -1 => {
                        conflict = Some(ConflictSeed::Lit(nl));
                        break;
                    }
                    _ => {
                        let v = nl.var().index();
                        val[v] = if nl.is_positive() { 1 } else { -1 };
                        reason2[v] = NO_REASON;
                        order2[v] = stamp2;
                        stamp2 += 1;
                        trail2.push(nl);
                    }
                }
            }
            // Counting propagation, mirroring `propagate`'s invariant:
            // counters reflect exactly the assignments of fully-processed
            // trail entries; on conflict the partial pass for the current
            // literal is rolled back. Counters are maintained for *every*
            // clause (the undo needs symmetry), but only clauses below the
            // bound may act as units or conflicts.
            let mut qh = 0usize;
            while conflict.is_none() && qh < trail2.len() {
                let falsified = !trail2[qh];
                let mut conflict_at: Option<usize> = None;
                for idx in 0..self.occ[falsified.index()].len() {
                    let c2 = self.occ[falsified.index()][idx];
                    nonfalse2[c2 as usize] -= 1;
                    if c2 >= cref {
                        continue;
                    }
                    match nonfalse2[c2 as usize] {
                        0 => {
                            conflict_at = Some(idx);
                            conflict = Some(ConflictSeed::Clause(c2));
                            break;
                        }
                        1 => {
                            let unit = self.clauses[c2 as usize]
                                .lits
                                .iter()
                                .copied()
                                .find(|&l| value2(&val, l) != -1);
                            match unit {
                                Some(u) if value2(&val, u) == 0 => {
                                    let v = u.var().index();
                                    val[v] = if u.is_positive() { 1 } else { -1 };
                                    reason2[v] = c2;
                                    order2[v] = stamp2;
                                    stamp2 += 1;
                                    trail2.push(u);
                                }
                                Some(_) => {}
                                None => {
                                    conflict_at = Some(idx);
                                    conflict = Some(ConflictSeed::Clause(c2));
                                    break;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(stop) = conflict_at {
                    for idx in (0..=stop).rev() {
                        nonfalse2[self.occ[falsified.index()][idx] as usize] += 1;
                    }
                    break;
                }
                qh += 1;
                self.stats.propagations += 1;
            }
            let undo_probe =
                |val: &mut [i8], nonfalse2: &mut [u32], trail2: &[Lit], qh: usize| {
                    for i in (0..qh).rev() {
                        let falsified = !trail2[i];
                        for &c2 in &self.occ[falsified.index()] {
                            nonfalse2[c2 as usize] += 1;
                        }
                    }
                    for &l in trail2 {
                        val[l.var().index()] = 0;
                    }
                };
            let Some(conflict) = conflict else {
                undo_probe(&mut val, &mut nonfalse2, &trail2, qh);
                return Err(CertError::LearnNotRup {
                    step: self.learn_step[&cref],
                    clause: lits,
                });
            };
            // Core capture on the scratch state, mirroring `capture_core`.
            generation += 1;
            let mut stack: Vec<usize> = Vec::new();
            let seed_clause = match conflict {
                ConflictSeed::Clause(c) => {
                    stack.extend(self.clauses[c as usize].lits.iter().map(|l| l.var().index()));
                    Some(c)
                }
                ConflictSeed::Lit(lit) => {
                    stack.push(lit.var().index());
                    None
                }
            };
            let mut chain: Vec<(u64, u32)> = Vec::new();
            while let Some(v) = stack.pop() {
                if seen[v] == generation {
                    continue;
                }
                seen[v] = generation;
                let r = reason2[v];
                if r != NO_REASON && val[v] != 0 {
                    chain.push((order2[v], r));
                    stack.extend(self.clauses[r as usize].lits.iter().map(|l| l.var().index()));
                }
            }
            chain.sort_unstable();
            let mut core: Vec<u32> = chain.into_iter().map(|(_, r)| r).collect();
            if let Some(c) = seed_clause {
                core.push(c);
            }
            undo_probe(&mut val, &mut nonfalse2, &trail2, qh);
            for &c in &core {
                if self.learn_step.contains_key(&c) && !self.verified.contains(&c) {
                    heap.push(c);
                }
            }
            self.learn_cores.insert(cref, core);
            self.verified.insert(cref);
            self.stats.learns += 1;
        }
        Ok(())
    }
}

/// One-shot certification that `steps` proves unsatisfiability under
/// `assumptions`. Equivalent to feeding a fresh [`Checker`] the whole
/// trace and calling [`Checker::verify_unsat`].
///
/// # Errors
///
/// Any [`CertError`] produced during replay or the final refutation probe.
pub fn check_unsat_certificate(
    steps: &[ProofStep],
    assumptions: &[Lit],
) -> Result<CheckerStats, CertError> {
    let mut checker = Checker::new();
    checker.feed(steps)?;
    checker.verify_unsat(assumptions)?;
    Ok(checker.stats())
}

/// Certifies a SAT answer: `model` (indexed by variable, `true` =
/// positive) must satisfy every axiom clause of `steps` and every
/// assumption literal. Learnt clauses are not checked — they are logical
/// consequences of the axioms, so a model of the axioms satisfies them
/// (and checking axioms only keeps this sound even against a corrupted
/// trace). Returns the number of clauses checked.
///
/// # Errors
///
/// [`CertError::ClauseFalsified`], [`CertError::AssumptionFalsified`], or
/// [`CertError::ModelTooShort`].
pub fn check_model(
    steps: &[ProofStep],
    assumptions: &[Lit],
    model: &[bool],
) -> Result<usize, CertError> {
    let lit_true = |l: Lit| -> Result<bool, CertError> {
        model
            .get(l.var().index())
            .map(|&b| b == l.is_positive())
            .ok_or(CertError::ModelTooShort {
                var: l.var().index(),
            })
    };
    let mut checked = 0usize;
    for step in steps {
        let ProofStep::Axiom(lits) = step else {
            continue;
        };
        let mut satisfied = false;
        for &l in lits {
            if lit_true(l)? {
                satisfied = true;
                break;
            }
        }
        if !satisfied {
            return Err(CertError::ClauseFalsified {
                axiom: checked,
                clause: lits.clone(),
            });
        }
        checked += 1;
    }
    for &a in assumptions {
        if !lit_true(a)? {
            return Err(CertError::AssumptionFalsified { lit: a });
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_sat::{SolveResult, Solver, Var};

    fn pigeonhole_unsat_solver() -> Solver {
        let mut s = Solver::new();
        s.enable_proof_logging();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (a, b) in row_i.iter().zip(row_j) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        s
    }

    #[test]
    fn certifies_pigeonhole_unsat() {
        let s = pigeonhole_unsat_solver();
        let stats =
            check_unsat_certificate(s.proof().expect("logged").steps(), &[]).expect("valid proof");
        assert!(stats.learns > 0, "proof exercises conflict analysis");
    }

    #[test]
    fn corrupted_proof_is_rejected() {
        let s = pigeonhole_unsat_solver();
        let mut steps = s.proof().expect("logged").steps().to_vec();
        // Replace the first learnt clause with an unjustified unit over a
        // fresh, unconstrained variable: nothing propagates, no conflict.
        let fresh = Var::from_index(99).positive();
        let learn_pos = steps
            .iter()
            .position(|st| matches!(st, ProofStep::Learn(l) if !l.is_empty()))
            .expect("trace has learns");
        steps[learn_pos] = ProofStep::Learn(vec![fresh]);
        match check_unsat_certificate(&steps, &[]) {
            Err(CertError::LearnNotRup { step, clause }) => {
                assert_eq!(step, learn_pos);
                assert_eq!(clause, vec![fresh]);
            }
            other => panic!("expected LearnNotRup, got {other:?}"),
        }
    }

    #[test]
    fn dropped_axiom_breaks_the_proof() {
        let s = pigeonhole_unsat_solver();
        let steps = s.proof().expect("logged").steps();
        // Removing the final step (the empty clause) must break the
        // certificate: without it, nothing refutes the empty assumption
        // set.
        let truncated = &steps[..steps.len() - 1];
        // The truncated trace may still be internally consistent, but the
        // UNSAT claim must fail unless propagation alone conflicts.
        let mut checker = Checker::new();
        checker.feed(truncated).expect("prefix is consistent");
        if !checker.contradiction() {
            assert!(matches!(
                checker.verify_unsat(&[]),
                Err(CertError::AssumptionsNotRefuted { .. })
            ));
        }
        // Dropping an axiom invalidates later learns (or the final empty
        // clause) — the checker must reject somewhere, not accept.
        let without_axiom: Vec<ProofStep> = steps
            .iter()
            .enumerate()
            .filter(|(i, st)| !(matches!(st, ProofStep::Axiom(_)) && *i == 0))
            .map(|(_, st)| st.clone())
            .collect();
        let mut checker = Checker::new();
        let fed = checker.feed(&without_axiom);
        assert!(
            fed.is_err() || checker.verify_unsat(&[]).is_err() || checker.contradiction(),
            "either the replay or the final claim must fail, or the \
             remaining clauses are genuinely UNSAT"
        );
    }

    #[test]
    fn certifies_unsat_under_assumptions_without_solver_logging() {
        // The solver's assumption-failure return path logs nothing; the
        // checker's own propagation must close the gap.
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let g = s.new_var();
        s.add_clause(&[g.negative(), x.positive()]);
        s.add_clause(&[g.negative(), x.negative()]);
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        let steps = &s.proof().expect("logged").steps()[..snapshot];
        check_unsat_certificate(steps, &[g.positive()]).expect("assumption UNSAT certifies");
        // Without the assumption the formula is satisfiable — the claim
        // must be rejected, not rubber-stamped.
        assert!(matches!(
            check_unsat_certificate(steps, &[]),
            Err(CertError::AssumptionsNotRefuted { .. })
        ));
    }

    #[test]
    fn certificate_prefix_survives_retirement() {
        // The activation-literal protocol: the certificate snapshot is
        // taken before the retirement unit !g is asserted. Replaying the
        // full trace and probing at the snapshot must still certify, and
        // the retired trace must NOT certify `g` being assumable (the
        // vacuity hazard this design avoids).
        let mut s = Solver::new();
        s.enable_proof_logging();
        let x = s.new_var();
        let g = s.new_var();
        s.add_clause(&[g.negative(), x.positive()]);
        s.add_clause(&[g.negative(), x.negative()]);
        assert_eq!(s.solve_with(&[g.positive()]), SolveResult::Unsat);
        let snapshot = s.proof_len();
        s.add_clause(&[g.negative()]); // retire the check
        let steps = s.proof().expect("logged").steps();
        // Prefix check (what the engine does): genuine refutation.
        check_unsat_certificate(&steps[..snapshot], &[g.positive()]).expect("prefix certifies");
        // Full-trace check still succeeds but only vacuously (!g is an
        // axiom), which is why the engine snapshots before retirement.
        check_unsat_certificate(steps, &[g.positive()]).expect("vacuous but consistent");
    }

    #[test]
    fn deletions_are_applied_and_unknown_deletions_ignored() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Axiom(vec![!a, b]),
            // (a|b) & (!a|b) ⊨ b by resolution; RUP: assume !b, propagate
            // !a from clause 1... counters: both clauses become unit on !b.
            ProofStep::Learn(vec![b]),
            // Delete in permuted order — must still resolve.
            ProofStep::Delete(vec![b, a]),
            // Deleting something never added is ignored, not an error.
            ProofStep::Delete(vec![!b]),
            ProofStep::Axiom(vec![!b]),
        ];
        let mut checker = Checker::new();
        checker.feed(&steps).expect("valid");
        assert_eq!(checker.stats().deletions, 1);
        // b was learnt, then !b asserted: contradiction at root.
        assert!(checker.contradiction());
        checker.verify_unsat(&[]).expect("empty-assumption UNSAT");
    }

    #[test]
    fn incremental_feed_equals_one_shot() {
        let s = pigeonhole_unsat_solver();
        let steps = s.proof().expect("logged").steps();
        let one_shot = check_unsat_certificate(steps, &[]).expect("valid");
        let mut inc = Checker::new();
        for chunk in steps.chunks(3) {
            inc.feed(chunk).expect("valid chunk");
        }
        inc.verify_unsat(&[]).expect("valid");
        assert_eq!(inc.stats(), one_shot);
        assert_eq!(inc.steps_fed(), steps.len());
    }

    #[test]
    fn model_check_accepts_and_rejects() {
        let mut s = Solver::new();
        s.enable_proof_logging();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative(), b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let steps = s.proof().expect("logged").steps();
        let model = s.model().to_vec();
        let checked = check_model(steps, &[], &model).expect("model satisfies");
        assert_eq!(checked, 2);
        // Corrupt the model: force b false — clause (a|b) or (!a|b) breaks.
        let mut bad = model.clone();
        bad[b.index()] = false;
        assert!(matches!(
            check_model(steps, &[], &bad),
            Err(CertError::ClauseFalsified { .. })
        ));
        // A model that ignores an assumption is rejected.
        assert!(matches!(
            check_model(steps, &[b.negative()], &model),
            Err(CertError::AssumptionFalsified { .. })
        ));
        // A truncated model is rejected, not silently extended.
        assert!(matches!(
            check_model(steps, &[], &model[..1]),
            Err(CertError::ModelTooShort { .. })
        ));
    }

    #[test]
    fn deferred_mode_certifies_pigeonhole_with_fewer_probes() {
        let s = pigeonhole_unsat_solver();
        let steps = s.proof().expect("logged").steps();
        let mut eager = Checker::new();
        eager.feed(steps).expect("valid");
        eager.verify_unsat(&[]).expect("valid");
        let mut deferred = Checker::with_deferred_checking();
        deferred.feed(steps).expect("replay is probe-free");
        deferred.verify_unsat(&[]).expect("backward pass certifies");
        assert!(
            deferred.stats().learns <= eager.stats().learns,
            "backward checking verifies at most the eager set \
             ({} > {})",
            deferred.stats().learns,
            eager.stats().learns
        );
    }

    #[test]
    fn deferred_mode_rejects_corrupt_needed_lemma() {
        // Two units force a root contradiction through a learnt clause the
        // refutation needs; corrupting that clause must surface LearnNotRup
        // from the backward pass even though feeding admitted it silently.
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        let steps = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Axiom(vec![!a, b]),
            ProofStep::Learn(vec![b]),
            ProofStep::Axiom(vec![!b]),
        ];
        let mut ok = Checker::with_deferred_checking();
        ok.feed(&steps).expect("admitted");
        ok.verify_unsat(&[]).expect("b is RUP, closure certifies");
        // Corrupt: claim `a` instead — not RUP, and the contradiction
        // through it must not be accepted.
        let bad = vec![
            ProofStep::Axiom(vec![a, b]),
            ProofStep::Learn(vec![!b]),
            ProofStep::Axiom(vec![!a]),
        ];
        let mut checker = Checker::with_deferred_checking();
        checker.feed(&bad).expect("feeding never probes");
        match checker.verify_unsat(&[]) {
            Err(CertError::LearnNotRup { step, clause }) => {
                assert_eq!(step, 1);
                assert_eq!(clause, vec![!b]);
            }
            other => panic!("expected LearnNotRup, got {other:?}"),
        }
    }

    #[test]
    fn deferred_mode_ignores_unused_junk_lemma() {
        // A lemma nothing depends on is never probed — the backward
        // checker's defining trade-off. The eager checker rejects the same
        // trace at feed time.
        let s = pigeonhole_unsat_solver();
        let mut steps = s.proof().expect("logged").steps().to_vec();
        let junk = ProofStep::Learn(vec![Var::from_index(97).positive()]);
        // Insert before the first learn: admitted, over a variable no
        // other clause mentions, so no derivation can depend on it.
        let pos = steps
            .iter()
            .position(|st| matches!(st, ProofStep::Learn(_)))
            .expect("trace has learns");
        steps.insert(pos, junk);
        let mut deferred = Checker::with_deferred_checking();
        deferred.feed(&steps).expect("admitted unchecked");
        deferred
            .verify_unsat(&[])
            .expect("junk is outside the closure");
        let mut eager = Checker::new();
        assert!(
            eager.feed(&steps).is_err(),
            "forward replay probes every lemma and rejects the junk"
        );
    }

    #[test]
    fn deferred_incremental_matches_eager_on_random_traces() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBAC4);
        for round in 0..100 {
            let num_vars = rng.gen_range(2..=10usize);
            let mut s = Solver::new();
            s.enable_proof_logging();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for _ in 0..rng.gen_range(1..=30usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&lits);
            }
            // Several incremental probes over one growing trace, the
            // engine's usage pattern: feed the delta, then verify.
            let mut deferred = Checker::with_deferred_checking();
            let mut fed = 0usize;
            for _ in 0..rng.gen_range(1..=3usize) {
                let assumptions: Vec<Lit> = (0..rng.gen_range(0..=2usize))
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                let result = s.solve_with(&assumptions);
                let snapshot = s.proof_len();
                let steps = &s.proof().expect("logged").steps()[..snapshot];
                deferred.feed(&steps[fed..]).expect("admitted");
                fed = snapshot;
                if result == SolveResult::Unsat {
                    check_unsat_certificate(steps, &assumptions)
                        .unwrap_or_else(|e| panic!("round {round}: eager rejected: {e}"));
                    deferred
                        .verify_unsat(&assumptions)
                        .unwrap_or_else(|e| panic!("round {round}: deferred rejected: {e}"));
                }
            }
        }
    }

    #[test]
    fn random_cnfs_certify_both_ways() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCE47);
        for round in 0..200 {
            let num_vars = rng.gen_range(2..=10usize);
            let num_clauses = rng.gen_range(1..=30usize);
            let mut s = Solver::new();
            s.enable_proof_logging();
            let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(&lits);
            }
            let assumptions: Vec<Lit> = (0..rng.gen_range(0..=2usize))
                .map(|_| vars[rng.gen_range(0..num_vars)].lit(rng.gen_bool(0.5)))
                .collect();
            let result = s.solve_with(&assumptions);
            let snapshot = s.proof_len();
            let steps = &s.proof().expect("logged").steps()[..snapshot];
            match result {
                SolveResult::Unsat => {
                    check_unsat_certificate(steps, &assumptions)
                        .unwrap_or_else(|e| panic!("round {round}: proof rejected: {e}"));
                }
                SolveResult::Sat => {
                    check_model(steps, &assumptions, s.model())
                        .unwrap_or_else(|e| panic!("round {round}: model rejected: {e}"));
                }
            }
        }
    }
}
