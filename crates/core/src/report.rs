//! Verdicts, flow events, and verification reports.

use fastpath_formal::{CertStats, ElaborationStats, ProductStats};
use fastpath_rtl::SignalId;
use fastpath_sat::SolverStats;
use fastpath_sim::SimEngine;
use std::fmt;
use std::time::Duration;

/// The analysis result for a design (Table I "Data-Oblivious" column).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Data-oblivious unconditionally (*True*).
    DataOblivious,
    /// Data-oblivious only under the listed derived software constraints
    /// (*Constrained*).
    ConstrainedDataOblivious(Vec<String>),
    /// Not data-oblivious under any reasonable constraint (*False*).
    NotDataOblivious,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::DataOblivious => write!(f, "True"),
            Verdict::ConstrainedDataOblivious(_) => write!(f, "Constrained"),
            Verdict::NotDataOblivious => write!(f, "False"),
        }
    }
}

/// The FastPath stage at which the analysis completed (Table I "Method").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompletionMethod {
    /// Structural proof: no HFG path from `X_D` to `Y_C`.
    Hfg,
    /// Terminated during IFT simulation (an unconstrained leak was found).
    Ift,
    /// Exhaustive UPEC-DIT proof.
    Upec,
}

impl fmt::Display for CompletionMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionMethod::Hfg => write!(f, "HFG"),
            CompletionMethod::Ift => write!(f, "IFT"),
            CompletionMethod::Upec => write!(f, "UPEC"),
        }
    }
}

/// The stage of the flow an event occurred in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Structural analysis (Sec. IV-A).
    Structural,
    /// IFT-enhanced simulation (Sec. IV-B).
    Simulation,
    /// UPEC-DIT formal verification (Sec. IV-C).
    Formal,
}

/// One step of the flow — together these trace every edge of the paper's
/// Fig. 1 diagram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowEvent {
    /// HFG built; records whether any `X_D → Y_C` path exists.
    HfgAnalysis {
        /// `false` enables the early exit.
        paths_exist: bool,
    },
    /// Early termination by structural proof.
    StructuralProof,
    /// One IFT simulation run.
    IftRun {
        /// Property violations observed.
        violations: usize,
        /// State signals tainted.
        tainted: usize,
        /// State signals untainted (`|Z'|`).
        untainted: usize,
    },
    /// A counterexample led to deriving a software constraint
    /// (feedback edge: constraint ⇒ re-simulate).
    ConstraintDerived {
        /// Constraint name.
        name: String,
        /// Where the counterexample came from.
        stage: Stage,
    },
    /// The IFT flow policy was refined (declassification).
    PolicyRefined {
        /// The declassified signal.
        signal: SignalId,
    },
    /// A spurious formal counterexample was excluded with an invariant.
    InvariantAdded {
        /// Invariant name.
        name: String,
    },
    /// A genuine vulnerability was confirmed.
    VulnerabilityFound {
        /// Description for the report.
        description: String,
        /// Stage that exposed it.
        stage: Stage,
    },
    /// The design was replaced by its fixed variant and the flow restarted.
    DesignFixed,
    /// A formal counterexample showed legal data propagation; the listed
    /// number of signals were inspected and removed from `Z'`.
    PropagationsRemoved {
        /// How many signals were removed (each one manual inspection).
        count: usize,
    },
    /// One UPEC-DIT property check.
    UpecCheck {
        /// Whether the inductive property held.
        holds: bool,
    },
    /// The IC3 engine discharged the remaining obligations with a
    /// machine-derived relational invariant (re-validated through the
    /// standard certified check path before being trusted).
    Ic3Discharged {
        /// Clauses in the derived inductive invariant.
        clauses: usize,
    },
    /// The fixed point was reached: `Z'` is a semantic partitioning.
    FixedPoint,
}

/// Wall-clock timings per stage (reproduces the Sec. V-E discussion).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// HFG construction + path queries.
    pub structural: Duration,
    /// All IFT simulation runs.
    pub simulation: Duration,
    /// 2-safety model elaboration (AIG + CNF).
    pub formal_elaboration: Duration,
    /// All UPEC property checks.
    pub formal_checks: Duration,
    /// Hinted backward certification (feed + core-tracked verify + hinted
    /// artifact emission); a subset of `formal_checks` wall-clock.
    pub cert_backward: Duration,
    /// Forward-replay certification (feed + verify + full DRUP renders);
    /// a subset of `formal_checks` wall-clock. At most one of the two
    /// certification buckets is nonzero per run.
    pub cert_forward: Duration,
    /// Number of UPEC checks performed.
    pub check_count: u64,
}

/// Simulation work done during one flow run, and the backend that did it.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// The engine that executed the IFT runs.
    pub engine: SimEngine,
    /// Complete IFT simulation runs (including constraint/policy trials).
    pub runs: u64,
    /// Simulated cycles summed over those runs.
    pub cycles: u64,
}

impl SimStats {
    /// Simulated cycles per second of simulation wall-clock time, the
    /// headline throughput number of the `sim` bench group.
    pub fn cycles_per_second(&self, simulation: Duration) -> f64 {
        let secs = simulation.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.cycles as f64 / secs
        }
    }
}

/// Certification results accumulated over one flow (or baseline) run.
///
/// Present in a [`FlowReport`] only when the run was started with
/// certification enabled. A run is *fully certified* when every UPEC
/// verdict was independently validated — every UNSAT answer by a RUP
/// proof replay, every SAT answer by a model check — **and** every
/// counterexample the flow acted on was reproduced by concrete
/// simulation.
#[derive(Clone, Debug, Default)]
pub struct CertificationSummary {
    /// Per-check certification counters, folded across every UPEC engine
    /// of the run (the fixed design variant included).
    pub stats: CertStats,
    /// Counterexamples replayed through the concrete simulator.
    pub counterexamples_replayed: u64,
    /// Human-readable descriptions of every certificate rejection or
    /// replay mismatch. Empty on a fully certified run.
    pub failures: Vec<String>,
}

impl CertificationSummary {
    /// `true` iff every verdict and counterexample was validated.
    pub fn fully_certified(&self) -> bool {
        self.stats.cert_failures == 0 && self.failures.is_empty()
    }

    /// Folds another run's counters into this one.
    pub fn merge(&mut self, other: &CertificationSummary) {
        self.stats.merge(&other.stats);
        self.counterexamples_replayed += other.counterexamples_replayed;
        self.failures.extend(other.failures.iter().cloned());
    }
}

/// The result of running the FastPath flow (or the formal-only baseline)
/// on one case study.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Final verdict.
    pub verdict: Verdict,
    /// Completing method (Table I "Method").
    pub method: CompletionMethod,
    /// Number of state-holding word-level signals.
    pub state_signals: usize,
    /// Total state bits.
    pub state_bits: u64,
    /// Data propagations found by IFT alone (`None` if the IFT stage never
    /// ran — e.g. HFG early exit or the baseline flow).
    pub ift_propagations: Option<usize>,
    /// Total data propagations (state signals outside the final `Z'`).
    pub total_propagations: Option<usize>,
    /// The paper's effort metric: manually inspected counterexamples /
    /// divergent signals.
    pub manual_inspections: u64,
    /// Derived software constraints (names).
    pub derived_constraints: Vec<String>,
    /// Invariants that were needed.
    pub invariants_added: Vec<String>,
    /// Confirmed vulnerabilities.
    pub vulnerabilities: Vec<String>,
    /// The full event trace (Fig. 1 edges).
    pub events: Vec<FlowEvent>,
    /// Stage timings.
    pub timings: StageTimings,
    /// SAT-solver work accumulated across every UPEC check of the run.
    pub solver_stats: SolverStats,
    /// Elaboration-cache effectiveness across every UPEC engine of the
    /// run (AIG node construction avoided by the cached frame template).
    pub elaboration: ElaborationStats,
    /// Product-construction size across every UPEC check of the run
    /// (AIG nodes, SAT variables and clauses, predicate and guard
    /// counts) — the counters the word-level encoding shrinks.
    pub product: ProductStats,
    /// Simulation backend and workload of the run.
    pub sim: SimStats,
    /// Verification-cache effectiveness (`None` unless a cache was
    /// attached). Provenance only: verdicts, events, and counts are
    /// byte-identical whether a run was served warm or cold.
    pub cache: Option<crate::cache::CacheStats>,
    /// IC3 engine work (`None` unless at least one IC3 discharge attempt
    /// ran — the induction reference engine never sets this).
    pub ic3: Option<fastpath_formal::Ic3Stats>,
    /// Certification results (`None` unless the run certified verdicts).
    pub certification: Option<CertificationSummary>,
}

impl FlowReport {
    /// `true` iff the flow completed by structural proof — the HFG found
    /// no `X_D → Y_C` path and the design was discharged without
    /// simulation or formal checks.
    pub fn structural_proof(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FlowEvent::StructuralProof))
    }

    /// Number of `Z'` refinement steps: formal counterexamples that led
    /// to signals being inspected and removed from the untainted set (one
    /// per [`FlowEvent::PropagationsRemoved`] event).
    pub fn refinement_steps(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FlowEvent::PropagationsRemoved { .. }))
            .count()
    }

    /// Total state signals removed from `Z'` by formal refinement, summed
    /// over every [`FlowEvent::PropagationsRemoved`] event.
    pub fn refined_signals(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                FlowEvent::PropagationsRemoved { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Whether the run was fully certified: `None` if certification was
    /// not enabled, otherwise whether every UPEC verdict and replayed
    /// counterexample validated.
    pub fn fully_certified(&self) -> Option<bool> {
        self.certification.as_ref().map(|c| c.fully_certified())
    }

    /// Formats a single Table-I-style row.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:<12} {:<6} {:>8} {:>8} {:>6} {:>7} {:>10}",
            self.design,
            self.verdict.to_string(),
            self.method.to_string(),
            self.state_signals,
            self.state_bits,
            self.ift_propagations
                .map_or("-".to_string(), |n| n.to_string()),
            self.total_propagations
                .map_or("-".to_string(), |n| n.to_string()),
            self.manual_inspections
        )
    }
}

/// Reduction in manual effort of `fastpath` over `baseline`, in percent
/// (the paper's final Table I column).
pub fn effort_reduction(baseline: &FlowReport, fastpath: &FlowReport) -> f64 {
    if baseline.manual_inspections == 0 {
        return 0.0;
    }
    100.0
        * (baseline
            .manual_inspections
            .saturating_sub(fastpath.manual_inspections)) as f64
        / baseline.manual_inspections as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(inspections: u64) -> FlowReport {
        FlowReport {
            design: "d".into(),
            verdict: Verdict::DataOblivious,
            method: CompletionMethod::Hfg,
            state_signals: 0,
            state_bits: 0,
            ift_propagations: None,
            total_propagations: None,
            manual_inspections: inspections,
            derived_constraints: vec![],
            invariants_added: vec![],
            vulnerabilities: vec![],
            events: vec![],
            timings: StageTimings::default(),
            solver_stats: SolverStats::default(),
            elaboration: ElaborationStats::default(),
            product: ProductStats::default(),
            sim: SimStats::default(),
            cache: None,
            ic3: None,
            certification: None,
        }
    }

    #[test]
    fn reduction_formula() {
        assert_eq!(effort_reduction(&dummy(33), &dummy(0)), 100.0);
        assert!((effort_reduction(&dummy(12), &dummy(3)) - 75.0).abs() < 1e-9);
        assert_eq!(effort_reduction(&dummy(0), &dummy(0)), 0.0);
    }

    #[test]
    fn certification_summary_merges_and_reports_status() {
        let mut a = CertificationSummary::default();
        assert!(a.fully_certified());
        a.stats.certified_checks = 3;
        a.counterexamples_replayed = 2;
        let mut b = CertificationSummary::default();
        b.stats.certified_checks = 1;
        b.failures.push("replay mismatch".into());
        a.merge(&b);
        assert_eq!(a.stats.certified_checks, 4);
        assert_eq!(a.counterexamples_replayed, 2);
        assert!(!a.fully_certified());
    }

    #[test]
    fn oracle_hooks_summarize_events() {
        let mut r = dummy(0);
        assert!(!r.structural_proof());
        assert_eq!(r.refinement_steps(), 0);
        assert_eq!(r.refined_signals(), 0);
        assert_eq!(r.fully_certified(), None);
        r.events = vec![
            FlowEvent::HfgAnalysis { paths_exist: true },
            FlowEvent::PropagationsRemoved { count: 2 },
            FlowEvent::UpecCheck { holds: false },
            FlowEvent::PropagationsRemoved { count: 1 },
            FlowEvent::FixedPoint,
        ];
        assert!(!r.structural_proof());
        assert_eq!(r.refinement_steps(), 2);
        assert_eq!(r.refined_signals(), 3);
        r.events.push(FlowEvent::StructuralProof);
        assert!(r.structural_proof());
        r.certification = Some(CertificationSummary::default());
        assert_eq!(r.fully_certified(), Some(true));
        r.certification
            .as_mut()
            .unwrap()
            .failures
            .push("bad".into());
        assert_eq!(r.fully_certified(), Some(false));
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::DataOblivious.to_string(), "True");
        assert_eq!(
            Verdict::ConstrainedDataOblivious(vec!["x".into()]).to_string(),
            "Constrained"
        );
        assert_eq!(Verdict::NotDataOblivious.to_string(), "False");
    }
}
