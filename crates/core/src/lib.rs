//! # fastpath
//!
//! A reproduction of **FastPath: A Hybrid Approach for Efficient Hardware
//! Security Verification** (DAC 2025): a verification methodology that
//! proves hardware *data-obliviousness* (no confidential data input can
//! influence attacker-observable control outputs) by combining
//!
//! 1. **structural analysis** over a HyperFlow Graph (`fastpath-hfg`),
//! 2. **IFT-enhanced simulation** (`fastpath-sim`), and
//! 3. **UPEC-DIT formal verification** (`fastpath-formal`).
//!
//! The flow's key trick: the set of state signals that stay *untainted*
//! during simulation (`Z'`) seeds the formal induction, eliminating most of
//! the manual counterexample inspection that the formal-only approach
//! requires, at identical exhaustiveness.
//!
//! Entry points: [`run_fastpath`] for the hybrid flow, [`run_baseline`] for
//! the formal-only comparison baseline, and [`CaseStudy`] for packaging a
//! design with its security specification.
//!
//! # Examples
//!
//! ```
//! use fastpath::{run_fastpath, CaseStudy, DesignInstance, Verdict};
//! use fastpath_rtl::ModuleBuilder;
//!
//! # fn main() -> Result<(), fastpath_rtl::RtlError> {
//! // A round-based accumulator whose handshake timing is driven purely by
//! // a counter: data-oblivious by construction.
//! let mut b = ModuleBuilder::new("demo");
//! let secret = b.data_input("secret", 32);
//! let s = b.sig(secret);
//! let acc = b.reg("acc", 32, 0);
//! let a = b.sig(acc);
//! let mixed = b.xor(a, s);
//! b.set_next(acc, mixed)?;
//! b.data_output("digest", a);
//! let round = b.reg("round", 5, 0);
//! let r = b.sig(round);
//! let one = b.lit(5, 1);
//! let inc = b.add(r, one);
//! b.set_next(round, inc)?;
//! let done = b.eq_lit(r, 31);
//! b.control_output("done", done);
//! let module = b.build()?;
//!
//! let study = CaseStudy::new("demo", DesignInstance::new(module));
//! let report = run_fastpath(&study);
//! assert_eq!(report.verdict, Verdict::DataOblivious);
//! assert_eq!(report.manual_inspections, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod baseline;
pub mod cache;
mod flow;
mod pairwise;
pub mod parallel;
mod report;
mod simbatch;
mod study;
mod witness;

pub use baseline::{run_baseline, run_baseline_with};
pub use cache::{CacheStats, MemoryCache, ProofCache};
pub use fastpath_formal::{ClauseStore, Ic3Stats, ProductStats, UpecEncoding, UpecEngine};
pub use fastpath_sim::SimEngine;
pub use flow::{run_fastpath, run_fastpath_with, FlowOptions};
pub use pairwise::{DynamicPairwise, PairResult, PairwiseAnalysis};
pub use report::{
    effort_reduction, CertificationSummary, CompletionMethod, FlowEvent, FlowReport, SimStats,
    Stage, StageTimings, Verdict,
};
pub use simbatch::{run_ift_batch, BatchOptions, BatchReport};
pub use study::{CaseStudy, DesignInstance, NamedCondEq, NamedPredicate, TestbenchRestriction};
pub use witness::{confirm_counterexample, settle_env, WitnessReplay};
