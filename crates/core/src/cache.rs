//! Content-addressed verification cache: keys, entry formats, and the
//! backend trait the flow layers talk to.
//!
//! The cache memoizes two kinds of results across runs:
//!
//! * **UPEC checks** ([`CachedCheck`]): keyed by the canonical structural
//!   hash of the module ([`fastpath_rtl::canonical_form`]) plus the exact
//!   check configuration (full vs state-only, the untainted candidate set
//!   `Z'`, and every active constraint / invariant / conditional equality,
//!   all expressed as canonical labels so renaming and declaration
//!   reordering do not fragment the cache).
//! * **IFT simulation runs** ([`CachedSim`]): keyed by the *exact*
//!   serialized netlist — the random testbench draws stimulus in signal
//!   declaration order, so unlike a SAT verdict a simulation result is
//!   only reusable for a byte-identical design.
//!
//! A cache hit is never trusted blindly:
//!
//! * every entry carries a content checksum, verified on decode;
//! * an `UNSAT` verdict is stored as its `(DIMACS, DRUP)` artifact pair
//!   and **re-certified on load** through the independent RUP checker
//!   ([`fastpath_cert::revalidate_unsat_artifact`]) — a tampered or
//!   bit-rotted proof is rejected and the check is re-proved;
//! * a cached counterexample is replayed through concrete two-instance
//!   simulation ([`crate::witness::confirm_counterexample`]) before the
//!   flow acts on it.
//!
//! Because every hit is validated, attaching a cache implies
//! certification: [`crate::run_fastpath_with`] enables the certified
//! check path whenever [`crate::FlowOptions::cache`] is set, so warm and
//! cold runs produce identical reports.

use fastpath_formal::{
    ProofArtifact, RelationalClause, RelationalLit, StateWitness, UpecCounterexample, UpecEncoding,
};
use fastpath_rtl::{
    write_netlist, BitVec, CanonicalForm, Digest, ExprId, Module, SignalId, SignalKind,
    StableHasher,
};
use fastpath_sim::{FlowPolicy, IftReport, IftViolation};
use std::fmt;
use std::sync::Mutex;

/// Domain-separation seed for check keys.
const TAG_CHECK_KEY: u64 = 0x66_70_63_6b; // "fpck"
/// Domain-separation seed for simulation keys.
const TAG_SIM_KEY: u64 = 0x66_70_73_6b; // "fpsk"
/// Domain-separation seed for entry checksums.
const TAG_ENTRY_SUM: u64 = 0x66_70_65_73; // "fpes"
/// Domain-separation seed for exact (text-level) module hashes.
const TAG_EXACT: u64 = 0x66_70_65_78; // "fpex"

/// The entry namespaces a backend must keep apart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CacheKind {
    /// A memoized UPEC check verdict.
    Check,
    /// A memoized IFT simulation report.
    Sim,
    /// A machine-derived relational invariant ([`CachedInvariant`]): the
    /// IC3 engine's closing clauses plus the certified strengthened-check
    /// proof, keyed exactly like the plain check they discharge. A warm
    /// hit skips frame reconstruction entirely — the stored proof is
    /// re-certified and the clauses re-checked at reset on load.
    Invariant,
}

impl CacheKind {
    /// Stable short name, used by disk backends as a directory name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Check => "checks",
            CacheKind::Sim => "sims",
            CacheKind::Invariant => "invariants",
        }
    }
}

/// Store-side occupancy counters a backend reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheUsage {
    /// Bytes currently held by the backend.
    pub bytes: u64,
    /// Entries evicted over the backend's lifetime.
    pub evictions: u64,
}

/// Cache effectiveness counters for one flow run, surfaced in
/// `--bench-json` and the daemon's status report (never in the rendered
/// verification report, which stays byte-identical warm or cold).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a validated cache entry.
    pub hits: u64,
    /// Lookups that missed — absent, corrupt, or failed re-validation.
    pub misses: u64,
    /// Bytes held by the backend when the run finished.
    pub bytes: u64,
    /// Entries the backend evicted over its lifetime.
    pub evictions: u64,
}

impl CacheStats {
    /// Folds another run's counters into this one. Store-side numbers
    /// (`bytes`, `evictions`) take the maximum rather than the sum — the
    /// runs shared one backend.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes = self.bytes.max(other.bytes);
        self.evictions = self.evictions.max(other.evictions);
    }
}

/// A verification-cache backend: a blob store addressed by
/// `(namespace, digest)`.
///
/// Implementations only move opaque text; all entry encoding, checksum
/// verification, and proof re-validation happen in this module, so a
/// backend cannot accidentally serve an untrusted verdict.
pub trait ProofCache: fmt::Debug + Send + Sync {
    /// Loads the entry stored under `key`, if any.
    fn load(&self, kind: CacheKind, key: &Digest) -> Option<String>;
    /// Stores (or overwrites) the entry under `key`.
    fn store(&self, kind: CacheKind, key: &Digest, entry: &str);
    /// Current occupancy of the backend.
    fn usage(&self) -> CacheUsage {
        CacheUsage::default()
    }
}

/// An in-memory [`ProofCache`] — the unit-test backend, and the warm
/// process-local tier of the daemon.
#[derive(Debug, Default)]
pub struct MemoryCache {
    entries: Mutex<std::collections::HashMap<(CacheKind, Digest), String>>,
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProofCache for MemoryCache {
    fn load(&self, kind: CacheKind, key: &Digest) -> Option<String> {
        self.entries.lock().unwrap().get(&(kind, *key)).cloned()
    }

    fn store(&self, kind: CacheKind, key: &Digest, entry: &str) {
        self.entries
            .lock()
            .unwrap()
            .insert((kind, *key), entry.to_string());
    }

    fn usage(&self) -> CacheUsage {
        let entries = self.entries.lock().unwrap();
        CacheUsage {
            bytes: entries.values().map(|v| v.len() as u64).sum(),
            evictions: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Which property variant a check key describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// The full 2-safety property (state and attacker-observable outputs).
    Full,
    /// The state-only partitioning check the baseline iterates first.
    StateOnly,
}

/// The exact (text-level) hash of a module: names, declaration order and
/// all. Used to key results that depend on more than the module's
/// semantics — the random testbench draws stimulus per declared input.
pub fn exact_module_hash(module: &Module) -> Digest {
    let mut h = StableHasher::new(TAG_EXACT);
    h.write_bytes(write_netlist(module).as_bytes());
    h.finish()
}

/// The content address of one UPEC check: canonical module hash plus the
/// canonical labels of everything that parameterizes the property. Two
/// modules that differ only by signal names or declaration order map to
/// the same key; any semantic difference changes it. The encoding is part
/// of the key: verdicts are encoding-independent, but cached SAT entries
/// carry concrete witness models whose consistency was established
/// against one encoding's product.
#[allow(clippy::too_many_arguments)]
pub fn check_key(
    canon: &CanonicalForm,
    kind: CheckKind,
    encoding: UpecEncoding,
    z_prime: &[SignalId],
    constraints: &[ExprId],
    invariants: &[ExprId],
    cond_eqs: &[(ExprId, SignalId)],
) -> Digest {
    let mut h = StableHasher::new(TAG_CHECK_KEY);
    h.write_digest(canon.module_hash());
    h.write_u64(match kind {
        CheckKind::Full => 1,
        CheckKind::StateOnly => 2,
    });
    h.write_u64(match encoding {
        UpecEncoding::Bits => 1,
        UpecEncoding::Words => 2,
    });
    // Z' as a sorted label multiset: index order is layout-specific, label
    // order is canonical.
    let mut z_labels: Vec<Digest> = z_prime.iter().map(|&s| canon.signal_label(s)).collect();
    z_labels.sort_unstable();
    h.write_u64(z_labels.len() as u64);
    for label in z_labels {
        h.write_digest(label);
    }
    // Constraints / invariants / conditional equalities in activation
    // order (the order they were encoded into the engine).
    h.write_u64(constraints.len() as u64);
    for &e in constraints {
        h.write_digest(canon.expr_label(e));
    }
    h.write_u64(invariants.len() as u64);
    for &e in invariants {
        h.write_digest(canon.expr_label(e));
    }
    h.write_u64(cond_eqs.len() as u64);
    for &(cond, signal) in cond_eqs {
        h.write_digest(canon.expr_label(cond));
        h.write_digest(canon.signal_label(signal));
    }
    h.finish()
}

/// The content address of one IFT simulation run. Keyed by the *exact*
/// module hash (stimulus follows declaration order), the run parameters,
/// and the names of the active testbench restrictions — restriction
/// *bodies* are closures owned by the named case study, so the study name
/// pins their meaning.
#[allow(clippy::too_many_arguments)]
pub fn sim_key(
    exact: Digest,
    study_name: &str,
    seed: u64,
    cycles: u64,
    policy: FlowPolicy,
    has_configure: bool,
    constraint_names: &[&str],
    declassified: &[SignalId],
) -> Digest {
    let mut h = StableHasher::new(TAG_SIM_KEY);
    h.write_digest(exact);
    h.write_bytes(study_name.as_bytes());
    h.write_u64(seed);
    h.write_u64(cycles);
    h.write_u64(match policy {
        FlowPolicy::Precise => 1,
        FlowPolicy::Conservative => 2,
    });
    h.write_u64(has_configure as u64);
    h.write_u64(constraint_names.len() as u64);
    for name in constraint_names {
        h.write_bytes(name.as_bytes());
    }
    let mut declassified: Vec<u64> = declassified.iter().map(|s| s.index() as u64).collect();
    declassified.sort_unstable();
    h.write_u64(declassified.len() as u64);
    for d in declassified {
        h.write_u64(d);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Entries
// ---------------------------------------------------------------------------

/// Witness values for one signal in a cached counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedWitness {
    /// Signal index in the module the entry was recorded against.
    pub signal: u32,
    /// Bit width (validated against the module on load).
    pub width: u32,
    /// Instance-0 value limbs.
    pub inst0: Vec<u64>,
    /// Instance-1 value limbs.
    pub inst1: Vec<u64>,
}

impl CachedWitness {
    fn from_witness(w: &StateWitness) -> Self {
        CachedWitness {
            signal: w.signal.index() as u32,
            width: w.inst0.width(),
            inst0: w.inst0.limbs().to_vec(),
            inst1: w.inst1.limbs().to_vec(),
        }
    }

    fn to_witness(&self, module: &Module, expect: SignalKind) -> Option<StateWitness> {
        let index = self.signal as usize;
        if index >= module.signal_count() {
            return None;
        }
        let id = SignalId::from_index(index);
        let signal = module.signal(id);
        if signal.width != self.width || signal.kind != expect {
            return None;
        }
        Some(StateWitness {
            signal: id,
            inst0: BitVec::from_limbs(self.width, &self.inst0),
            inst1: BitVec::from_limbs(self.width, &self.inst1),
        })
    }
}

/// A cached counterexample: the full witness, so the flow can classify it
/// exactly as it would a fresh one. Signal indices are layout-specific —
/// [`CachedCex::to_counterexample`] validates them against the receiving
/// module and the caller must additionally confirm the witness by
/// concrete replay before acting on it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CachedCex {
    /// Indices of `Z'` signals that diverged.
    pub divergent_state: Vec<u32>,
    /// Indices of control outputs that diverged.
    pub divergent_outputs: Vec<u32>,
    /// Spec indices of violated conditional equalities.
    pub violated_cond_eqs: Vec<u32>,
    /// State witness at time `t`.
    pub state_values: Vec<CachedWitness>,
    /// Input witness at time `t`.
    pub input_values_t: Vec<CachedWitness>,
    /// Input witness at time `t+1`.
    pub input_values_t1: Vec<CachedWitness>,
}

impl CachedCex {
    /// Records a live counterexample for storage.
    pub fn from_counterexample(cex: &UpecCounterexample) -> Self {
        CachedCex {
            divergent_state: cex
                .divergent_state
                .iter()
                .map(|s| s.index() as u32)
                .collect(),
            divergent_outputs: cex
                .divergent_outputs
                .iter()
                .map(|s| s.index() as u32)
                .collect(),
            violated_cond_eqs: cex.violated_cond_eqs.iter().map(|&i| i as u32).collect(),
            state_values: cex
                .state_values
                .iter()
                .map(CachedWitness::from_witness)
                .collect(),
            input_values_t: cex
                .input_values_t
                .iter()
                .map(CachedWitness::from_witness)
                .collect(),
            input_values_t1: cex
                .input_values_t1
                .iter()
                .map(CachedWitness::from_witness)
                .collect(),
        }
    }

    /// Rebuilds the counterexample against `module`, validating every
    /// signal index, kind, and width. `None` means the entry was recorded
    /// against a different layout (e.g. the same design with declarations
    /// reordered) — the caller treats that as a miss.
    pub fn to_counterexample(&self, module: &Module) -> Option<UpecCounterexample> {
        let signal = |&i: &u32| {
            let index = i as usize;
            (index < module.signal_count()).then(|| SignalId::from_index(index))
        };
        Some(UpecCounterexample {
            divergent_state: self
                .divergent_state
                .iter()
                .map(signal)
                .collect::<Option<_>>()?,
            divergent_outputs: self
                .divergent_outputs
                .iter()
                .map(signal)
                .collect::<Option<_>>()?,
            violated_cond_eqs: self.violated_cond_eqs.iter().map(|&i| i as usize).collect(),
            state_values: self
                .state_values
                .iter()
                .map(|w| w.to_witness(module, SignalKind::Register))
                .collect::<Option<_>>()?,
            input_values_t: self
                .input_values_t
                .iter()
                .map(|w| w.to_witness(module, SignalKind::Input))
                .collect::<Option<_>>()?,
            input_values_t1: self
                .input_values_t1
                .iter()
                .map(|w| w.to_witness(module, SignalKind::Input))
                .collect::<Option<_>>()?,
        })
    }
}

/// One memoized UPEC check verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedCheck {
    /// The property held and the solver's refutation is stored alongside;
    /// the pair is re-certified through the RUP checker on every load.
    HoldsProof {
        /// DIMACS CNF of the check formula.
        cnf: String,
        /// DRUP refutation of that formula.
        drup: String,
    },
    /// Like [`CachedCheck::HoldsProof`], but the refutation carries
    /// LRAT-style propagation hints so load-time re-certification is a
    /// linear hint walk instead of full unit propagation. The preferred
    /// stored form; plain `HoldsProof` remains the fallback when hinting
    /// an artifact fails.
    HoldsHinted {
        /// DIMACS CNF of the trimmed check formula.
        cnf: String,
        /// Hinted refutation (`<lits> 0 <1-based clause hints> 0` lines).
        proof: String,
    },
    /// The property held trivially — every difference monitor folded to
    /// constant false during elaboration, so there is no proof object
    /// beyond the construction itself. Protected by the entry checksum
    /// and the content address only.
    HoldsTrivial,
    /// The property failed with the stored witness.
    Cex(CachedCex),
}

/// A memoized IC3 discharge: the machine-derived relational invariant and
/// the certified strengthened-check verdict it closed. The clauses are
/// layout-specific (register positions in `state_signals()` order), so the
/// flow validates them against the receiving module
/// ([`fastpath_formal::RelationalInvariant::is_well_formed`]) and
/// re-checks them at reset before trusting the entry; the embedded check
/// entry is re-certified exactly like a [`CachedCheck`] hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedInvariant {
    /// The inductive invariant's clauses, in derivation order.
    pub clauses: Vec<RelationalClause>,
    /// The strengthened check's stored verdict (a `Holds` form: the entry
    /// exists only because the discharge was certified).
    pub check: CachedCheck,
}

/// A memoized IFT simulation report.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CachedSim {
    /// Cycles simulated.
    pub cycles_run: u64,
    /// Property violations as `(output index, first tainted cycle)`.
    pub violations: Vec<(u32, u64)>,
    /// Indices of tainted state signals.
    pub tainted_state: Vec<u32>,
    /// Indices of untainted state signals (`Z'`).
    pub untainted_state: Vec<u32>,
    /// First taint cycle per signal (dense, one slot per module signal).
    pub first_taint_cycle: Vec<Option<u64>>,
}

impl CachedSim {
    /// Records a live report for storage.
    pub fn from_report(report: &IftReport) -> Self {
        CachedSim {
            cycles_run: report.cycles_run,
            violations: report
                .violations
                .iter()
                .map(|v| (v.output.index() as u32, v.cycle))
                .collect(),
            tainted_state: report
                .tainted_state
                .iter()
                .map(|s| s.index() as u32)
                .collect(),
            untainted_state: report
                .untainted_state
                .iter()
                .map(|s| s.index() as u32)
                .collect(),
            first_taint_cycle: report.first_taint_cycle.clone(),
        }
    }

    /// Rebuilds the report against `module`, validating indices and the
    /// dense-vector length. `None` is a miss.
    pub fn to_report(&self, module: &Module) -> Option<IftReport> {
        if self.first_taint_cycle.len() != module.signal_count() {
            return None;
        }
        let signal = |&i: &u32| {
            let index = i as usize;
            (index < module.signal_count()).then(|| SignalId::from_index(index))
        };
        Some(IftReport {
            cycles_run: self.cycles_run,
            violations: self
                .violations
                .iter()
                .map(|&(output, cycle)| {
                    signal(&output).map(|output| IftViolation { output, cycle })
                })
                .collect::<Option<_>>()?,
            tainted_state: self
                .tainted_state
                .iter()
                .map(signal)
                .collect::<Option<_>>()?,
            untainted_state: self
                .untainted_state
                .iter()
                .map(signal)
                .collect::<Option<_>>()?,
            first_taint_cycle: self.first_taint_cycle.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

const MAGIC_CHECK: &str = "fastpath-cache check 1";
const MAGIC_SIM: &str = "fastpath-cache sim 1";
const MAGIC_INVARIANT: &str = "fastpath-cache invariant 1";

fn entry_sum(body: &str) -> Digest {
    let mut h = StableHasher::new(TAG_ENTRY_SUM);
    h.write_bytes(body.as_bytes());
    h.finish()
}

fn push_indices(out: &mut String, tag: &str, values: &[u32]) {
    out.push_str(tag);
    for v in values {
        out.push(' ');
        out.push_str(&v.to_string());
    }
    out.push('\n');
}

fn push_witnesses(out: &mut String, tag: &str, values: &[CachedWitness]) {
    out.push_str(&format!("{tag} {}\n", values.len()));
    for w in values {
        out.push_str(&format!("w {} {} {}", w.signal, w.width, w.inst0.len()));
        for limb in w.inst0.iter().chain(&w.inst1) {
            out.push_str(&format!(" {limb:x}"));
        }
        out.push('\n');
    }
}

/// Serializes a check entry to its storable text form (checksummed).
pub fn encode_check(entry: &CachedCheck) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_CHECK);
    out.push('\n');
    match entry {
        CachedCheck::HoldsProof { cnf, drup } => {
            out.push_str("holds proof\n");
            out.push_str(&format!("cnf {}\n", cnf.len()));
            out.push_str(cnf);
            out.push_str(&format!("drup {}\n", drup.len()));
            out.push_str(drup);
        }
        CachedCheck::HoldsHinted { cnf, proof } => {
            out.push_str("holds hinted\n");
            out.push_str(&format!("cnf {}\n", cnf.len()));
            out.push_str(cnf);
            out.push_str(&format!("hints {}\n", proof.len()));
            out.push_str(proof);
        }
        CachedCheck::HoldsTrivial => out.push_str("holds trivial\n"),
        CachedCheck::Cex(cex) => {
            out.push_str("cex\n");
            push_indices(&mut out, "dstate", &cex.divergent_state);
            push_indices(&mut out, "douts", &cex.divergent_outputs);
            push_indices(&mut out, "dceq", &cex.violated_cond_eqs);
            push_witnesses(&mut out, "sw", &cex.state_values);
            push_witnesses(&mut out, "it", &cex.input_values_t);
            push_witnesses(&mut out, "it1", &cex.input_values_t1);
        }
    }
    let sum = entry_sum(&out);
    out.push_str(&format!("sum {}\n", sum.to_hex()));
    out
}

/// Serializes a simulation entry to its storable text form (checksummed).
pub fn encode_sim(entry: &CachedSim) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_SIM);
    out.push('\n');
    out.push_str(&format!("cycles {}\n", entry.cycles_run));
    out.push_str(&format!("viol {}\n", entry.violations.len()));
    for &(output, cycle) in &entry.violations {
        out.push_str(&format!("v {output} {cycle}\n"));
    }
    push_indices(&mut out, "tainted", &entry.tainted_state);
    push_indices(&mut out, "untainted", &entry.untainted_state);
    out.push_str(&format!("taintcycle {}\n", entry.first_taint_cycle.len()));
    out.push('t');
    for c in &entry.first_taint_cycle {
        match c {
            Some(c) => out.push_str(&format!(" {c}")),
            None => out.push_str(" -"),
        }
    }
    out.push('\n');
    let sum = entry_sum(&out);
    out.push_str(&format!("sum {}\n", sum.to_hex()));
    out
}

/// Serializes an invariant entry to its storable text form (checksummed).
/// The embedded check entry is stored as its own encoded (and thus
/// independently checksummed) blob.
pub fn encode_invariant(entry: &CachedInvariant) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_INVARIANT);
    out.push('\n');
    out.push_str(&format!("clauses {}\n", entry.clauses.len()));
    for clause in &entry.clauses {
        out.push('c');
        for lit in &clause.lits {
            out.push_str(&format!(
                " {} {} {} {}",
                lit.reg,
                lit.inst,
                lit.bit,
                if lit.positive { 1 } else { 0 }
            ));
        }
        out.push('\n');
    }
    let check = encode_check(&entry.check);
    out.push_str(&format!("check {}\n", check.len()));
    out.push_str(&check);
    let sum = entry_sum(&out);
    out.push_str(&format!("sum {}\n", sum.to_hex()));
    out
}

/// Why a stored entry failed to decode. Callers treat every variant as a
/// cache miss; the distinction is for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheDecodeError(pub String);

impl fmt::Display for CacheDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache entry rejected: {}", self.0)
    }
}

impl std::error::Error for CacheDecodeError {}

struct Reader<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader { text, pos: 0 }
    }

    /// The next `\n`-terminated line (without the terminator).
    fn line(&mut self) -> Result<&'a str, CacheDecodeError> {
        let rest = &self.text[self.pos..];
        let end = rest
            .find('\n')
            .ok_or_else(|| CacheDecodeError("truncated entry".into()))?;
        self.pos += end + 1;
        Ok(&rest[..end])
    }

    /// The next `n` raw bytes.
    fn take(&mut self, n: usize) -> Result<&'a str, CacheDecodeError> {
        let rest = &self.text[self.pos..];
        if rest.len() < n || !rest.is_char_boundary(n) {
            return Err(CacheDecodeError("truncated blob".into()));
        }
        self.pos += n;
        Ok(&rest[..n])
    }
}

fn bad(context: &str) -> CacheDecodeError {
    CacheDecodeError(format!("malformed {context}"))
}

fn parse_indices(line: &str, tag: &str) -> Result<Vec<u32>, CacheDecodeError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| bad(&format!("`{tag}` line")))?;
    rest.split_whitespace()
        .map(|t| t.parse().map_err(|_| bad(&format!("`{tag}` index"))))
        .collect()
}

fn parse_counted(line: &str, tag: &str) -> Result<usize, CacheDecodeError> {
    line.strip_prefix(tag)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| bad(&format!("`{tag}` count")))
}

fn parse_witnesses(r: &mut Reader<'_>, tag: &str) -> Result<Vec<CachedWitness>, CacheDecodeError> {
    let count = parse_counted(r.line()?, &format!("{tag} "))?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let line = r.line()?;
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("w") {
            return Err(bad("witness line"));
        }
        let mut next_num = |what: &str| -> Result<u64, CacheDecodeError> {
            tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(what))
        };
        let signal = next_num("witness signal")? as u32;
        let width = next_num("witness width")? as u32;
        let limbs = next_num("witness limb count")? as usize;
        if width == 0 || limbs != (width as usize).div_ceil(64) {
            return Err(bad("witness limb count"));
        }
        let mut values = Vec::with_capacity(2 * limbs);
        for token in tokens {
            values.push(u64::from_str_radix(token, 16).map_err(|_| bad("witness limb"))?);
        }
        if values.len() != 2 * limbs {
            return Err(bad("witness limb count"));
        }
        let inst1 = values.split_off(limbs);
        out.push(CachedWitness {
            signal,
            width,
            inst0: values,
            inst1,
        });
    }
    Ok(out)
}

/// Verifies the trailing checksum line and returns the body it covers.
fn checked_body<'a>(text: &'a str, magic: &str) -> Result<&'a str, CacheDecodeError> {
    if !text.starts_with(magic) {
        return Err(bad("header"));
    }
    let trimmed = text
        .strip_suffix('\n')
        .ok_or_else(|| bad("trailing newline"))?;
    let sum_start = trimmed
        .rfind("\nsum ")
        .ok_or_else(|| bad("checksum line"))?
        + 1;
    let body = &text[..sum_start];
    let stored = trimmed[sum_start + 4..].trim();
    let digest = Digest::from_hex(stored).ok_or_else(|| bad("checksum digest"))?;
    if digest != entry_sum(body) {
        return Err(CacheDecodeError("checksum mismatch".into()));
    }
    Ok(body)
}

/// Decodes a check entry, verifying its checksum.
///
/// # Errors
///
/// Any structural defect — bad header, truncated blob, checksum mismatch —
/// is a [`CacheDecodeError`]; the caller treats it as a miss.
pub fn decode_check(text: &str) -> Result<CachedCheck, CacheDecodeError> {
    checked_body(text, MAGIC_CHECK)?;
    let mut r = Reader::new(text);
    r.line()?; // magic, already verified
    match r.line()? {
        "holds proof" => {
            let cnf_len = parse_counted(r.line()?, "cnf ")?;
            let cnf = r.take(cnf_len)?.to_string();
            let drup_len = parse_counted(r.line()?, "drup ")?;
            let drup = r.take(drup_len)?.to_string();
            Ok(CachedCheck::HoldsProof { cnf, drup })
        }
        "holds hinted" => {
            let cnf_len = parse_counted(r.line()?, "cnf ")?;
            let cnf = r.take(cnf_len)?.to_string();
            let proof_len = parse_counted(r.line()?, "hints ")?;
            let proof = r.take(proof_len)?.to_string();
            Ok(CachedCheck::HoldsHinted { cnf, proof })
        }
        "holds trivial" => Ok(CachedCheck::HoldsTrivial),
        "cex" => {
            let cex = CachedCex {
                divergent_state: parse_indices(r.line()?, "dstate")?,
                divergent_outputs: parse_indices(r.line()?, "douts")?,
                violated_cond_eqs: parse_indices(r.line()?, "dceq")?,
                state_values: parse_witnesses(&mut r, "sw")?,
                input_values_t: parse_witnesses(&mut r, "it")?,
                input_values_t1: parse_witnesses(&mut r, "it1")?,
            };
            Ok(CachedCheck::Cex(cex))
        }
        _ => Err(bad("verdict line")),
    }
}

/// Decodes a simulation entry, verifying its checksum.
///
/// # Errors
///
/// [`CacheDecodeError`] on any structural defect; treated as a miss.
pub fn decode_sim(text: &str) -> Result<CachedSim, CacheDecodeError> {
    checked_body(text, MAGIC_SIM)?;
    let mut r = Reader::new(text);
    r.line()?; // magic
    let cycles_run = parse_counted(r.line()?, "cycles ")? as u64;
    let viol_count = parse_counted(r.line()?, "viol ")?;
    let mut violations = Vec::with_capacity(viol_count);
    for _ in 0..viol_count {
        let line = r.line()?;
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("v") {
            return Err(bad("violation line"));
        }
        let output = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("violation output"))?;
        let cycle = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("violation cycle"))?;
        violations.push((output, cycle));
    }
    let tainted_state = parse_indices(r.line()?, "tainted")?;
    let untainted_state = parse_indices(r.line()?, "untainted")?;
    let taint_count = parse_counted(r.line()?, "taintcycle ")?;
    let taint_line = r.line()?;
    let rest = taint_line
        .strip_prefix('t')
        .ok_or_else(|| bad("taint-cycle line"))?;
    let mut first_taint_cycle = Vec::with_capacity(taint_count);
    for token in rest.split_whitespace() {
        if token == "-" {
            first_taint_cycle.push(None);
        } else {
            first_taint_cycle.push(Some(token.parse().map_err(|_| bad("taint cycle"))?));
        }
    }
    if first_taint_cycle.len() != taint_count {
        return Err(bad("taint-cycle count"));
    }
    Ok(CachedSim {
        cycles_run,
        violations,
        tainted_state,
        untainted_state,
        first_taint_cycle,
    })
}

/// Decodes an invariant entry, verifying its checksum (and, recursively,
/// the embedded check entry's).
///
/// # Errors
///
/// [`CacheDecodeError`] on any structural defect; treated as a miss. The
/// clauses are *not* validated against any module here — the caller must
/// still run `is_well_formed` and the reset check.
pub fn decode_invariant(text: &str) -> Result<CachedInvariant, CacheDecodeError> {
    checked_body(text, MAGIC_INVARIANT)?;
    let mut r = Reader::new(text);
    r.line()?; // magic, already verified
    let clause_count = parse_counted(r.line()?, "clauses ")?;
    let mut clauses = Vec::with_capacity(clause_count);
    for _ in 0..clause_count {
        let line = r.line()?;
        let rest = line.strip_prefix('c').ok_or_else(|| bad("clause line"))?;
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        if tokens.is_empty() || !tokens.len().is_multiple_of(4) {
            return Err(bad("clause literal count"));
        }
        let mut lits = Vec::with_capacity(tokens.len() / 4);
        for quad in tokens.chunks_exact(4) {
            let num = |t: &str, what: &str| -> Result<u64, CacheDecodeError> {
                t.parse().map_err(|_| bad(what))
            };
            let inst = num(quad[1], "literal instance")? as usize;
            let sign = num(quad[3], "literal sign")?;
            if inst > 1 || sign > 1 {
                return Err(bad("literal field"));
            }
            lits.push(RelationalLit {
                reg: num(quad[0], "literal register")? as usize,
                inst,
                bit: num(quad[2], "literal bit")? as u32,
                positive: sign == 1,
            });
        }
        clauses.push(RelationalClause { lits });
    }
    let check_len = parse_counted(r.line()?, "check ")?;
    let check = decode_check(r.take(check_len)?)?;
    Ok(CachedInvariant { clauses, check })
}

/// Packages a captured proof artifact as a storable check entry.
pub fn check_entry_from_artifact(artifact: ProofArtifact) -> CachedCheck {
    // Hinted certification (the default) already emitted the artifact as
    // a backward-trimmed core with inline hints — exactly the preferred
    // stored form — so it is adopted verbatim.
    if artifact.hinted {
        return CachedCheck::HoldsHinted {
            cnf: artifact.cnf,
            proof: artifact.drup,
        };
    }
    // Forward artifacts are backward-trimmed to their UNSAT core before
    // storing: the cached pair exists only to be re-certified on load, and
    // replaying the core is orders of magnitude cheaper than replaying
    // everything the solver ever learnt. Unsatisfiability of the clause
    // subset implies unsatisfiability of the full formula, so the trimmed
    // pair attests the same verdict. The preferred form additionally
    // carries LRAT-style propagation hints, making the load-time walk
    // linear in the proof text; a hinting failure falls back to the plain
    // trimmed pair, and a trim failure (it cannot happen for an artifact
    // the live run just certified) falls back to the full pair.
    if let Ok((cnf, proof)) =
        fastpath_cert::trim_unsat_artifact_hinted(&artifact.cnf, &artifact.drup)
    {
        return CachedCheck::HoldsHinted { cnf, proof };
    }
    match fastpath_cert::trim_unsat_artifact(&artifact.cnf, &artifact.drup) {
        Ok((cnf, drup)) => CachedCheck::HoldsProof { cnf, drup },
        Err(_) => CachedCheck::HoldsProof {
            cnf: artifact.cnf,
            drup: artifact.drup,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::{canonical_form, ModuleBuilder};

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let a = b.data_input("a", 8);
        let s = b.sig(a);
        let r = b.reg("r", 8, 0);
        b.set_next(r, s).expect("drive");
        let rs = b.sig(r);
        b.data_output("out", rs);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        b.build().expect("valid")
    }

    #[test]
    fn check_entries_round_trip_and_detect_tampering() {
        let proof = CachedCheck::HoldsProof {
            cnf: "p cnf 1 1\n1 0\n".into(),
            drup: "0\n".into(),
        };
        let text = encode_check(&proof);
        assert_eq!(decode_check(&text).expect("round trip"), proof);

        let hinted = CachedCheck::HoldsHinted {
            cnf: "p cnf 1 2\n1 0\n-1 0\n".into(),
            proof: "0 1 2 0\n".into(),
        };
        let text = encode_check(&hinted);
        assert_eq!(decode_check(&text).expect("round trip"), hinted);

        assert_eq!(
            decode_check(&encode_check(&CachedCheck::HoldsTrivial)).expect("round trip"),
            CachedCheck::HoldsTrivial
        );

        let cex = CachedCheck::Cex(CachedCex {
            divergent_state: vec![1],
            divergent_outputs: vec![],
            violated_cond_eqs: vec![0],
            state_values: vec![CachedWitness {
                signal: 1,
                width: 8,
                inst0: vec![0xab],
                inst1: vec![0xcd],
            }],
            input_values_t: vec![],
            input_values_t1: vec![],
        });
        let text = encode_check(&cex);
        assert_eq!(decode_check(&text).expect("round trip"), cex);

        // A flipped byte anywhere fails the checksum.
        let tampered = text.replace("0xab", "0xac").replace("ab", "ac");
        assert!(decode_check(&tampered).is_err());
        // Truncation is rejected.
        assert!(decode_check(&text[..text.len() / 2]).is_err());
        assert!(decode_check("").is_err());
    }

    #[test]
    fn invariant_entries_round_trip_and_detect_tampering() {
        let inv = CachedInvariant {
            clauses: vec![
                RelationalClause {
                    lits: vec![RelationalLit {
                        reg: 2,
                        inst: 0,
                        bit: 0,
                        positive: false,
                    }],
                },
                RelationalClause {
                    lits: vec![
                        RelationalLit {
                            reg: 0,
                            inst: 0,
                            bit: 3,
                            positive: true,
                        },
                        RelationalLit {
                            reg: 0,
                            inst: 1,
                            bit: 3,
                            positive: false,
                        },
                    ],
                },
            ],
            check: CachedCheck::HoldsHinted {
                cnf: "p cnf 1 2\n1 0\n-1 0\n".into(),
                proof: "0 1 2 0\n".into(),
            },
        };
        let text = encode_invariant(&inv);
        assert_eq!(decode_invariant(&text).expect("round trip"), inv);

        // A flipped byte fails the outer checksum.
        let tampered = text.replacen("c 2 0 0 0", "c 2 0 1 0", 1);
        assert!(decode_invariant(&tampered).is_err());
        // Truncation and garbage are rejected.
        assert!(decode_invariant(&text[..text.len() / 2]).is_err());
        assert!(decode_invariant("").is_err());
        // An out-of-range instance is structurally rejected even with a
        // valid checksum, before any module validation.
        let bad_inst = encode_invariant(&CachedInvariant {
            clauses: vec![RelationalClause {
                lits: vec![RelationalLit {
                    reg: 0,
                    inst: 2,
                    bit: 0,
                    positive: false,
                }],
            }],
            check: CachedCheck::HoldsTrivial,
        });
        assert!(decode_invariant(&bad_inst).is_err());
    }

    #[test]
    fn sim_entries_round_trip() {
        let sim = CachedSim {
            cycles_run: 812,
            violations: vec![(4, 130)],
            tainted_state: vec![1],
            untainted_state: vec![3],
            first_taint_cycle: vec![None, Some(0), None, None, Some(129)],
        };
        let text = encode_sim(&sim);
        assert_eq!(decode_sim(&text).expect("round trip"), sim);
        let tampered = text.replace("130", "131");
        assert!(decode_sim(&tampered).is_err());
    }

    #[test]
    fn cex_validation_rejects_foreign_layouts() {
        let m = toy();
        let r = m.signal_by_name("r").expect("r").index() as u32;
        let a = m.signal_by_name("a").expect("a").index() as u32;
        let witness = |signal: u32, width: u32| CachedWitness {
            signal,
            width,
            inst0: vec![1],
            inst1: vec![2],
        };
        let good = CachedCex {
            divergent_state: vec![r],
            state_values: vec![witness(r, 8)],
            ..CachedCex::default()
        };
        let cex = good.to_counterexample(&m).expect("valid");
        assert_eq!(cex.state_values[0].inst0.to_u64(), 1);
        // Out-of-range index.
        let bad_index = CachedCex {
            divergent_state: vec![99],
            ..CachedCex::default()
        };
        assert!(bad_index.to_counterexample(&m).is_none());
        // Width mismatch (register is 8 bits, claim 4).
        let bad_width = CachedCex {
            state_values: vec![witness(r, 4)],
            ..CachedCex::default()
        };
        assert!(bad_width.to_counterexample(&m).is_none());
        // Kind mismatch: `a` is an input, not a register.
        let bad_kind = CachedCex {
            state_values: vec![witness(a, 8)],
            ..CachedCex::default()
        };
        assert!(bad_kind.to_counterexample(&m).is_none());
    }

    #[test]
    fn sim_validation_requires_dense_vector_length() {
        let m = toy();
        let mut sim = CachedSim {
            first_taint_cycle: vec![None; m.signal_count()],
            ..CachedSim::default()
        };
        assert!(sim.to_report(&m).is_some());
        sim.first_taint_cycle.pop();
        assert!(sim.to_report(&m).is_none());
    }

    #[test]
    fn check_keys_are_canonical_and_sensitive() {
        let m = toy();
        let canon = canonical_form(&m);
        let r = m.signal_by_name("r").expect("r");
        let tick = m.signal_by_name("tick").expect("tick");
        let z_a = [r, tick];
        let z_b = [tick, r];
        // Z' is a set: index order must not matter.
        assert_eq!(
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &z_a,
                &[],
                &[],
                &[]
            ),
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &z_b,
                &[],
                &[],
                &[]
            )
        );
        // Kind, Z' membership, and spec all matter.
        let base = check_key(
            &canon,
            CheckKind::Full,
            UpecEncoding::Bits,
            &z_a,
            &[],
            &[],
            &[],
        );
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::StateOnly,
                UpecEncoding::Bits,
                &z_a,
                &[],
                &[],
                &[]
            )
        );
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &[r],
                &[],
                &[],
                &[]
            )
        );
        let some_expr = m.driver(tick).expect("driven");
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &z_a,
                &[some_expr],
                &[],
                &[]
            )
        );
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &z_a,
                &[],
                &[some_expr],
                &[]
            )
        );
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Bits,
                &z_a,
                &[],
                &[],
                &[(some_expr, r)]
            )
        );
        // The SAT encoding shapes any cached counterexample witness, so
        // bits- and words-mode checks must never share a cache slot.
        assert_ne!(
            base,
            check_key(
                &canon,
                CheckKind::Full,
                UpecEncoding::Words,
                &z_a,
                &[],
                &[],
                &[]
            )
        );
    }

    #[test]
    fn memory_cache_stores_and_reports_usage() {
        let cache = MemoryCache::new();
        let key = Digest([1, 2]);
        assert!(cache.load(CacheKind::Check, &key).is_none());
        cache.store(CacheKind::Check, &key, "hello");
        assert_eq!(cache.load(CacheKind::Check, &key).as_deref(), Some("hello"));
        // Namespaces are distinct.
        assert!(cache.load(CacheKind::Sim, &key).is_none());
        assert_eq!(cache.usage().bytes, 5);
    }
}
