//! Batched Monte-Carlo IFT simulation.
//!
//! Stage 2 is the only FastPath stage whose cost grows linearly with
//! testbench length, and longer / more diverse stimuli directly improve
//! the candidate partitioning `Z'` that seeds UPEC-DIT (fewer legal
//! propagations left for the formal stage to discover one counterexample
//! at a time). [`run_ift_batch`] exploits both new perf legs at once: the
//! design is compiled to one shared [`SimTape`], and `N` independent
//! testbenches — one deterministic stimulus stream per seed — run across
//! the [`parallel`](crate::parallel) work-stealing pool, each worker
//! holding nothing but its own value/taint arenas.
//!
//! Determinism: seed `base_seed + k` always drives run `k`, results come
//! back in submission order, and the aggregate is therefore independent
//! of `jobs`.

use crate::parallel;
use fastpath_rtl::{Module, SignalId};
use fastpath_sim::{FlowPolicy, IftReport, IftSimulation, RandomTestbench, SimEngine, SimTape};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration for one Monte-Carlo batch.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Independent runs (testbench seeds `base_seed..base_seed + runs`).
    pub runs: usize,
    /// Cycles per run.
    pub cycles: u64,
    /// Seed of the first run.
    pub base_seed: u64,
    /// Worker threads (`<= 1` runs sequentially on the caller).
    pub jobs: usize,
    /// Taint propagation policy.
    pub policy: FlowPolicy,
    /// Simulation backend.
    pub engine: SimEngine,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            runs: 8,
            cycles: 200,
            base_seed: 1,
            jobs: 1,
            policy: FlowPolicy::Precise,
            engine: SimEngine::default(),
        }
    }
}

/// Aggregate of a Monte-Carlo batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Every run's report, in seed order.
    pub reports: Vec<IftReport>,
    /// State signals untainted in **every** run — the batch's candidate
    /// `Z'` (a propagation seen by any seed disqualifies the signal).
    pub untainted_state: Vec<SignalId>,
    /// State signals tainted in at least one run.
    pub tainted_state: Vec<SignalId>,
    /// Runs that observed at least one `X_D =/=> Y_C` violation.
    pub violating_runs: usize,
    /// Simulated cycles summed over all runs.
    pub total_cycles: u64,
}

impl BatchReport {
    /// `true` iff no run observed a property violation.
    pub fn property_holds(&self) -> bool {
        self.violating_runs == 0
    }
}

/// Runs `opts.runs` independent IFT simulations of `module` and merges
/// the results (see the module docs for the batching scheme).
pub fn run_ift_batch(module: &Module, opts: &BatchOptions) -> BatchReport {
    let tape = match opts.engine {
        SimEngine::Compiled => Some(Arc::new(SimTape::compile(module))),
        SimEngine::Interp => None,
    };
    let tasks: Vec<_> = (0..opts.runs)
        .map(|k| {
            let seed = opts.base_seed.wrapping_add(k as u64);
            let tape = tape.clone();
            let cycles = opts.cycles;
            let policy = opts.policy;
            move || {
                let mut tb = RandomTestbench::new(module, seed);
                let sim = IftSimulation::new(cycles).with_policy(policy);
                match &tape {
                    Some(tape) => sim.run_compiled(module, tape, &mut tb),
                    None => sim.run(module, &mut tb),
                }
            }
        })
        .collect();
    let reports = parallel::run_ordered(opts.jobs, tasks);

    let mut tainted: BTreeSet<SignalId> = BTreeSet::new();
    let mut violating_runs = 0;
    let mut total_cycles = 0;
    for report in &reports {
        tainted.extend(report.tainted_state.iter().copied());
        violating_runs += (!report.property_holds()) as usize;
        total_cycles += report.cycles_run;
    }
    let untainted_state: Vec<SignalId> = module
        .state_signals()
        .into_iter()
        .filter(|z| !tainted.contains(z))
        .collect();
    BatchReport {
        reports,
        untainted_state,
        tainted_state: tainted.into_iter().collect(),
        violating_runs,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    /// Accumulator (tainted state) + free-running phase (untainted).
    fn oblivious_module() -> Module {
        let mut b = ModuleBuilder::new("batch_demo");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        let sum = b.add(a, d);
        b.set_next(acc, sum).expect("drive");
        b.data_output("result", a);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        b.build().expect("valid")
    }

    #[test]
    fn batch_aggregates_across_seeds() {
        let m = oblivious_module();
        let report = run_ift_batch(
            &m,
            &BatchOptions {
                runs: 4,
                cycles: 50,
                ..BatchOptions::default()
            },
        );
        assert_eq!(report.reports.len(), 4);
        assert_eq!(report.total_cycles, 200);
        assert!(report.property_holds());
        let acc = m.signal_by_name("acc").expect("acc");
        let tick = m.signal_by_name("tick").expect("tick");
        assert!(report.tainted_state.contains(&acc));
        assert!(report.untainted_state.contains(&tick));
    }

    #[test]
    fn batch_is_deterministic_across_jobs_and_engines() {
        let m = oblivious_module();
        let run = |jobs, engine| {
            run_ift_batch(
                &m,
                &BatchOptions {
                    runs: 6,
                    cycles: 40,
                    jobs,
                    engine,
                    ..BatchOptions::default()
                },
            )
        };
        let a = run(1, SimEngine::Compiled);
        let b = run(4, SimEngine::Compiled);
        let c = run(2, SimEngine::Interp);
        for other in [&b, &c] {
            assert_eq!(a.untainted_state, other.untainted_state);
            assert_eq!(a.tainted_state, other.tainted_state);
            assert_eq!(a.violating_runs, other.violating_runs);
            for (x, y) in a.reports.iter().zip(&other.reports) {
                assert_eq!(x.tainted_state, y.tainted_state);
                assert_eq!(x.first_taint_cycle, y.first_taint_cycle);
            }
        }
    }
}
