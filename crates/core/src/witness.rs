//! Concrete replay of formal counterexamples.
//!
//! A UPEC counterexample supplies values for every register and input of
//! both instances at time `t` (and inputs at `t+1`). This module rebuilds
//! the full concrete environments — combinational signals included — so the
//! inspection logic can *evaluate* candidate constraints and invariants on
//! the witness instead of guessing: an invariant that is false in the
//! witness marks the counterexample as spurious; a constraint that is false
//! in the witness marks the scenario as excludable by software.

use fastpath_formal::UpecCounterexample;
use fastpath_rtl::{BitVec, ExprId, Module, SignalId};

/// Full concrete environments for both instances at `t` and `t+1`,
/// reconstructed from a counterexample.
#[derive(Clone, Debug)]
pub struct WitnessReplay {
    /// `envs[instance][frame]`, each a value per signal index.
    envs: [[Vec<BitVec>; 2]; 2],
}

impl WitnessReplay {
    /// Rebuilds the environments from a counterexample of `module`.
    pub fn new(module: &Module, cex: &UpecCounterexample) -> Self {
        let mut envs: [[Vec<BitVec>; 2]; 2] = [
            [blank_env(module), blank_env(module)],
            [blank_env(module), blank_env(module)],
        ];
        // Frame t: state + inputs, then settle.
        for w in &cex.state_values {
            envs[0][0][w.signal.index()] = w.inst0.clone();
            envs[1][0][w.signal.index()] = w.inst1.clone();
        }
        for w in &cex.input_values_t {
            envs[0][0][w.signal.index()] = w.inst0.clone();
            envs[1][0][w.signal.index()] = w.inst1.clone();
        }
        for env in envs.iter_mut() {
            settle_env(module, &mut env[0]);
        }
        // Frame t+1: next state from frame t, inputs at t+1, settle.
        for env in envs.iter_mut() {
            let nexts: Vec<(SignalId, BitVec)> = module
                .state_signals()
                .into_iter()
                .map(|reg| {
                    let driver = module.driver(reg).expect("reg driven");
                    (reg, module.eval(driver, &env[0]))
                })
                .collect();
            for (reg, v) in nexts {
                env[1][reg.index()] = v;
            }
        }
        for w in &cex.input_values_t1 {
            envs[0][1][w.signal.index()] = w.inst0.clone();
            envs[1][1][w.signal.index()] = w.inst1.clone();
        }
        for env in envs.iter_mut() {
            settle_env(module, &mut env[1]);
        }
        WitnessReplay { envs }
    }

    /// The value of `signal` in `instance` (0/1) at `frame` (0 = t,
    /// 1 = t+1).
    pub fn value(
        &self,
        instance: usize,
        frame: usize,
        signal: SignalId,
    ) -> &BitVec {
        &self.envs[instance][frame][signal.index()]
    }

    /// Evaluates a 1-bit predicate in one instance/frame.
    pub fn eval_predicate(
        &self,
        module: &Module,
        instance: usize,
        frame: usize,
        expr: ExprId,
    ) -> bool {
        module.eval(expr, &self.envs[instance][frame]).is_true()
    }

    /// `true` iff the predicate holds in **both** instances at time `t`
    /// (the invariant obligation).
    pub fn invariant_holds(&self, module: &Module, expr: ExprId) -> bool {
        self.eval_predicate(module, 0, 0, expr)
            && self.eval_predicate(module, 1, 0, expr)
    }

    /// `true` iff the predicate holds in both instances during `[t, t+1]`
    /// (the software-constraint obligation).
    pub fn constraint_holds(&self, module: &Module, expr: ExprId) -> bool {
        (0..2).all(|inst| {
            (0..2).all(|frame| self.eval_predicate(module, inst, frame, expr))
        })
    }
}

fn blank_env(module: &Module) -> Vec<BitVec> {
    module
        .signals()
        .map(|(_, s)| BitVec::zero(s.width))
        .collect()
}

/// Computes all combinational signals of `env` in place.
pub fn settle_env(module: &Module, env: &mut [BitVec]) {
    let mut memo: Vec<Option<BitVec>> = vec![None; module.expr_count()];
    for i in 0..module.comb_order().len() {
        let sig = module.comb_order()[i];
        let driver = module.driver(sig).expect("comb driven");
        let value = module.eval_memo(driver, env, &mut memo);
        env[sig.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_formal::{Upec2Safety, UpecOutcome, UpecSpec};
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn replay_reconstructs_comb_and_next_state() {
        // A leaky design: counterexample witness must be replayable and
        // the replay must show the diverging output actually diverging.
        let mut b = ModuleBuilder::new("m");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let parity = b.red_xor(a);
        b.control_output("leak", parity);
        let m = b.build().expect("valid");
        let leak = m.signal_by_name("leak").expect("leak");
        let acc_id = m.signal_by_name("acc").expect("acc");

        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        let UpecOutcome::Counterexample(cex) = upec.check(&[]) else {
            panic!("expected counterexample");
        };
        let replay = WitnessReplay::new(&m, &cex);
        // The two instances must disagree on the leak output at t or t+1.
        let diverges_somewhere = (0..2).any(|frame| {
            replay.value(0, frame, leak) != replay.value(1, frame, leak)
        });
        assert!(diverges_somewhere, "replayed witness must show the leak");
        // acc at t+1 equals the data input at t (next-state reconstruction).
        for inst in 0..2 {
            assert_eq!(
                replay.value(inst, 1, acc_id),
                replay.value(inst, 0, data)
            );
        }
    }

    #[test]
    fn predicate_evaluation_on_witness() {
        let mut b = ModuleBuilder::new("m");
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let r = b.reg("r", 4, 0);
        b.set_next(r, d).expect("drive");
        let r_sig = b.sig(r);
        let out = b.red_or(r_sig);
        b.control_output("o", out);
        // Candidate constraint: data == 0 (would make the design trivially
        // oblivious).
        let data_zero = b.eq_lit(d, 0);
        let m = b.build().expect("valid");
        let r_id = m.signal_by_name("r").expect("r");

        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // With r constrained equal at t, any divergence must come from the
        // data input differing — i.e. nonzero data in some instance.
        let UpecOutcome::Counterexample(cex) = upec.check(&[r_id]) else {
            panic!("expected counterexample");
        };
        let replay = WitnessReplay::new(&m, &cex);
        // The witness must violate `data == 0` in at least one instance —
        // otherwise the outputs could not diverge.
        assert!(!replay.constraint_holds(&m, data_zero));
    }
}
