//! Concrete replay of formal counterexamples.
//!
//! A UPEC counterexample supplies values for every register and input of
//! both instances at time `t` (and inputs at `t+1`). This module rebuilds
//! the full concrete environments — combinational signals included — so the
//! inspection logic can *evaluate* candidate constraints and invariants on
//! the witness instead of guessing: an invariant that is false in the
//! witness marks the counterexample as spurious; a constraint that is false
//! in the witness marks the scenario as excludable by software.

use fastpath_formal::UpecCounterexample;
use fastpath_rtl::{BitVec, ExprId, Module, SignalId};
use fastpath_sim::Simulator;

/// Full concrete environments for both instances at `t` and `t+1`,
/// reconstructed from a counterexample.
#[derive(Clone, Debug)]
pub struct WitnessReplay {
    /// `envs[instance][frame]`, each a value per signal index.
    envs: [[Vec<BitVec>; 2]; 2],
}

impl WitnessReplay {
    /// Rebuilds the environments from a counterexample of `module`.
    pub fn new(module: &Module, cex: &UpecCounterexample) -> Self {
        let mut envs: [[Vec<BitVec>; 2]; 2] = [
            [blank_env(module), blank_env(module)],
            [blank_env(module), blank_env(module)],
        ];
        // Frame t: state + inputs, then settle.
        for w in &cex.state_values {
            envs[0][0][w.signal.index()] = w.inst0.clone();
            envs[1][0][w.signal.index()] = w.inst1.clone();
        }
        for w in &cex.input_values_t {
            envs[0][0][w.signal.index()] = w.inst0.clone();
            envs[1][0][w.signal.index()] = w.inst1.clone();
        }
        for env in envs.iter_mut() {
            settle_env(module, &mut env[0]);
        }
        // Frame t+1: next state from frame t, inputs at t+1, settle.
        for env in envs.iter_mut() {
            let nexts: Vec<(SignalId, BitVec)> = module
                .state_signals()
                .into_iter()
                .map(|reg| {
                    let driver = module.driver(reg).expect("reg driven");
                    (reg, module.eval(driver, &env[0]))
                })
                .collect();
            for (reg, v) in nexts {
                env[1][reg.index()] = v;
            }
        }
        for w in &cex.input_values_t1 {
            envs[0][1][w.signal.index()] = w.inst0.clone();
            envs[1][1][w.signal.index()] = w.inst1.clone();
        }
        for env in envs.iter_mut() {
            settle_env(module, &mut env[1]);
        }
        WitnessReplay { envs }
    }

    /// The value of `signal` in `instance` (0/1) at `frame` (0 = t,
    /// 1 = t+1).
    pub fn value(&self, instance: usize, frame: usize, signal: SignalId) -> &BitVec {
        &self.envs[instance][frame][signal.index()]
    }

    /// Evaluates a 1-bit predicate in one instance/frame.
    pub fn eval_predicate(
        &self,
        module: &Module,
        instance: usize,
        frame: usize,
        expr: ExprId,
    ) -> bool {
        module.eval(expr, &self.envs[instance][frame]).is_true()
    }

    /// `true` iff the predicate holds in **both** instances at time `t`
    /// (the invariant obligation).
    pub fn invariant_holds(&self, module: &Module, expr: ExprId) -> bool {
        self.eval_predicate(module, 0, 0, expr) && self.eval_predicate(module, 1, 0, expr)
    }

    /// `true` iff the predicate holds in both instances during `[t, t+1]`
    /// (the software-constraint obligation).
    pub fn constraint_holds(&self, module: &Module, expr: ExprId) -> bool {
        (0..2).all(|inst| (0..2).all(|frame| self.eval_predicate(module, inst, frame, expr)))
    }
}

/// Confirms every claim of a counterexample by concrete simulation.
///
/// Two cycle-accurate [`Simulator`]s (one per instance) are loaded with
/// the witness state and inputs at `t`, settled, clocked, driven with the
/// `t+1` inputs and settled again — the same machinery the IFT stage
/// simulates with, sharing nothing with the SAT-based engine that produced
/// the witness. The claims checked:
///
/// * every signal in `divergent_state` really differs at `t+1`;
/// * every output in `divergent_outputs` really differs at `t` or `t+1`;
/// * every index in `violated_cond_eqs` names a conditional equality
///   whose condition holds in both instances at `t+1` while the target
///   register differs there.
///
/// `cond_eqs` must list the conditional equalities in the order they were
/// added to the engine's spec (the indices in `violated_cond_eqs` refer
/// to that order). Returns `Err` describing the first claim the concrete
/// replay does not reproduce — which would mean the formal model and the
/// simulation semantics disagree.
pub fn confirm_counterexample(
    module: &Module,
    cond_eqs: &[(ExprId, SignalId)],
    cex: &UpecCounterexample,
) -> Result<(), String> {
    let mut sims = [Simulator::new(module), Simulator::new(module)];
    // Time t: witness state + inputs, settle.
    for w in &cex.state_values {
        sims[0].set_register(w.signal, w.inst0.clone());
        sims[1].set_register(w.signal, w.inst1.clone());
    }
    for w in &cex.input_values_t {
        sims[0].set_input(w.signal, w.inst0.clone());
        sims[1].set_input(w.signal, w.inst1.clone());
    }
    for sim in sims.iter_mut() {
        sim.settle();
    }
    let outputs_differ_at_t: Vec<bool> = cex
        .divergent_outputs
        .iter()
        .map(|&y| sims[0].value(y) != sims[1].value(y))
        .collect();
    // Clock edge, then time t+1: witness inputs, settle.
    for sim in sims.iter_mut() {
        sim.clock();
    }
    for w in &cex.input_values_t1 {
        sims[0].set_input(w.signal, w.inst0.clone());
        sims[1].set_input(w.signal, w.inst1.clone());
    }
    for sim in sims.iter_mut() {
        sim.settle();
    }

    for &s in &cex.divergent_state {
        if sims[0].value(s) == sims[1].value(s) {
            return Err(format!(
                "claimed divergent state `{}` agrees between the \
                 instances at t+1 in the concrete replay",
                module.signal(s).name
            ));
        }
    }
    for (i, &y) in cex.divergent_outputs.iter().enumerate() {
        if !outputs_differ_at_t[i] && sims[0].value(y) == sims[1].value(y) {
            return Err(format!(
                "claimed divergent output `{}` agrees between the \
                 instances at both t and t+1 in the concrete replay",
                module.signal(y).name
            ));
        }
    }
    if cex.violated_cond_eqs.is_empty() {
        return Ok(());
    }
    // Conditional-equality obligations need predicate evaluation on the
    // t+1 environments; the replay reconstructs exactly those.
    let replay = WitnessReplay::new(module, cex);
    for &i in &cex.violated_cond_eqs {
        let &(cond, signal) = cond_eqs.get(i).ok_or_else(|| {
            format!(
                "counterexample violates conditional equality #{i} but \
                 only {} are in force",
                cond_eqs.len()
            )
        })?;
        let both =
            replay.eval_predicate(module, 0, 1, cond) && replay.eval_predicate(module, 1, 1, cond);
        if !both || replay.value(0, 1, signal) == replay.value(1, 1, signal) {
            return Err(format!(
                "claimed violation of conditional equality on `{}` does \
                 not reproduce at t+1 in the replay",
                module.signal(signal).name
            ));
        }
    }
    Ok(())
}

fn blank_env(module: &Module) -> Vec<BitVec> {
    module
        .signals()
        .map(|(_, s)| BitVec::zero(s.width))
        .collect()
}

/// Computes all combinational signals of `env` in place.
pub fn settle_env(module: &Module, env: &mut [BitVec]) {
    let mut memo: Vec<Option<BitVec>> = vec![None; module.expr_count()];
    for i in 0..module.comb_order().len() {
        let sig = module.comb_order()[i];
        let driver = module.driver(sig).expect("comb driven");
        let value = module.eval_memo(driver, env, &mut memo);
        env[sig.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_formal::{Upec2Safety, UpecOutcome, UpecSpec};
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn replay_reconstructs_comb_and_next_state() {
        // A leaky design: counterexample witness must be replayable and
        // the replay must show the diverging output actually diverging.
        let mut b = ModuleBuilder::new("m");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let parity = b.red_xor(a);
        b.control_output("leak", parity);
        let m = b.build().expect("valid");
        let leak = m.signal_by_name("leak").expect("leak");
        let acc_id = m.signal_by_name("acc").expect("acc");

        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        let UpecOutcome::Counterexample(cex) = upec.check(&[]) else {
            panic!("expected counterexample");
        };
        let replay = WitnessReplay::new(&m, &cex);
        // The two instances must disagree on the leak output at t or t+1.
        let diverges_somewhere =
            (0..2).any(|frame| replay.value(0, frame, leak) != replay.value(1, frame, leak));
        assert!(diverges_somewhere, "replayed witness must show the leak");
        // acc at t+1 equals the data input at t (next-state reconstruction).
        for inst in 0..2 {
            assert_eq!(replay.value(inst, 1, acc_id), replay.value(inst, 0, data));
        }
    }

    #[test]
    fn counterexamples_confirm_concretely_and_corruption_is_caught() {
        // Same leaky design as above: the output-parity divergence must
        // reproduce in concrete simulation.
        let mut b = ModuleBuilder::new("m");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        let parity = b.red_xor(a);
        b.control_output("leak", parity);
        let m = b.build().expect("valid");
        let acc_id = m.signal_by_name("acc").expect("acc");

        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        let UpecOutcome::Counterexample(cex) = upec.check(&[acc_id]) else {
            panic!("expected counterexample");
        };
        assert_eq!(confirm_counterexample(&m, &[], &cex), Ok(()));

        // Corrupt the witness: claim a divergence the replay cannot show.
        let mut bad = cex.clone();
        bad.divergent_state.push(acc_id);
        for w in bad.state_values.iter_mut() {
            if w.signal == acc_id {
                w.inst1 = w.inst0.clone();
            }
        }
        // With acc forced equal at t and driven only by the (differing)
        // data input, acc itself still diverges at t+1 — so corrupt the
        // t-inputs too, making the two instances fully identical.
        for w in bad.input_values_t.iter_mut() {
            w.inst1 = w.inst0.clone();
        }
        for w in bad.input_values_t1.iter_mut() {
            w.inst1 = w.inst0.clone();
        }
        let err =
            confirm_counterexample(&m, &[], &bad).expect_err("identical instances cannot diverge");
        assert!(err.contains("agrees between the instances"), "{err}");

        // A cond-eq index past the spec is rejected, not ignored.
        let mut out_of_range = cex;
        out_of_range.violated_cond_eqs.push(7);
        assert!(confirm_counterexample(&m, &[], &out_of_range).is_err());
    }

    #[test]
    fn predicate_evaluation_on_witness() {
        let mut b = ModuleBuilder::new("m");
        let data = b.data_input("data", 4);
        let d = b.sig(data);
        let r = b.reg("r", 4, 0);
        b.set_next(r, d).expect("drive");
        let r_sig = b.sig(r);
        let out = b.red_or(r_sig);
        b.control_output("o", out);
        // Candidate constraint: data == 0 (would make the design trivially
        // oblivious).
        let data_zero = b.eq_lit(d, 0);
        let m = b.build().expect("valid");
        let r_id = m.signal_by_name("r").expect("r");

        let mut upec = Upec2Safety::new(&m, &UpecSpec::default());
        // With r constrained equal at t, any divergence must come from the
        // data input differing — i.e. nonzero data in some instance.
        let UpecOutcome::Counterexample(cex) = upec.check(&[r_id]) else {
            panic!("expected counterexample");
        };
        let replay = WitnessReplay::new(&m, &cex);
        // The witness must violate `data == 0` in at least one instance —
        // otherwise the outputs could not diverge.
        assert!(!replay.constraint_holds(&m, data_zero));
    }
}
