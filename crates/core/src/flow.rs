//! The FastPath verification flow (paper Fig. 1 / Sec. IV).
//!
//! `run_fastpath` drives the three stages with all of Fig. 1's feedback
//! edges:
//!
//! 1. **Structural analysis**: build the HFG; if no path connects any data
//!    input to any control output, terminate with a structural proof.
//! 2. **IFT-enhanced simulation**: check `X_D =/=> Y_C` under the active
//!    software constraints. Violations are *inspected* (each inspection
//!    counted): a violation that disappears under a candidate constraint
//!    derives that constraint (re-simulate); one that disappears under a
//!    flow-policy refinement declassifies a signal (re-simulate); anything
//!    else is a genuine vulnerability — switch to the fixed design variant
//!    and start over, or report *False*.
//! 3. **UPEC-DIT formal verification**: seed the induction with the
//!    untainted state set `Z'` from simulation. Counterexamples are
//!    classified by *replaying the witness*: an invariant false in the
//!    witness marks it spurious (add invariant, re-check); a constraint
//!    false in the witness derives that constraint (backtrack to
//!    simulation, since `Z'` may grow); divergent control outputs are a
//!    vulnerability; otherwise the divergence is legal data propagation and
//!    the divergent signals leave `Z'` (one inspection each).
//!
//! The formal-only baseline of [22] is in [`run_baseline`](crate::run_baseline).

use crate::cache::{self, CacheKind, CacheStats, CheckKind, ProofCache};
use crate::report::{
    CertificationSummary, CompletionMethod, FlowEvent, FlowReport, SimStats, Stage, StageTimings,
    Verdict,
};
use crate::study::{CaseStudy, DesignInstance};
use crate::witness::{confirm_counterexample, WitnessReplay};
use fastpath_cert::revalidate_unsat_artifact;
use fastpath_formal::{
    CertifiedOutcome, CheckCertificate, ElaborationStats, Ic3Engine, Ic3Outcome, Ic3Stats,
    ProductStats, ProofArtifact, RelationalInvariant, Upec2Safety, UpecCounterexample,
    UpecEncoding, UpecEngine, UpecOutcome, UpecSpec,
};
use fastpath_hfg::{extract_hfg, PathQuery};
use fastpath_rtl::{CanonicalForm, Digest, ExprId, Module, SignalId};
use fastpath_sat::SolverStats;
use fastpath_sim::{IftReport, IftSimulation, RandomTestbench, SimEngine, SimTape};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Ablation and certification switches for [`run_fastpath_with`].
///
/// Disabling a stage removes its contribution while keeping the rest of
/// the flow intact — the `flow_ablation` benchmarks quantify what each
/// stage buys.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Skip the structural early-exit check (Sec. IV-A).
    pub skip_hfg: bool,
    /// Skip IFT simulation: the formal stage starts from `Z' = Z` like the
    /// original UPEC-DIT (constraint/policy derivation then happens purely
    /// on formal counterexamples).
    pub skip_ift_seeding: bool,
    /// Independently certify every UPEC verdict: UNSAT answers are
    /// replayed through the `fastpath-cert` RUP proof checker, SAT
    /// answers are model-checked and the counterexample is reproduced by
    /// concrete simulation. The report then carries a
    /// [`CertificationSummary`].
    pub certify: bool,
    /// With [`certify`](Self::certify), also dump each check's DIMACS
    /// formula plus its DRUP proof or model into this directory, in
    /// formats external checkers such as `drat-trim` consume.
    pub dump_artifacts: Option<PathBuf>,
    /// Simulation backend for every IFT run of the flow: the compiled
    /// instruction tape by default, or the interpretive oracle for
    /// cross-checking. The tape is compiled once per design instance and
    /// reused across all constraint/policy trial re-simulations.
    pub sim_engine: SimEngine,
    /// Race every UPEC check over a portfolio of this many diversified
    /// SAT solver configurations (`0` or `1` = sequential). Verdicts,
    /// methods, and inspection counts are byte-identical for every
    /// width; only wall-clock changes.
    pub sat_portfolio: usize,
    /// Split SAT checks that outlive their canonical conflict budget into
    /// lookahead cube trees conquered by this many schedulers (`0`
    /// disables cubing; `1`, the default, cubes sequentially). Verdicts,
    /// proofs, and inspection counts are byte-identical for every
    /// non-zero width — see [`fastpath_sat::Solver::set_cube`].
    pub cube_jobs: usize,
    /// Overrides the conflict budget of the canonical attempt that
    /// precedes any cube split. Part of the determinism contract: two
    /// runs agree byte-for-byte only when their triggers agree.
    pub cube_trigger: Option<u64>,
    /// With [`certify`](Self::certify), certify through forward replay
    /// with full DRUP artifact renders instead of the default hinted
    /// backward checking (trim to the UNSAT core, emit LRAT-style hints
    /// inline). Verdicts and reports are identical either way; only
    /// certification wall-clock and artifact formats change.
    pub cert_forward: bool,
    /// Persistent learnt-clause store: clauses recorded by earlier runs
    /// over structurally identical next-state cones are RUP-probed into
    /// each design's solver, and this run's own short cone-local learnt
    /// clauses are published back to the store's pending set (the caller
    /// decides when to [`save`](fastpath_formal::ClauseStore::save)).
    /// Imports read only the store's immutable base snapshot, so results
    /// stay byte-identical across every parallelism knob.
    pub clause_store: Option<Arc<fastpath_formal::ClauseStore>>,
    /// Content-addressed verification cache (see [`crate::cache`]).
    /// Attaching a cache implies certification: every served verdict is
    /// re-validated on load (UNSAT proofs replayed through the RUP
    /// checker, counterexamples reproduced by concrete simulation), so
    /// the report from a warm run is identical to a cold certified run.
    pub cache: Option<Arc<dyn ProofCache>>,
    /// SAT encoding for every UPEC check of the flow. Verdicts, methods,
    /// and inspection counts are byte-identical for both encodings; only
    /// the product size and wall-clock differ. Defaults to the word-level
    /// guarded-predicate encoding; `bits` is the flat bit-equality
    /// reference oracle.
    pub upec_encoding: UpecEncoding,
    /// Formal engine policy. With [`UpecEngine::Ic3`] (the production
    /// default), whenever a formal counterexample would cost manual
    /// inspections — adding a vocabulary invariant, activating a
    /// conditional equality, or removing legal propagations from `Z'` —
    /// the SecIC3 engine first attempts to derive a relational invariant
    /// that discharges the remaining obligations outright. A discharge is
    /// never trusted on IC3's word alone: the invariant's clauses are
    /// staged into the standard (certified) induction check, whose UNSAT
    /// answer is exactly IC3's consecution theorem. `UpecEngine::default()`
    /// stays `Induction`, the escalation-free reference oracle.
    pub upec_engine: UpecEngine,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            skip_hfg: false,
            skip_ift_seeding: false,
            certify: false,
            dump_artifacts: None,
            sim_engine: SimEngine::default(),
            sat_portfolio: 0,
            cube_jobs: 1,
            cube_trigger: None,
            cert_forward: false,
            clause_store: None,
            cache: None,
            // Word-level guarded predicates are the production default;
            // `UpecEncoding::default()` stays `Bits` so the bare engine
            // remains the reference oracle.
            upec_encoding: UpecEncoding::Words,
            // IC3 escalation is the production default; the engine enum's
            // own default stays `Induction` as the reference oracle.
            upec_engine: UpecEngine::Ic3,
        }
    }
}

/// Runs the complete FastPath flow on a case study.
pub fn run_fastpath(study: &CaseStudy) -> FlowReport {
    run_fastpath_with(study, FlowOptions::default())
}

/// A word-mode check exhausted its conflict budget: the split product is
/// structurally wrong for this design, and letting individual checks
/// answer via the bit path would steer refinement by SAT-model noise
/// instead of the bit-level reference trace. Rerun the whole flow in bit
/// mode — the report then *is* the reference trace — and keep the
/// fallback count visible in the product counters. Nothing from the
/// abandoned word attempt is cached, so warm reruns reconverge on the
/// same route.
pub(crate) fn rerun_in_bits(
    study: &CaseStudy,
    options: &FlowOptions,
    fallbacks: u64,
    run: fn(&CaseStudy, FlowOptions) -> FlowReport,
) -> FlowReport {
    let mut bits = options.clone();
    bits.upec_encoding = UpecEncoding::Bits;
    let mut report = run(study, bits);
    report.product.word_fallbacks = fallbacks;
    report
}

/// Runs the FastPath flow with ablation options.
pub fn run_fastpath_with(study: &CaseStudy, options: FlowOptions) -> FlowReport {
    let mut ctx = FlowContext::new(study);
    ctx.sim_engine = options.sim_engine;
    ctx.cache = options.cache.clone();
    if options.certify || ctx.cache.is_some() {
        ctx.certification = Some(CertificationSummary::default());
    }
    let mut instance = &study.instance;
    let mut fixed_used = false;

    'design: loop {
        let module = &instance.module;
        // Canonical form for cache keying, computed once per design
        // instance (rename- and reorder-invariant).
        let canon = ctx
            .cache
            .is_some()
            .then(|| fastpath_rtl::canonical_form(module));
        // One UPEC engine per design instance: the formal stage elaborates
        // its frame template once and keeps one incremental SAT solver
        // alive across every refinement iteration below. Created lazily so
        // structurally-proven and simulation-terminated designs never pay
        // for elaboration.
        let mut upec: Option<Upec2Safety<'_>> = None;
        // How much of the active spec has been pushed into the engine.
        let mut synced = SyncedSpec::default();
        // The design's SecIC3 engine, created lazily on the first cold
        // escalation attempt — reference `induction` runs and warm
        // invariant-cache discharges never build it.
        let mut ic3: Option<Ic3State<'_>> = None;

        // ---- Stage 1: structural analysis --------------------------------
        if !options.skip_hfg {
            let t0 = Instant::now();
            let hfg = extract_hfg(module);
            let query = PathQuery::new(&hfg);
            let no_flow = query.no_flow_possible(&module.data_inputs(), &module.control_outputs());
            ctx.timings.structural += t0.elapsed();
            ctx.events.push(FlowEvent::HfgAnalysis {
                paths_exist: !no_flow,
            });
            if no_flow {
                ctx.events.push(FlowEvent::StructuralProof);
                return ctx.finish(
                    module,
                    Verdict::DataOblivious,
                    CompletionMethod::Hfg,
                    None,
                    None,
                );
            }
        }

        let mut active_constraints: Vec<usize> = Vec::new();
        let mut active_invariants: Vec<usize> = Vec::new();
        let mut active_cond_eqs: Vec<usize> = Vec::new();
        let mut declassified: Vec<SignalId> = instance.initial_declassified.clone();

        'restart_sim: loop {
            // ---- Stage 2: IFT-enhanced simulation ------------------------
            let sim_result = if options.skip_ift_seeding {
                SimStageResult::Skipped
            } else {
                ctx.simulation_stage(study, instance, &mut active_constraints, &mut declassified)
            };
            let sim_report = match sim_result {
                SimStageResult::Skipped => None,
                SimStageResult::Clean(report) => Some(report),
                SimStageResult::Vulnerability(description) => {
                    ctx.vulnerabilities.push(description.clone());
                    ctx.events.push(FlowEvent::VulnerabilityFound {
                        description,
                        stage: Stage::Simulation,
                    });
                    ctx.absorb_engine(upec.as_ref());
                    if let (Some(fixed), false) = (&study.fixed_instance, fixed_used) {
                        fixed_used = true;
                        instance = fixed;
                        ctx.events.push(FlowEvent::DesignFixed);
                        continue 'design;
                    }
                    return ctx.finish(
                        module,
                        Verdict::NotDataOblivious,
                        CompletionMethod::Ift,
                        None,
                        None,
                    );
                }
            };
            let ift_propagations = sim_report.as_ref().map(|r| r.tainted_state.len());
            let mut z_prime: BTreeSet<SignalId> = match &sim_report {
                Some(r) => r.untainted_state.iter().copied().collect(),
                None => module.state_signals().into_iter().collect(),
            };

            // ---- Stage 3: UPEC-DIT ---------------------------------------
            {
                loop {
                    let z_vec: Vec<SignalId> = z_prime.iter().copied().collect();
                    // Content address of this exact check; a validated
                    // cache hit answers it without ever elaborating the
                    // 2-safety model.
                    let key = canon.as_ref().map(|canon| {
                        active_check_key(
                            canon,
                            CheckKind::Full,
                            options.upec_encoding,
                            instance,
                            &z_vec,
                            &active_constraints,
                            &active_invariants,
                            &active_cond_eqs,
                        )
                    });
                    let mut cached = None;
                    if let Some(key) = &key {
                        let t0 = Instant::now();
                        cached = ctx.try_cached_check(key, module, instance, &active_cond_eqs);
                        ctx.timings.formal_checks += t0.elapsed();
                    }
                    let outcome = match cached {
                        Some(outcome) => outcome,
                        None => {
                            let engine = ensure_upec_engine(
                                &mut upec, module, &options, &mut ctx, "fastpath",
                            );
                            // Feed spec entries activated since the last
                            // engine-run check; nothing already encoded is
                            // redone.
                            sync_spec_entries(
                                engine,
                                instance,
                                &active_constraints,
                                &active_invariants,
                                &active_cond_eqs,
                                &mut synced,
                            );

                            let t0 = Instant::now();
                            let outcome = if ctx.certification.is_some() {
                                let certified = engine.check_certified(&z_vec);
                                let fell = engine.product_stats().word_fallbacks;
                                if fell > 0 {
                                    return rerun_in_bits(study, &options, fell, run_fastpath_with);
                                }
                                ctx.record_certificate(&certified);
                                let artifact = engine.take_last_artifact();
                                ctx.store_cached_check(key.as_ref(), &certified, artifact);
                                certified.outcome
                            } else {
                                let outcome = engine.check(&z_vec);
                                let fell = engine.product_stats().word_fallbacks;
                                if fell > 0 {
                                    return rerun_in_bits(study, &options, fell, run_fastpath_with);
                                }
                                outcome
                            };
                            ctx.timings.formal_checks += t0.elapsed();
                            outcome
                        }
                    };
                    ctx.timings.check_count += 1;
                    ctx.events.push(FlowEvent::UpecCheck {
                        holds: outcome.holds(),
                    });
                    let cex = match outcome {
                        UpecOutcome::Holds => {
                            return finish_upec_proved(
                                ctx,
                                module,
                                instance,
                                upec.as_ref(),
                                &active_constraints,
                                z_prime.len(),
                                ift_propagations,
                            );
                        }
                        UpecOutcome::Counterexample(cex) => cex,
                    };

                    ctx.confirm_replay(module, instance, &active_cond_eqs, &cex);
                    let replay = WitnessReplay::new(module, &cex);

                    // On the constrained track — the refinement loop is
                    // heading toward a `Constrained` verdict — any
                    // classification below that costs manual inspections
                    // first offers the obligation to SecIC3: a certified
                    // discharge proves the current `Z'` outright.
                    // Unconstrained runs never escalate (their remaining
                    // divergences are genuine data propagations, not
                    // unreachable-state artifacts), and scenario
                    // exclusion (2) and genuine output divergence (3) are
                    // never escalated — no reachability argument can
                    // stand in for software intent or excuse a real leak.
                    macro_rules! escalate {
                        () => {
                            if options.upec_engine == UpecEngine::Ic3
                                && !active_constraints.is_empty()
                            {
                                match try_ic3_discharge(
                                    &mut ctx,
                                    &options,
                                    module,
                                    instance,
                                    canon.as_ref(),
                                    &mut upec,
                                    &mut synced,
                                    &mut ic3,
                                    &z_vec,
                                    &active_constraints,
                                    &active_invariants,
                                    &active_cond_eqs,
                                ) {
                                    DischargeResult::Proved => {
                                        return finish_upec_proved(
                                            ctx,
                                            module,
                                            instance,
                                            upec.as_ref(),
                                            &active_constraints,
                                            z_prime.len(),
                                            ift_propagations,
                                        );
                                    }
                                    DischargeResult::Failed => {}
                                }
                            }
                        };
                    }

                    // (1) Spurious counterexample? Add an invariant.
                    if let Some(ii) = instance.invariants.iter().enumerate().position(|(i, inv)| {
                        !active_invariants.contains(&i) && !replay.invariant_holds(module, inv.expr)
                    }) {
                        escalate!();
                        ctx.inspections += 1;
                        active_invariants.push(ii);
                        ctx.events.push(FlowEvent::InvariantAdded {
                            name: instance.invariants[ii].name.clone(),
                        });
                        continue;
                    }

                    // (1b) A conditional 2-safety equality violated in the
                    // witness? Activate it (an invariant-writing step).
                    if let Some(ci) = instance.cond_eqs.iter().enumerate().position(|(i, ce)| {
                        !active_cond_eqs.contains(&i)
                            && cond_eq_violated_in_witness(module, &replay, ce)
                    }) {
                        escalate!();
                        ctx.inspections += 1;
                        active_cond_eqs.push(ci);
                        ctx.events.push(FlowEvent::InvariantAdded {
                            name: instance.cond_eqs[ci].name.clone(),
                        });
                        continue;
                    }

                    // (2) Scenario excludable by software? Derive the
                    // constraint and backtrack to simulation.
                    if let Some(ci) = instance.constraints.iter().enumerate().position(|(i, c)| {
                        !active_constraints.contains(&i) && !replay.constraint_holds(module, c.expr)
                    }) {
                        ctx.inspections += 1;
                        active_constraints.push(ci);
                        ctx.events.push(FlowEvent::ConstraintDerived {
                            name: instance.constraints[ci].name.clone(),
                            stage: Stage::Formal,
                        });
                        continue 'restart_sim;
                    }

                    // (3) Control outputs diverged: genuine vulnerability.
                    if !cex.divergent_outputs.is_empty() {
                        ctx.inspections += 1;
                        let names: Vec<String> = cex
                            .divergent_outputs
                            .iter()
                            .map(|&y| module.signal(y).name.clone())
                            .collect();
                        let description = format!(
                            "confidential data reaches control output(s) {}",
                            names.join(", ")
                        );
                        ctx.vulnerabilities.push(description.clone());
                        ctx.events.push(FlowEvent::VulnerabilityFound {
                            description,
                            stage: Stage::Formal,
                        });
                        ctx.absorb_engine(upec.as_ref());
                        if let (Some(fixed), false) = (&study.fixed_instance, fixed_used) {
                            fixed_used = true;
                            instance = fixed;
                            ctx.events.push(FlowEvent::DesignFixed);
                            continue 'design;
                        }
                        return ctx.finish(
                            module,
                            Verdict::NotDataOblivious,
                            CompletionMethod::Upec,
                            ift_propagations,
                            Some(module.state_signals().len() - z_prime.len()),
                        );
                    }

                    // (4) Legal data propagation missed by simulation:
                    // remove the divergent signals from Z'.
                    escalate!();
                    debug_assert!(!cex.divergent_state.is_empty());
                    ctx.inspections += cex.divergent_state.len() as u64;
                    for s in &cex.divergent_state {
                        z_prime.remove(s);
                    }
                    ctx.events.push(FlowEvent::PropagationsRemoved {
                        count: cex.divergent_state.len(),
                    });
                }
            }
        }
    }
}

/// How much of each active-spec list has been fed into an engine. The
/// flow syncs lazily: entries activated by classification are encoded
/// right before the next engine-run check (cache-served checks leave the
/// counters lagging on purpose).
#[derive(Clone, Copy, Default)]
pub(crate) struct SyncedSpec {
    constraints: usize,
    invariants: usize,
    cond_eqs: usize,
}

/// Returns the design's UPEC engine, creating and elaborating it on first
/// use. `artifact_tag` names the flow layer in dumped artifact files.
pub(crate) fn ensure_upec_engine<'a, 'm>(
    upec: &'a mut Option<Upec2Safety<'m>>,
    module: &'m Module,
    options: &FlowOptions,
    ctx: &mut FlowContext,
    artifact_tag: &str,
) -> &'a mut Upec2Safety<'m> {
    upec.get_or_insert_with(|| {
        let t0 = Instant::now();
        let mut engine = Upec2Safety::new(module, &UpecSpec::default());
        engine.set_encoding(options.upec_encoding);
        engine.set_sat_portfolio(options.sat_portfolio);
        engine.set_sat_cube(options.cube_jobs);
        if let Some(trigger) = options.cube_trigger {
            engine.set_sat_cube_trigger(trigger);
        }
        if let Some(store) = &options.clause_store {
            engine.set_clause_store(Arc::clone(store));
        }
        engine.set_cert_forward(options.cert_forward);
        if ctx.certification.is_some() {
            engine.enable_certification();
            if ctx.cache.is_some() {
                engine.enable_artifact_capture();
            }
            if let Some(dir) = &options.dump_artifacts {
                engine
                    .set_artifact_output(dir.clone(), format!("{}_{artifact_tag}_", module.name()));
            }
        }
        engine.elaborate();
        ctx.timings.formal_elaboration += t0.elapsed();
        engine
    })
}

/// Feeds spec entries activated since the last engine-run check; nothing
/// already encoded is redone.
pub(crate) fn sync_spec_entries(
    engine: &mut Upec2Safety<'_>,
    instance: &DesignInstance,
    active_constraints: &[usize],
    active_invariants: &[usize],
    active_cond_eqs: &[usize],
    synced: &mut SyncedSpec,
) {
    for &i in &active_constraints[synced.constraints..] {
        engine.add_software_constraint(instance.constraints[i].expr);
    }
    synced.constraints = active_constraints.len();
    for &i in &active_invariants[synced.invariants..] {
        engine.add_invariant(instance.invariants[i].expr);
    }
    synced.invariants = active_invariants.len();
    for &i in &active_cond_eqs[synced.cond_eqs..] {
        let ce = &instance.cond_eqs[i];
        engine.add_conditional_equality(ce.cond, ce.signal);
    }
    synced.cond_eqs = active_cond_eqs.len();
}

/// The fixed point was reached (by induction or by a certified IC3
/// discharge): emit the event, settle the verdict from the active
/// constraints, and close the report.
pub(crate) fn finish_upec_proved(
    mut ctx: FlowContext,
    module: &Module,
    instance: &DesignInstance,
    upec: Option<&Upec2Safety<'_>>,
    active_constraints: &[usize],
    z_len: usize,
    ift_propagations: Option<usize>,
) -> FlowReport {
    ctx.events.push(FlowEvent::FixedPoint);
    let verdict = if active_constraints.is_empty() {
        Verdict::DataOblivious
    } else {
        Verdict::ConstrainedDataOblivious(
            active_constraints
                .iter()
                .map(|&i| instance.constraints[i].name.clone())
                .collect(),
        )
    };
    let total = module.state_signals().len() - z_len;
    ctx.absorb_engine(upec);
    ctx.finish(
        module,
        verdict,
        CompletionMethod::Upec,
        ift_propagations,
        Some(total),
    )
}

/// Failed cold attempts per design instance before escalation stops
/// offering obligations to SecIC3. Every failed attempt costs real
/// solver work (divergence exhausts the engine's deterministic query
/// budget), so a design whose obligations IC3 cannot crack must not pay
/// that price at every remaining classification step.
const IC3_ESCALATION_FUSE: u32 = 2;

/// One design instance's SecIC3 engine plus how much of the active spec
/// has been fed into it (synced lazily, exactly like the UPEC engine).
pub(crate) struct Ic3State<'m> {
    engine: Ic3Engine<'m>,
    synced: SyncedSpec,
    /// Cold attempts that ended in anything but a certified discharge.
    failed: u32,
}

/// What an IC3 escalation attempt decided.
pub(crate) enum DischargeResult {
    /// An invariant was derived (or served warm) and the strengthened
    /// check re-validated: the current `Z'` is proved.
    Proved,
    /// No certified discharge; classify the original counterexample as
    /// usual. Nothing about the attempt is trusted or reused.
    Failed,
}

/// Attempts to discharge the current obligations with a machine-derived
/// relational invariant. The derivation itself is never trusted: a warm
/// cache entry must re-certify its stored proof and re-check its clauses
/// against the module and its reset state, and a cold IC3 proof is
/// re-validated by staging the clauses into the standard (certified)
/// induction check — whose UNSAT answer is precisely the consecution
/// theorem for the derived invariant. IC3 bugs can therefore only cause a
/// failure to discharge, never an unsound verdict.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_ic3_discharge<'m>(
    ctx: &mut FlowContext,
    options: &FlowOptions,
    module: &'m Module,
    instance: &DesignInstance,
    canon: Option<&CanonicalForm>,
    upec: &mut Option<Upec2Safety<'m>>,
    synced: &mut SyncedSpec,
    ic3: &mut Option<Ic3State<'m>>,
    z_vec: &[SignalId],
    active_constraints: &[usize],
    active_invariants: &[usize],
    active_cond_eqs: &[usize],
) -> DischargeResult {
    let key = canon.map(|canon| {
        active_check_key(
            canon,
            CheckKind::Full,
            options.upec_encoding,
            instance,
            z_vec,
            active_constraints,
            active_invariants,
            active_cond_eqs,
        )
    });

    // Warm path: a stored invariant for this exact check configuration
    // skips frame reconstruction entirely — no IC3 engine, no UPEC
    // engine, no solver.
    if let (Some(cache), Some(key)) = (ctx.cache.clone(), key.as_ref()) {
        let t0 = Instant::now();
        let served = ctx.validate_cached_invariant(&*cache, key, module);
        ctx.timings.formal_checks += t0.elapsed();
        // An empty probe is not a miss yet: most escalation attempts
        // fail, nothing is stored for them, and a warm resubmission
        // must replay a fully-proved run without miss counts. The
        // miss is booked below iff this attempt derives (and stores)
        // an invariant the probe should have found.
        if let Some(clauses) = served {
            ctx.cache_stats.hits += 1;
            ctx.timings.check_count += 1;
            ctx.events.push(FlowEvent::Ic3Discharged { clauses });
            ctx.events.push(FlowEvent::UpecCheck { holds: true });
            return DischargeResult::Proved;
        }
    }

    // Cold path: run (or resume) this design's IC3 engine. Learned
    // frames and lemmas persist across escalation attempts.
    let state = match ic3 {
        Some(state) => state,
        None => {
            let t0 = Instant::now();
            let state = Ic3State {
                engine: Ic3Engine::new(module),
                synced: SyncedSpec::default(),
                failed: 0,
            };
            ctx.timings.formal_elaboration += t0.elapsed();
            ic3.insert(state)
        }
    };
    // A failure under a weaker spec says nothing about the strengthened
    // one, so newly activated entries re-arm the fuse.
    let grew = state.synced.constraints < active_constraints.len()
        || state.synced.invariants < active_invariants.len()
        || state.synced.cond_eqs < active_cond_eqs.len();
    if grew {
        state.failed = 0;
    } else if state.failed >= IC3_ESCALATION_FUSE {
        return DischargeResult::Failed;
    }
    for &i in &active_constraints[state.synced.constraints..] {
        state
            .engine
            .add_software_constraint(instance.constraints[i].expr);
    }
    state.synced.constraints = active_constraints.len();
    for &i in &active_invariants[state.synced.invariants..] {
        state.engine.add_invariant(instance.invariants[i].expr);
    }
    state.synced.invariants = active_invariants.len();
    for &i in &active_cond_eqs[state.synced.cond_eqs..] {
        let ce = &instance.cond_eqs[i];
        state.engine.add_conditional_equality(ce.cond, ce.signal);
    }
    state.synced.cond_eqs = active_cond_eqs.len();

    let before = state.engine.stats();
    let t0 = Instant::now();
    let outcome = state.engine.prove(z_vec);
    ctx.timings.formal_checks += t0.elapsed();
    let after = state.engine.stats();
    ctx.ic3
        .get_or_insert_with(Ic3Stats::default)
        .merge(&Ic3Stats {
            frames: after.frames - before.frames,
            ctis: after.ctis - before.ctis,
            lemmas: after.lemmas - before.lemmas,
            generalization_drops: after.generalization_drops - before.generalization_drops,
            pushes: after.pushes - before.pushes,
        });

    let inv = match outcome {
        // Defensive gate on the derivation itself: a malformed or
        // reset-violating invariant is a failed attempt, nothing more,
        // because the flow only ever acts on the re-validated check
        // below.
        Ic3Outcome::Proved(inv) if inv.is_well_formed(module) && inv.holds_at_reset(module) => inv,
        _ => {
            state.failed += 1;
            return DischargeResult::Failed;
        }
    };

    let engine = ensure_upec_engine(upec, module, options, ctx, "fastpath");
    sync_spec_entries(
        engine,
        instance,
        active_constraints,
        active_invariants,
        active_cond_eqs,
        synced,
    );
    engine.add_relational_clauses(&inv.clauses);
    let t1 = Instant::now();
    let (outcome, certified) = if ctx.certification.is_some() {
        let certified = engine.check_certified(z_vec);
        (certified.outcome.clone(), Some(certified))
    } else {
        (engine.check(z_vec), None)
    };
    ctx.timings.formal_checks += t1.elapsed();
    if let Some(certified) = &certified {
        ctx.record_certificate(certified);
    }
    ctx.timings.check_count += 1;
    match outcome {
        UpecOutcome::Holds => {
            // Persist the invariant with its certified proof so warm
            // resubmissions discharge without rebuilding any frames.
            if let (Some(cache), Some(key), Some(certified)) =
                (ctx.cache.clone(), key.as_ref(), &certified)
            {
                if matches!(
                    certified.certificate,
                    Ok(CheckCertificate::UnsatProof { .. })
                ) {
                    if let Some(artifact) = engine.take_last_artifact() {
                        let entry = cache::CachedInvariant {
                            clauses: inv.clauses.clone(),
                            check: cache::check_entry_from_artifact(artifact),
                        };
                        cache.store(CacheKind::Invariant, key, &cache::encode_invariant(&entry));
                        ctx.cache_stats.misses += 1;
                    }
                }
            }
            ctx.events.push(FlowEvent::Ic3Discharged {
                clauses: inv.clauses.len(),
            });
            ctx.events.push(FlowEvent::UpecCheck { holds: true });
            DischargeResult::Proved
        }
        UpecOutcome::Counterexample(_) => {
            // The strengthened check failed (e.g. a solver-budget
            // artifact): its counterexample may have an empty divergence
            // set, so it is dropped — never classified, never replayed.
            state.failed += 1;
            ctx.events.push(FlowEvent::UpecCheck { holds: false });
            DischargeResult::Failed
        }
    }
}

/// The content address of a flow check, built from the active subsets of
/// the instance's spec vocabulary in activation order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn active_check_key(
    canon: &CanonicalForm,
    kind: CheckKind,
    encoding: UpecEncoding,
    instance: &DesignInstance,
    z_vec: &[SignalId],
    active_constraints: &[usize],
    active_invariants: &[usize],
    active_cond_eqs: &[usize],
) -> Digest {
    let constraints: Vec<ExprId> = active_constraints
        .iter()
        .map(|&i| instance.constraints[i].expr)
        .collect();
    let invariants: Vec<ExprId> = active_invariants
        .iter()
        .map(|&i| instance.invariants[i].expr)
        .collect();
    let cond_eqs: Vec<(ExprId, SignalId)> = active_cond_eqs
        .iter()
        .map(|&i| {
            let ce = &instance.cond_eqs[i];
            (ce.cond, ce.signal)
        })
        .collect();
    cache::check_key(
        canon,
        kind,
        encoding,
        z_vec,
        &constraints,
        &invariants,
        &cond_eqs,
    )
}

/// `true` iff the conditional equality fails in the replayed witness at
/// time `t`: the condition holds in both instances but the values differ.
pub(crate) fn cond_eq_violated_in_witness(
    module: &Module,
    replay: &WitnessReplay,
    ce: &crate::study::NamedCondEq,
) -> bool {
    let c0 = replay.eval_predicate(module, 0, 0, ce.cond);
    let c1 = replay.eval_predicate(module, 1, 0, ce.cond);
    c0 && c1 && replay.value(0, 0, ce.signal) != replay.value(1, 0, ce.signal)
}

/// Shared bookkeeping for a flow run.
pub(crate) struct FlowContext {
    pub(crate) design: String,
    pub(crate) events: Vec<FlowEvent>,
    pub(crate) inspections: u64,
    pub(crate) vulnerabilities: Vec<String>,
    pub(crate) timings: StageTimings,
    pub(crate) derived_constraints: Vec<String>,
    pub(crate) invariants_added: Vec<String>,
    pub(crate) solver_stats: SolverStats,
    pub(crate) elaboration: ElaborationStats,
    pub(crate) product: ProductStats,
    pub(crate) certification: Option<CertificationSummary>,
    pub(crate) sim_engine: SimEngine,
    /// Compiled-tape cache, keyed by module address (both design
    /// instances stay alive inside the study for the whole run, so
    /// addresses are stable and distinct).
    tape: Option<(usize, Arc<SimTape>)>,
    sim_runs: u64,
    sim_cycles: u64,
    /// Cross-run verification cache, when attached.
    pub(crate) cache: Option<Arc<dyn ProofCache>>,
    /// Hit/miss counters for this run (store-side numbers join at finish).
    pub(crate) cache_stats: CacheStats,
    /// Exact-netlist hash memo, keyed like `tape`.
    exact_hash: Option<(usize, Digest)>,
    /// SecIC3 work done this run; `None` unless at least one cold IC3
    /// discharge attempt ran (warm invariant-cache hits and reference
    /// `induction` runs leave it unset).
    pub(crate) ic3: Option<Ic3Stats>,
}

enum SimStageResult {
    /// IFT seeding disabled (ablation).
    Skipped,
    Clean(IftReport),
    Vulnerability(String),
}

impl FlowContext {
    pub(crate) fn new(study: &CaseStudy) -> Self {
        FlowContext {
            design: study.name.clone(),
            events: Vec::new(),
            inspections: 0,
            vulnerabilities: Vec::new(),
            timings: StageTimings::default(),
            derived_constraints: Vec::new(),
            invariants_added: Vec::new(),
            solver_stats: SolverStats::default(),
            elaboration: ElaborationStats::default(),
            product: ProductStats::default(),
            certification: None,
            sim_engine: SimEngine::default(),
            tape: None,
            sim_runs: 0,
            sim_cycles: 0,
            cache: None,
            cache_stats: CacheStats::default(),
            exact_hash: None,
            ic3: None,
        }
    }

    /// The exact (text-level) module hash, computed on first use.
    fn exact_hash_for(&mut self, module: &Module) -> Digest {
        let key = module as *const Module as usize;
        match self.exact_hash {
            Some((k, digest)) if k == key => digest,
            _ => {
                let digest = cache::exact_module_hash(module);
                self.exact_hash = Some((key, digest));
                digest
            }
        }
    }

    /// Serves one UPEC check from the cache if a stored entry exists *and*
    /// survives re-validation: an UNSAT proof must replay through the RUP
    /// checker, a counterexample must reproduce under concrete two-instance
    /// simulation. Anything less is a miss.
    pub(crate) fn try_cached_check(
        &mut self,
        key: &Digest,
        module: &Module,
        instance: &DesignInstance,
        active_cond_eqs: &[usize],
    ) -> Option<UpecOutcome> {
        let cache = self.cache.clone()?;
        let outcome = self.validate_cached_check(&*cache, key, module, instance, active_cond_eqs);
        match &outcome {
            Some(_) => self.cache_stats.hits += 1,
            None => self.cache_stats.misses += 1,
        }
        outcome
    }

    fn validate_cached_check(
        &mut self,
        cache: &dyn ProofCache,
        key: &Digest,
        module: &Module,
        instance: &DesignInstance,
        active_cond_eqs: &[usize],
    ) -> Option<UpecOutcome> {
        let text = cache.load(CacheKind::Check, key)?;
        match cache::decode_check(&text).ok()? {
            cache::CachedCheck::HoldsProof { cnf, drup } => {
                let checker = revalidate_unsat_artifact(&cnf, &drup).ok()?;
                let summary = self.certification.as_mut()?;
                summary.stats.certified_checks += 1;
                summary.stats.unsat_proofs += 1;
                summary.stats.checker.merge(&checker);
                Some(UpecOutcome::Holds)
            }
            cache::CachedCheck::HoldsHinted { cnf, proof } => {
                let checker = fastpath_cert::check_hinted_unsat_artifact(&cnf, &proof).ok()?;
                let summary = self.certification.as_mut()?;
                summary.stats.certified_checks += 1;
                summary.stats.unsat_proofs += 1;
                summary.stats.checker.merge(&checker);
                Some(UpecOutcome::Holds)
            }
            cache::CachedCheck::HoldsTrivial => {
                let summary = self.certification.as_mut()?;
                summary.stats.certified_checks += 1;
                summary.stats.trivial_unsat += 1;
                Some(UpecOutcome::Holds)
            }
            cache::CachedCheck::Cex(cached) => {
                let cex = cached.to_counterexample(module)?;
                let in_force: Vec<(ExprId, SignalId)> = active_cond_eqs
                    .iter()
                    .map(|&i| {
                        let ce = &instance.cond_eqs[i];
                        (ce.cond, ce.signal)
                    })
                    .collect();
                confirm_counterexample(module, &in_force, &cex).ok()?;
                let summary = self.certification.as_mut()?;
                summary.stats.certified_checks += 1;
                summary.stats.sat_models += 1;
                Some(UpecOutcome::Counterexample(cex))
            }
        }
    }

    /// Serves a stored SecIC3 invariant if one exists for this exact check
    /// configuration *and* survives full re-validation: the clauses must be
    /// well-formed for this module and hold in its reset state, and the
    /// embedded strengthened-check proof must replay through the checker.
    /// Returns the clause count on success; anything less is a miss.
    fn validate_cached_invariant(
        &mut self,
        cache: &dyn ProofCache,
        key: &Digest,
        module: &Module,
    ) -> Option<usize> {
        let text = cache.load(CacheKind::Invariant, key)?;
        let entry = cache::decode_invariant(&text).ok()?;
        let inv = RelationalInvariant {
            clauses: entry.clauses,
        };
        if !inv.is_well_formed(module) || !inv.holds_at_reset(module) {
            return None;
        }
        let checker = match entry.check {
            cache::CachedCheck::HoldsProof { cnf, drup } => {
                revalidate_unsat_artifact(&cnf, &drup).ok()?
            }
            cache::CachedCheck::HoldsHinted { cnf, proof } => {
                fastpath_cert::check_hinted_unsat_artifact(&cnf, &proof).ok()?
            }
            // A stored invariant always carries a genuine UNSAT proof —
            // trivial or SAT entries are structurally impossible here and
            // rejected outright.
            _ => return None,
        };
        let summary = self.certification.as_mut()?;
        summary.stats.certified_checks += 1;
        summary.stats.unsat_proofs += 1;
        summary.stats.checker.merge(&checker);
        Some(inv.clauses.len())
    }

    /// Stores a freshly certified verdict. Only independently validated
    /// results enter the cache: an UNSAT verdict needs its captured proof
    /// artifact, a counterexample its validated model; a rejected
    /// certificate stores nothing.
    pub(crate) fn store_cached_check(
        &mut self,
        key: Option<&Digest>,
        certified: &CertifiedOutcome,
        artifact: Option<ProofArtifact>,
    ) {
        let (Some(cache), Some(key)) = (self.cache.clone(), key) else {
            return;
        };
        let entry = match (&certified.outcome, &certified.certificate) {
            (UpecOutcome::Holds, Ok(CheckCertificate::UnsatProof { .. })) => {
                artifact.map(cache::check_entry_from_artifact)
            }
            (UpecOutcome::Holds, Ok(CheckCertificate::TrivialUnsat)) => {
                Some(cache::CachedCheck::HoldsTrivial)
            }
            (UpecOutcome::Counterexample(cex), Ok(CheckCertificate::SatModel { .. })) => Some(
                cache::CachedCheck::Cex(cache::CachedCex::from_counterexample(cex)),
            ),
            _ => None,
        };
        if let Some(entry) = entry {
            cache.store(CacheKind::Check, key, &cache::encode_check(&entry));
        }
    }

    /// The compiled tape for `module`, compiling on first use.
    fn tape_for(&mut self, module: &Module) -> Arc<SimTape> {
        let key = module as *const Module as usize;
        match &self.tape {
            Some((k, tape)) if *k == key => Arc::clone(tape),
            _ => {
                let tape = Arc::new(SimTape::compile(module));
                self.tape = Some((key, Arc::clone(&tape)));
                tape
            }
        }
    }

    /// Folds a retiring UPEC engine's counters into the run totals. Must
    /// be called on every path that drops or abandons an engine.
    pub(crate) fn absorb_engine(&mut self, engine: Option<&Upec2Safety<'_>>) {
        if let Some(engine) = engine {
            self.solver_stats.merge(&engine.solver_stats());
            self.elaboration.merge(&engine.elaboration_stats());
            self.product.merge(&engine.product_stats());
            let (backward, forward) = engine.cert_times();
            self.timings.cert_backward += backward;
            self.timings.cert_forward += forward;
            // A retiring engine offers its short cone-local learnt clauses
            // to the attached store (a no-op without one); the caller
            // decides when the pending set is saved to disk.
            engine.export_learnt_clauses();
            if let (Some(summary), Some(stats)) = (self.certification.as_mut(), engine.cert_stats())
            {
                summary.stats.merge(&stats);
            }
        }
    }

    /// Records a certificate rejection (the counters themselves live in
    /// the engine and are folded in by [`absorb_engine`](Self::absorb_engine)).
    pub(crate) fn record_certificate(&mut self, outcome: &CertifiedOutcome) {
        if let (Some(summary), Err(e)) = (self.certification.as_mut(), &outcome.certificate) {
            summary
                .failures
                .push(format!("{}: certificate rejected: {e}", self.design));
        }
    }

    /// Replays a counterexample through concrete simulation when
    /// certification is on, recording the result.
    pub(crate) fn confirm_replay(
        &mut self,
        module: &Module,
        instance: &DesignInstance,
        active_cond_eqs: &[usize],
        cex: &UpecCounterexample,
    ) {
        let Some(summary) = self.certification.as_mut() else {
            return;
        };
        // The engine's spec holds the conditional equalities in exactly
        // the order they were activated.
        let in_force: Vec<(ExprId, SignalId)> = active_cond_eqs
            .iter()
            .map(|&i| {
                let ce = &instance.cond_eqs[i];
                (ce.cond, ce.signal)
            })
            .collect();
        summary.counterexamples_replayed += 1;
        if let Err(e) = confirm_counterexample(module, &in_force, cex) {
            summary
                .failures
                .push(format!("{}: replay mismatch: {e}", self.design));
        }
    }

    pub(crate) fn finish(
        mut self,
        module: &Module,
        verdict: Verdict,
        method: CompletionMethod,
        ift_propagations: Option<usize>,
        total_propagations: Option<usize>,
    ) -> FlowReport {
        for event in &self.events {
            match event {
                FlowEvent::ConstraintDerived { name, .. }
                    if !self.derived_constraints.contains(name) =>
                {
                    self.derived_constraints.push(name.clone());
                }
                FlowEvent::InvariantAdded { name } if !self.invariants_added.contains(name) => {
                    self.invariants_added.push(name.clone());
                }
                _ => {}
            }
        }
        FlowReport {
            design: self.design,
            verdict,
            method,
            state_signals: module.state_signals().len(),
            state_bits: module.state_bits(),
            ift_propagations,
            total_propagations,
            manual_inspections: self.inspections,
            derived_constraints: self.derived_constraints,
            invariants_added: self.invariants_added,
            vulnerabilities: self.vulnerabilities,
            events: self.events,
            timings: self.timings,
            solver_stats: self.solver_stats,
            elaboration: self.elaboration,
            product: self.product,
            sim: SimStats {
                engine: self.sim_engine,
                runs: self.sim_runs,
                cycles: self.sim_cycles,
            },
            cache: self.cache.as_ref().map(|cache| {
                let usage = cache.usage();
                CacheStats {
                    bytes: usage.bytes,
                    evictions: usage.evictions,
                    ..self.cache_stats
                }
            }),
            ic3: self.ic3,
            certification: self.certification,
        }
    }

    /// Runs IFT simulations, classifying violations until none remain or a
    /// genuine vulnerability is confirmed.
    fn simulation_stage(
        &mut self,
        study: &CaseStudy,
        instance: &DesignInstance,
        active_constraints: &mut Vec<usize>,
        declassified: &mut Vec<SignalId>,
    ) -> SimStageResult {
        loop {
            let report = self.run_ift_once(study, instance, active_constraints, declassified);
            self.events.push(FlowEvent::IftRun {
                violations: report.violations.len(),
                tainted: report.tainted_state.len(),
                untainted: report.untainted_state.len(),
            });
            if report.violations.is_empty() {
                return SimStageResult::Clean(report);
            }

            // The engineer inspects a counterexample (one inspection per
            // classification event), then determines the root cause by
            // re-running the scenario under each hypothesis. Violations
            // with an identifiable single cause are addressed first;
            // compound causes resolve over successive iterations.
            self.inspections += 1;

            // Hypothesis A: some violated scenario contradicts the
            // intended application — a candidate constraint excludes it.
            // A constraint explains a violation if, under it, that output
            // either never becomes tainted or only becomes tainted much
            // later through an unrelated scenario (the concrete
            // counterexample under inspection is gone). The "much later"
            // margin stands in for the engineer's root-cause judgement.
            let explains = |old: &fastpath_sim::IftViolation, trial: &IftReport| -> bool {
                match trial.violations.iter().find(|v| v.output == old.output) {
                    None => true,
                    Some(new) => new.cycle > old.cycle * 2 + 16,
                }
            };
            let mut derived = None;
            'search_constraints: for violation in &report.violations {
                for (ci, c) in instance.constraints.iter().enumerate() {
                    if active_constraints.contains(&ci) || c.restrict_testbench.is_none() {
                        continue;
                    }
                    let mut trial = active_constraints.clone();
                    trial.push(ci);
                    let trial_report = self.run_ift_once(study, instance, &trial, declassified);
                    if explains(violation, &trial_report) {
                        derived = Some(ci);
                        break 'search_constraints;
                    }
                }
            }
            if let Some(ci) = derived {
                active_constraints.push(ci);
                self.events.push(FlowEvent::ConstraintDerived {
                    name: instance.constraints[ci].name.clone(),
                    stage: Stage::Simulation,
                });
                continue;
            }

            // Hypothesis B: the flow policy is too conservative — an
            // intended flow should be declassified.
            let mut refined = None;
            'search_policy: for violation in &report.violations {
                for &d in &instance.declassify_candidates {
                    if declassified.contains(&d) {
                        continue;
                    }
                    let mut trial = declassified.clone();
                    trial.push(d);
                    let trial_report =
                        self.run_ift_once(study, instance, active_constraints, &trial);
                    let still_violates = trial_report
                        .violations
                        .iter()
                        .any(|v| v.output == violation.output);
                    if !still_violates {
                        refined = Some(d);
                        break 'search_policy;
                    }
                }
            }
            if let Some(d) = refined {
                declassified.push(d);
                self.events.push(FlowEvent::PolicyRefined { signal: d });
                continue;
            }

            // Hypothesis C: genuine leak.
            let violation = report.violations[0];
            let output = instance.module.signal(violation.output);
            return SimStageResult::Vulnerability(format!(
                "confidential data observed on control output `{}` at \
                 cycle {} of simulation",
                output.name, violation.cycle
            ));
        }
    }

    fn run_ift_once(
        &mut self,
        study: &CaseStudy,
        instance: &DesignInstance,
        active_constraints: &[usize],
        declassified: &[SignalId],
    ) -> IftReport {
        let module = &instance.module;
        let key = self.cache.is_some().then(|| {
            let exact = self.exact_hash_for(module);
            let names: Vec<&str> = active_constraints
                .iter()
                .map(|&ci| instance.constraints[ci].name.as_str())
                .collect();
            cache::sim_key(
                exact,
                &study.name,
                study.seed,
                study.cycles,
                study.policy,
                instance.configure_testbench.is_some(),
                &names,
                declassified,
            )
        });
        if let (Some(cache), Some(key)) = (self.cache.clone(), key) {
            let t0 = Instant::now();
            let hit = cache
                .load(CacheKind::Sim, &key)
                .and_then(|text| cache::decode_sim(&text).ok())
                .and_then(|entry| entry.to_report(module));
            if let Some(report) = hit {
                // Deterministic memoization: the counters stay identical
                // to a live run so reports match byte for byte; the cache
                // block records the provenance.
                self.cache_stats.hits += 1;
                self.timings.simulation += t0.elapsed();
                self.sim_runs += 1;
                self.sim_cycles += report.cycles_run;
                return report;
            }
            self.cache_stats.misses += 1;
            let report = self.run_ift_live(study, instance, active_constraints, declassified);
            cache.store(
                CacheKind::Sim,
                &key,
                &cache::encode_sim(&cache::CachedSim::from_report(&report)),
            );
            return report;
        }
        self.run_ift_live(study, instance, active_constraints, declassified)
    }

    fn run_ift_live(
        &mut self,
        study: &CaseStudy,
        instance: &DesignInstance,
        active_constraints: &[usize],
        declassified: &[SignalId],
    ) -> IftReport {
        let module = &instance.module;
        let mut tb = RandomTestbench::new(module, study.seed);
        if let Some(configure) = &instance.configure_testbench {
            configure(module, &mut tb);
        }
        for &ci in active_constraints {
            if let Some(restrict) = &instance.constraints[ci].restrict_testbench {
                restrict(module, &mut tb);
            }
        }
        let sim = IftSimulation::new(study.cycles)
            .with_policy(study.policy)
            .with_declassified(declassified);
        let t0 = Instant::now();
        let report = match self.sim_engine {
            SimEngine::Interp => sim.run(module, &mut tb),
            SimEngine::Compiled => {
                let tape = self.tape_for(module);
                sim.run_compiled(module, &tape, &mut tb)
            }
        };
        self.timings.simulation += t0.elapsed();
        self.sim_runs += 1;
        self.sim_cycles += report.cycles_run;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::NamedPredicate;
    use fastpath_rtl::ModuleBuilder;
    use std::time::Duration;

    /// Round-based "crypto" toy: secret only reaches the data output.
    fn structural_case() -> CaseStudy {
        let mut b = ModuleBuilder::new("round_core");
        let secret = b.data_input("secret", 16);
        let s = b.sig(secret);
        let acc = b.reg("acc", 16, 0);
        let a = b.sig(acc);
        let mixed = b.xor(a, s);
        b.set_next(acc, mixed).expect("drive");
        b.data_output("digest", a);
        let round = b.reg("round", 4, 0);
        let r = b.sig(round);
        let one = b.lit(4, 1);
        let inc = b.add(r, one);
        b.set_next(round, inc).expect("drive");
        let done = b.eq_lit(r, 15);
        b.control_output("done", done);
        let m = b.build().expect("valid");
        CaseStudy::new("toy_crypto", DesignInstance::new(m))
    }

    #[test]
    fn structural_proof_short_circuits() {
        let report = run_fastpath(&structural_case());
        assert_eq!(report.verdict, Verdict::DataOblivious);
        assert_eq!(report.method, CompletionMethod::Hfg);
        assert_eq!(report.manual_inspections, 0);
        assert!(report.events.contains(&FlowEvent::StructuralProof));
    }

    /// Inherent timing leak with no constraint vocabulary -> False at IFT.
    fn leaky_case() -> CaseStudy {
        let mut b = ModuleBuilder::new("early_term");
        let start = b.control_input("start", 1);
        let data = b.data_input("data", 8);
        let counter = b.reg("counter", 4, 0);
        let c = b.sig(counter);
        let d = b.sig(data);
        let st = b.sig(start);
        let is_zero = b.eq_lit(d, 0);
        let one = b.lit(4, 1);
        let eight = b.lit(4, 8);
        let init = b.mux(is_zero, one, eight);
        let zero4 = b.lit(4, 0);
        let c_zero = b.eq_lit(c, 0);
        let dec = b.sub(c, one);
        let hold = b.mux(c_zero, zero4, dec);
        let next = b.mux(st, init, hold);
        b.set_next(counter, next).expect("drive");
        let busy = b.ne(c, zero4);
        b.control_output("busy", busy);
        let m = b.build().expect("valid");
        let mut study = CaseStudy::new("toy_leak", DesignInstance::new(m));
        study.cycles = 300;
        study
    }

    #[test]
    fn unconstrained_leak_is_false_at_ift() {
        let report = run_fastpath(&leaky_case());
        assert_eq!(report.verdict, Verdict::NotDataOblivious);
        assert_eq!(report.method, CompletionMethod::Ift);
        assert_eq!(report.vulnerabilities.len(), 1);
        assert!(report.manual_inspections >= 1);
    }

    /// Leak only under mode==1, with "mode off" in the constraint
    /// vocabulary -> Constrained via UPEC.
    fn constrained_case() -> CaseStudy {
        let mut b = ModuleBuilder::new("modal");
        let mode = b.control_input("mode", 1);
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        b.data_output("result", a);
        let m_sig = b.sig(mode);
        let zero = b.lit(8, 0);
        let visible = b.mux(m_sig, a, zero);
        let leak = b.red_or(visible);
        b.control_output("debug_flag", leak);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        let mode_off = b.eq_lit(m_sig, 0);
        let m = b.build().expect("valid");
        let mode_id = m.signal_by_name("mode").expect("mode");
        let mut instance = DesignInstance::new(m);
        instance.constraints.push(NamedPredicate::with_restriction(
            "debug_mode_disabled",
            mode_off,
            move |_, tb| {
                tb.fix(mode_id, 0);
            },
        ));
        let mut study = CaseStudy::new("toy_modal", instance);
        study.cycles = 200;
        study
    }

    #[test]
    fn constraint_is_derived_and_verdict_constrained() {
        let report = run_fastpath(&constrained_case());
        assert_eq!(
            report.verdict,
            Verdict::ConstrainedDataOblivious(vec!["debug_mode_disabled".into()])
        );
        assert_eq!(report.method, CompletionMethod::Upec);
        assert_eq!(
            report.derived_constraints,
            vec!["debug_mode_disabled".to_string()]
        );
        // acc is tainted data state; it must be outside Z' and counted.
        assert_eq!(report.total_propagations, Some(1));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, FlowEvent::FixedPoint)));
    }

    #[test]
    fn certified_flow_validates_every_verdict() {
        let report = run_fastpath_with(
            &constrained_case(),
            FlowOptions {
                certify: true,
                ..FlowOptions::default()
            },
        );
        assert_eq!(
            report.verdict,
            Verdict::ConstrainedDataOblivious(vec!["debug_mode_disabled".into()])
        );
        let cert = report.certification.expect("certification requested");
        assert!(cert.fully_certified(), "{:?}", cert.failures);
        assert!(cert.stats.certified_checks >= 1);
        assert_eq!(
            cert.stats.certified_checks, report.timings.check_count,
            "every check must be certified"
        );
        // Without certification the report must not pretend otherwise.
        let plain = run_fastpath(&constrained_case());
        assert!(plain.certification.is_none());
    }

    /// Vulnerable design with a fixed variant: flow confirms the leak,
    /// switches, and completes on the fix.
    #[test]
    fn fixed_variant_is_adopted_after_leak() {
        fn build(leaky: bool) -> DesignInstance {
            let mut b = ModuleBuilder::new(if leaky { "dev_leaky" } else { "dev_fixed" });
            let data = b.data_input("data", 8);
            let d = b.sig(data);
            let buf = b.reg("buf", 8, 0);
            let a = b.sig(buf);
            b.set_next(buf, d).expect("drive");
            b.data_output("wdata", a);
            let tick = b.reg("tick", 1, 0);
            let t = b.sig(tick);
            let nt = b.not(t);
            b.set_next(tick, nt).expect("drive");
            b.control_output("phase", t);
            // Bus address: the leaky variant exposes the buffer; the fixed
            // one keeps the structural shape (mux with equal branches) but
            // no actual flow.
            let addr = if leaky {
                b.red_or(a)
            } else {
                let a0 = b.bit(a, 0);
                b.mux(a0, t, t)
            };
            b.control_output("bus_addr_valid", addr);
            DesignInstance::new(b.build().expect("valid"))
        }
        let mut study = CaseStudy::new("toy_fixable", build(true));
        study.fixed_instance = Some(build(false));
        study.cycles = 100;
        let report = run_fastpath(&study);
        assert_eq!(report.verdict, Verdict::DataOblivious);
        assert_eq!(report.method, CompletionMethod::Upec);
        assert_eq!(report.vulnerabilities.len(), 1);
        assert!(report.events.contains(&FlowEvent::DesignFixed));
    }

    /// Warm runs against a shared cache must be byte-identical to cold runs
    /// and serve every check and simulation from the cache.
    #[test]
    fn warm_cache_run_is_identical_and_fully_served() {
        let shared: Arc<dyn ProofCache> = Arc::new(cache::MemoryCache::new());
        let with_cache = || FlowOptions {
            cache: Some(Arc::clone(&shared)),
            ..FlowOptions::default()
        };
        let cold = run_fastpath_with(&constrained_case(), with_cache());
        let warm = run_fastpath_with(&constrained_case(), with_cache());

        // Everything a consumer can observe besides `cache` is identical.
        assert_eq!(cold.verdict, warm.verdict);
        assert_eq!(cold.method, warm.method);
        assert_eq!(cold.events, warm.events);
        assert_eq!(cold.derived_constraints, warm.derived_constraints);
        assert_eq!(cold.manual_inspections, warm.manual_inspections);
        assert_eq!(cold.timings.check_count, warm.timings.check_count);
        assert_eq!(cold.sim.runs, warm.sim.runs);
        assert_eq!(cold.sim.cycles, warm.sim.cycles);

        // The warm run never touched the solver or the simulator: every
        // lookup hit, and no engine was ever elaborated.
        let warm_stats = warm.cache.expect("cache attached");
        assert_eq!(warm_stats.misses, 0, "warm run must be fully served");
        assert!(warm_stats.hits >= warm.timings.check_count);
        assert_eq!(warm.timings.formal_elaboration, Duration::ZERO);

        // Attaching a cache implies certification, and cached verdicts are
        // re-validated on load so the accounting still balances.
        for report in [&cold, &warm] {
            let cert = report.certification.as_ref().expect("cache => certify");
            assert!(cert.fully_certified(), "{:?}", cert.failures);
            assert_eq!(cert.stats.certified_checks, report.timings.check_count);
        }
        let cold_stats = cold.cache.expect("cache attached");
        assert!(cold_stats.misses > 0, "cold run must populate the cache");
        assert!(cold_stats.bytes > 0);
    }

    /// [`constrained_case`] plus a capture register guarded by a cycle
    /// counter that tops out past the simulated horizon: simulation never
    /// sees taint in it, but the symbolic product starts from an
    /// arbitrary counter value, so the first UPEC check finds the legal
    /// propagation (one inspection, the register leaves the clean set)
    /// and the flow re-checks — a second check on the same engine, whose
    /// clause-store import pass probes the cones the first check encoded.
    fn constrained_ghost_case() -> CaseStudy {
        let mut b = ModuleBuilder::new("modal_ghost");
        let mode = b.control_input("mode", 1);
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let acc = b.reg("acc", 8, 0);
        let a = b.sig(acc);
        b.set_next(acc, d).expect("drive");
        b.data_output("result", a);
        let cnt = b.reg("cnt", 8, 0);
        let c = b.sig(cnt);
        let one = b.lit(8, 1);
        let inc = b.add(c, one);
        b.set_next(cnt, inc).expect("drive");
        let rare = b.eq_lit(c, 255);
        let ghost = b.reg("ghost", 8, 0);
        let gh = b.sig(ghost);
        let capture = b.mux(rare, d, gh);
        b.set_next(ghost, capture).expect("drive");
        b.data_output("ghost_out", gh);
        let m_sig = b.sig(mode);
        let zero = b.lit(8, 0);
        let visible = b.mux(m_sig, a, zero);
        let leak = b.red_or(visible);
        b.control_output("debug_flag", leak);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        let mode_off = b.eq_lit(m_sig, 0);
        let m = b.build().expect("valid");
        let mode_id = m.signal_by_name("mode").expect("mode");
        let mut instance = DesignInstance::new(m);
        instance.constraints.push(NamedPredicate::with_restriction(
            "debug_mode_disabled",
            mode_off,
            move |_, tb| {
                tb.fix(mode_id, 0);
            },
        ));
        let mut study = CaseStudy::new("toy_modal_ghost", instance);
        study.cycles = 200;
        study
    }

    /// Clause-store round trip at flow level: a store seeded with one
    /// implied cone-local clause per state register (`x ∨ ¬x`, trivially
    /// RUP under any encoding of the cone) is probed and imported by the
    /// run's UPEC checks, the imported clauses — short and wholly inside
    /// one cone — are republished by the engine's export pass on
    /// retirement, and attaching the store changes no observable result.
    /// (Organic exports need thousands of conflicts before clause
    /// minimization sheds the activation literal, so the toy designs
    /// can't produce them; the engine-level test in `fastpath-formal`
    /// and the CI warm-store smoke on the real case studies cover that
    /// half.)
    #[test]
    fn clause_store_round_trips_through_the_flow() {
        let dir = std::env::temp_dir().join(format!(
            "fastpath_flow_store_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("store dir");
        let path = dir.join("clauses.txt");
        let study = constrained_ghost_case();
        let canon = fastpath_rtl::canonical_form(&study.instance.module);
        {
            let seed = fastpath_formal::ClauseStore::open(&path);
            for reg in study.instance.module.state_signals() {
                seed.publish(canon.signal_label(reg), [vec![1, -1]]);
            }
            seed.save().expect("seed store");
        }
        let store = Arc::new(fastpath_formal::ClauseStore::open(&path));
        assert!(store.base_clauses() > 0, "save/reopen promotes the seeds");
        let stored = run_fastpath_with(
            &study,
            FlowOptions {
                clause_store: Some(Arc::clone(&store)),
                ..FlowOptions::default()
            },
        );
        let plain = run_fastpath_with(&constrained_ghost_case(), FlowOptions::default());

        // The store never changes what a consumer observes.
        assert_eq!(stored.verdict, plain.verdict);
        assert_eq!(stored.method, plain.method);
        assert_eq!(stored.manual_inspections, plain.manual_inspections);
        assert_eq!(stored.timings.check_count, plain.timings.check_count);

        // Every cone the checks encoded probed its seed clause and the
        // tautology passed the RUP probe.
        assert!(
            stored.solver_stats.reuse_probed > 0,
            "the run must probe stored clauses (checks={} verdict={:?})",
            stored.timings.check_count,
            stored.verdict,
        );
        assert_eq!(
            stored.solver_stats.reuse_imported,
            stored.solver_stats.reuse_probed,
            "an implied clause must survive the probe"
        );
        assert_eq!(plain.solver_stats.reuse_probed, 0);

        // The engine's retirement export republished the imported
        // clauses, and saving promotes them for the next run.
        assert!(
            store.pending_clauses() > 0,
            "imported cone-local clauses must be re-exported"
        );
        store.save().expect("save");
        let reopened = fastpath_formal::ClauseStore::open(&path);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(reopened.base_clauses() >= store.base_clauses());
    }

    /// A cache that serves corrupted DRUP artifacts: revalidation must
    /// reject them and the flow must re-prove rather than trust the entry.
    #[derive(Debug)]
    struct CorruptProofs(cache::MemoryCache);

    impl ProofCache for CorruptProofs {
        fn load(&self, kind: CacheKind, key: &fastpath_rtl::Digest) -> Option<String> {
            let text = self.0.load(kind, key)?;
            if kind == CacheKind::Check {
                // Well-formed entry (checksum intact) whose proof is
                // garbage: only semantic revalidation can catch this.
                match cache::decode_check(&text) {
                    Ok(cache::CachedCheck::HoldsProof { cnf, .. }) => {
                        let bad = cache::CachedCheck::HoldsProof {
                            cnf,
                            drup: "garbage\n".into(),
                        };
                        return Some(cache::encode_check(&bad));
                    }
                    Ok(cache::CachedCheck::HoldsHinted { cnf, .. }) => {
                        let bad = cache::CachedCheck::HoldsHinted {
                            cnf,
                            proof: "garbage\n".into(),
                        };
                        return Some(cache::encode_check(&bad));
                    }
                    _ => {}
                }
            }
            Some(text)
        }

        fn store(&self, kind: CacheKind, key: &fastpath_rtl::Digest, entry: &str) {
            self.0.store(kind, key, entry);
        }
    }

    #[test]
    fn corrupted_cached_proof_is_detected_and_reproved() {
        let shared: Arc<dyn ProofCache> = Arc::new(CorruptProofs(cache::MemoryCache::new()));
        let with_cache = || FlowOptions {
            cache: Some(Arc::clone(&shared)),
            ..FlowOptions::default()
        };
        let cold = run_fastpath_with(&constrained_case(), with_cache());
        let warm = run_fastpath_with(&constrained_case(), with_cache());

        // Identical observable results: the corrupted entries were simply
        // re-proved, never trusted.
        assert_eq!(cold.verdict, warm.verdict);
        assert_eq!(cold.events, warm.events);
        let cert = warm.certification.as_ref().expect("cache => certify");
        assert!(cert.fully_certified(), "{:?}", cert.failures);
        assert_eq!(cert.stats.certified_checks, warm.timings.check_count);

        // At least one proof-backed entry failed revalidation on the warm
        // run and was recounted as a miss.
        let warm_stats = warm.cache.expect("cache attached");
        assert!(
            warm_stats.misses > 0,
            "corrupted proofs must surface as misses"
        );
    }
}
