//! A work-stealing scheduler for coarse-grained verification tasks.
//!
//! The Table I driver runs sixteen independent verification flows (eight
//! designs × {FastPath, baseline}); each takes from milliseconds to
//! seconds, with no shared mutable state. That workload is embarrassingly
//! parallel but badly load-balanced — `cva6_div` costs orders of magnitude
//! more than `sha512_acc` — so static sharding would leave most threads
//! idle behind the slowest shard. [`run_ordered`] instead schedules over
//! work-stealing deques (`crossbeam::deque`): tasks are dealt round-robin
//! into per-worker deques, a worker drains its own deque LIFO, refills
//! from a shared FIFO injector, and finally steals the *oldest* task off
//! a sibling's deque.
//!
//! Determinism: results are written into a slot vector indexed by task id,
//! so the returned `Vec` is in submission order no matter which thread ran
//! which task or in what order they finished. Callers that format output
//! from the returned results therefore produce byte-identical output for
//! any `jobs` value (asserted by `tests/table1_determinism.rs`).

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;

/// Runs `tasks` on up to `jobs` worker threads and returns their results
/// **in submission order**.
///
/// * `jobs <= 1` (or fewer than two tasks) runs everything sequentially on
///   the calling thread — no threads are spawned, which keeps single-job
///   runs bit-for-bit identical to the pre-parallel driver.
/// * `jobs` is capped at the number of tasks; idle workers exit as soon as
///   every deque (their own, the injector, and every sibling's) is dry.
///
/// Tasks must be `Send` because they migrate to worker threads; they may
/// borrow from the caller's stack (`std::thread::scope`).
pub fn run_ordered<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let jobs = jobs.min(n);

    // Deal tasks round-robin into per-worker deques so every worker starts
    // busy and sibling-stealing has something to steal; the injector takes
    // dynamic submissions (none today, but `find_task` consults it so the
    // scheduler generalises to task-spawned subtasks).
    let injector: Injector<(usize, F)> = Injector::new();
    let workers: Vec<Worker<(usize, F)>> = (0..jobs).map(|_| Worker::new_fifo()).collect();
    for (i, f) in tasks.into_iter().enumerate() {
        workers[i % jobs].push((i, f));
    }
    let stealers: Vec<Stealer<(usize, F)>> = workers.iter().map(Worker::stealer).collect();

    // One slot per task, written exactly once by whichever worker ran it.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (wi, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            scope.spawn(move || {
                while let Some((i, f)) = find_task(wi, &worker, injector, stealers) {
                    *slots[i].lock() = Some(f());
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("scheduler ran every task"))
        .collect()
}

/// Next task for worker `wi`: own deque (newest first), then the global
/// injector (oldest first), then the front of a sibling's deque.
fn find_task<T>(
    wi: usize,
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<T> {
    local
        .pop()
        .or_else(|| injector.steal().success())
        .or_else(|| {
            stealers
                .iter()
                .enumerate()
                .filter(|&(si, _)| si != wi)
                .find_map(|(_, s)| s.steal().success())
        })
}

#[cfg(test)]
mod tests {
    use super::run_ordered;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 7, 64] {
            let tasks: Vec<_> = (0..32usize).map(|i| move || i * i).collect();
            let got = run_ordered(jobs, tasks);
            let want: Vec<usize> = (0..32).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn unbalanced_tasks_are_stolen_not_serialised() {
        // One heavy task at the front of worker 0's deque; the light tail
        // dealt to worker 0 must be stolen by worker 1 while 0 is busy.
        let ran = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..16usize)
            .map(|i| {
                let ran = &ran;
                move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let got = run_ordered(2, tasks);
        assert_eq!(ran.load(Ordering::Relaxed), 16);
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_empty_task_lists_are_fine() {
        assert_eq!(run_ordered::<usize, fn() -> usize>(4, vec![]), vec![]);
        let tasks: Vec<_> = (0..3usize).map(|i| move || i).collect();
        assert_eq!(run_ordered(0, tasks), vec![0, 1, 2]);
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<String> = (0..8).map(|i| format!("item-{i}")).collect();
        let tasks: Vec<_> = data.iter().map(|s| move || s.len()).collect();
        let lens = run_ordered(4, tasks);
        assert_eq!(lens, vec![6, 6, 6, 6, 6, 6, 6, 6]);
    }
}
