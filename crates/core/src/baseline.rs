//! The formal-only baseline: original UPEC-DIT as in [22].
//!
//! The baseline skips structural analysis and simulation entirely. It
//! starts the iterative partitioning from `Z' = Z` (all state signals) and
//! inspects **every** counterexample manually: each divergent signal
//! removed from `Z'`, each derived constraint, each added invariant, and
//! each confirmed vulnerability counts toward the effort metric. The gap
//! between this count and FastPath's is exactly Table I's "Reduction".

use crate::cache::CheckKind;
use crate::flow::{
    active_check_key, ensure_upec_engine, finish_upec_proved, rerun_in_bits, sync_spec_entries,
    try_ic3_discharge, DischargeResult, FlowContext, FlowOptions, Ic3State, SyncedSpec,
};
use crate::report::{
    CertificationSummary, CompletionMethod, FlowEvent, FlowReport, Stage, Verdict,
};
use crate::study::CaseStudy;
use crate::witness::WitnessReplay;
use fastpath_formal::{Upec2Safety, UpecEngine, UpecOutcome};
use fastpath_rtl::SignalId;
use std::collections::BTreeSet;
use std::time::Instant;

/// Runs the formal-only UPEC-DIT baseline on a case study.
pub fn run_baseline(study: &CaseStudy) -> FlowReport {
    run_baseline_with(study, FlowOptions::default())
}

/// Runs the baseline with options. Only the certification switches of
/// [`FlowOptions`] apply — the baseline has no structural or simulation
/// stage to ablate.
pub fn run_baseline_with(study: &CaseStudy, options: FlowOptions) -> FlowReport {
    let mut ctx = FlowContext::new(study);
    ctx.cache = options.cache.clone();
    if options.certify || ctx.cache.is_some() {
        ctx.certification = Some(CertificationSummary::default());
    }
    let mut instance = &study.instance;
    let mut fixed_used = false;

    'design: loop {
        let module = &instance.module;
        let canon = ctx
            .cache
            .is_some()
            .then(|| fastpath_rtl::canonical_form(module));
        let mut z_prime: BTreeSet<SignalId> = module.state_signals().into_iter().collect();
        let mut active_constraints: Vec<usize> = Vec::new();
        let mut active_invariants: Vec<usize> = Vec::new();
        let mut active_cond_eqs: Vec<usize> = Vec::new();
        // How much of the active spec has been pushed into the engine.
        let mut synced = SyncedSpec::default();
        // The design's SecIC3 engine, created lazily on the first cold
        // escalation attempt.
        let mut ic3: Option<Ic3State<'_>> = None;

        // One engine per design instance, created lazily on the first
        // cache miss: the frame template is elaborated once and the
        // incremental SAT solver survives every refinement iteration
        // below (spec growth included). A fully warm cache run never
        // elaborates at all.
        let mut upec: Option<Upec2Safety<'_>> = None;

        // Ensures the engine exists and is synced with every active spec
        // entry, then evaluates to `&mut` on it. A macro (not a closure)
        // so the borrows of `ctx` and the activation vectors stay local
        // to each expansion.
        macro_rules! engine {
            () => {{
                let engine = ensure_upec_engine(&mut upec, module, &options, &mut ctx, "baseline");
                sync_spec_entries(
                    engine,
                    instance,
                    &active_constraints,
                    &active_invariants,
                    &active_cond_eqs,
                    &mut synced,
                );
                engine
            }};
        }

        {
            loop {
                let z_vec: Vec<SignalId> = z_prime.iter().copied().collect();
                // The original procedure inspects internal propagations in
                // discovery order; only when the state partitioning is
                // stable is the full property (including the attacker
                // -observable outputs) concluded.
                let key = canon.as_ref().map(|canon| {
                    active_check_key(
                        canon,
                        CheckKind::StateOnly,
                        options.upec_encoding,
                        instance,
                        &z_vec,
                        &active_constraints,
                        &active_invariants,
                        &active_cond_eqs,
                    )
                });
                let mut cached = None;
                if let Some(key) = &key {
                    let t0 = Instant::now();
                    cached = ctx.try_cached_check(key, module, instance, &active_cond_eqs);
                    ctx.timings.formal_checks += t0.elapsed();
                }
                let mut outcome = match cached {
                    Some(outcome) => outcome,
                    None => {
                        let engine = engine!();
                        let t0 = Instant::now();
                        let outcome = if ctx.certification.is_some() {
                            let certified = engine.check_state_only_certified(&z_vec);
                            let fell = engine.product_stats().word_fallbacks;
                            if fell > 0 {
                                return rerun_in_bits(study, &options, fell, run_baseline_with);
                            }
                            ctx.record_certificate(&certified);
                            let artifact = engine.take_last_artifact();
                            ctx.store_cached_check(key.as_ref(), &certified, artifact);
                            certified.outcome
                        } else {
                            let outcome = engine.check_state_only(&z_vec);
                            let fell = engine.product_stats().word_fallbacks;
                            if fell > 0 {
                                return rerun_in_bits(study, &options, fell, run_baseline_with);
                            }
                            outcome
                        };
                        ctx.timings.formal_checks += t0.elapsed();
                        outcome
                    }
                };
                if outcome.holds() {
                    let key = canon.as_ref().map(|canon| {
                        active_check_key(
                            canon,
                            CheckKind::Full,
                            options.upec_encoding,
                            instance,
                            &z_vec,
                            &active_constraints,
                            &active_invariants,
                            &active_cond_eqs,
                        )
                    });
                    let mut cached = None;
                    if let Some(key) = &key {
                        let t0 = Instant::now();
                        cached = ctx.try_cached_check(key, module, instance, &active_cond_eqs);
                        ctx.timings.formal_checks += t0.elapsed();
                    }
                    outcome = match cached {
                        Some(outcome) => outcome,
                        None => {
                            let engine = engine!();
                            let t0 = Instant::now();
                            let outcome = if ctx.certification.is_some() {
                                let certified = engine.check_certified(&z_vec);
                                let fell = engine.product_stats().word_fallbacks;
                                if fell > 0 {
                                    return rerun_in_bits(study, &options, fell, run_baseline_with);
                                }
                                ctx.record_certificate(&certified);
                                let artifact = engine.take_last_artifact();
                                ctx.store_cached_check(key.as_ref(), &certified, artifact);
                                certified.outcome
                            } else {
                                let outcome = engine.check(&z_vec);
                                let fell = engine.product_stats().word_fallbacks;
                                if fell > 0 {
                                    return rerun_in_bits(study, &options, fell, run_baseline_with);
                                }
                                outcome
                            };
                            ctx.timings.formal_checks += t0.elapsed();
                            outcome
                        }
                    };
                }
                ctx.timings.check_count += 1;
                ctx.events.push(FlowEvent::UpecCheck {
                    holds: outcome.holds(),
                });
                let cex = match outcome {
                    UpecOutcome::Holds => {
                        return finish_upec_proved(
                            ctx,
                            module,
                            instance,
                            upec.as_ref(),
                            &active_constraints,
                            z_prime.len(),
                            None,
                        );
                    }
                    UpecOutcome::Counterexample(cex) => cex,
                };

                ctx.confirm_replay(module, instance, &active_cond_eqs, &cex);
                let replay = WitnessReplay::new(module, &cex);

                // Same escalation policy as the FastPath flow: on the
                // constrained track, before any classification that costs
                // manual inspections, SecIC3 may discharge the
                // obligations outright (unconstrained runs, scenario
                // exclusion and genuine output divergence are never
                // escalated). The discharge re-validates through the
                // full-property check, which subsumes the state-only one.
                macro_rules! escalate {
                    () => {
                        if options.upec_engine == UpecEngine::Ic3 && !active_constraints.is_empty()
                        {
                            match try_ic3_discharge(
                                &mut ctx,
                                &options,
                                module,
                                instance,
                                canon.as_ref(),
                                &mut upec,
                                &mut synced,
                                &mut ic3,
                                &z_vec,
                                &active_constraints,
                                &active_invariants,
                                &active_cond_eqs,
                            ) {
                                DischargeResult::Proved => {
                                    return finish_upec_proved(
                                        ctx,
                                        module,
                                        instance,
                                        upec.as_ref(),
                                        &active_constraints,
                                        z_prime.len(),
                                        None,
                                    );
                                }
                                DischargeResult::Failed => {}
                            }
                        }
                    };
                }

                if let Some(ii) = instance.invariants.iter().enumerate().position(|(i, inv)| {
                    !active_invariants.contains(&i) && !replay.invariant_holds(module, inv.expr)
                }) {
                    escalate!();
                    ctx.inspections += 1;
                    active_invariants.push(ii);
                    ctx.events.push(FlowEvent::InvariantAdded {
                        name: instance.invariants[ii].name.clone(),
                    });
                    continue;
                }

                if let Some(ci) = instance.cond_eqs.iter().enumerate().position(|(i, ce)| {
                    !active_cond_eqs.contains(&i)
                        && crate::flow::cond_eq_violated_in_witness(module, &replay, ce)
                }) {
                    escalate!();
                    ctx.inspections += 1;
                    active_cond_eqs.push(ci);
                    ctx.events.push(FlowEvent::InvariantAdded {
                        name: instance.cond_eqs[ci].name.clone(),
                    });
                    continue;
                }

                if let Some(ci) = instance.constraints.iter().enumerate().position(|(i, c)| {
                    !active_constraints.contains(&i) && !replay.constraint_holds(module, c.expr)
                }) {
                    ctx.inspections += 1;
                    active_constraints.push(ci);
                    ctx.events.push(FlowEvent::ConstraintDerived {
                        name: instance.constraints[ci].name.clone(),
                        stage: Stage::Formal,
                    });
                    continue;
                }

                if !cex.divergent_outputs.is_empty() {
                    ctx.inspections += 1;
                    let names: Vec<String> = cex
                        .divergent_outputs
                        .iter()
                        .map(|&y| module.signal(y).name.clone())
                        .collect();
                    let description = format!(
                        "confidential data reaches control output(s) {}",
                        names.join(", ")
                    );
                    ctx.vulnerabilities.push(description.clone());
                    ctx.events.push(FlowEvent::VulnerabilityFound {
                        description,
                        stage: Stage::Formal,
                    });
                    ctx.absorb_engine(upec.as_ref());
                    if let (Some(fixed), false) = (&study.fixed_instance, fixed_used) {
                        fixed_used = true;
                        instance = fixed;
                        ctx.events.push(FlowEvent::DesignFixed);
                        continue 'design;
                    }
                    return ctx.finish(
                        module,
                        Verdict::NotDataOblivious,
                        CompletionMethod::Upec,
                        None,
                        Some(module.state_signals().len() - z_prime.len()),
                    );
                }

                escalate!();
                debug_assert!(!cex.divergent_state.is_empty());
                ctx.inspections += cex.divergent_state.len() as u64;
                for s in &cex.divergent_state {
                    z_prime.remove(s);
                }
                ctx.events.push(FlowEvent::PropagationsRemoved {
                    count: cex.divergent_state.len(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::run_fastpath;
    use crate::report::effort_reduction;
    use crate::study::DesignInstance;
    use fastpath_rtl::ModuleBuilder;

    /// A wide data path: IFT discharges it for free, the baseline inspects
    /// every register on it.
    fn wide_datapath() -> CaseStudy {
        let mut b = ModuleBuilder::new("wide");
        let data = b.data_input("data", 8);
        let d = b.sig(data);
        let mut prev = d;
        for i in 0..6 {
            let r = b.reg(&format!("stage{i}"), 8, 0);
            b.set_next(r, prev).expect("drive");
            prev = b.sig(r);
        }
        b.data_output("out", prev);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        // A benign structural connection so the HFG cannot discharge the
        // design early: both mux branches are identical, so no information
        // actually flows.
        let data_bit = b.bit(d, 0);
        let shaped = b.mux(data_bit, t, t);
        b.control_output("phase_dbg", shaped);
        let mut study = CaseStudy::new("wide", DesignInstance::new(b.build().expect("valid")));
        study.cycles = 100;
        study
    }

    #[test]
    fn baseline_inspects_the_pipeline_fastpath_does_not() {
        let study = wide_datapath();
        let base = run_baseline(&study);
        let fast = run_fastpath(&study);
        assert_eq!(base.verdict, Verdict::DataOblivious);
        assert_eq!(fast.verdict, Verdict::DataOblivious);
        // All six pipeline registers are data propagations.
        assert_eq!(base.total_propagations, Some(6));
        assert_eq!(fast.total_propagations, Some(6));
        // The baseline inspected them manually; FastPath's IFT pass found
        // them automatically.
        assert_eq!(base.manual_inspections, 6);
        assert_eq!(fast.manual_inspections, 0);
        assert_eq!(effort_reduction(&base, &fast), 100.0);
    }

    #[test]
    fn certified_baseline_replays_every_counterexample() {
        use crate::flow::FlowOptions;
        let study = wide_datapath();
        let report = run_baseline_with(
            &study,
            FlowOptions {
                certify: true,
                ..FlowOptions::default()
            },
        );
        assert_eq!(report.verdict, Verdict::DataOblivious);
        let cert = report.certification.expect("certification requested");
        assert!(cert.fully_certified(), "{:?}", cert.failures);
        // Every divergence the baseline inspected was replayed concretely.
        assert!(cert.counterexamples_replayed >= 1);
        assert!(cert.stats.sat_models >= 1, "{:?}", cert.stats);
        assert!(
            cert.stats.unsat_proofs + cert.stats.trivial_unsat >= 1,
            "{:?}",
            cert.stats
        );
    }
}
