//! Fine-grained per-pair analysis.
//!
//! Sec. V of the paper mentions "a more fine-grained analysis that
//! considers a propagation path for each combination `(x_D, y_C)`". This
//! module provides the structural version over the HFG: for each data
//! input / control output pair, whether any potential flow path exists at
//! all, and a sample path for the ones that do.

use fastpath_hfg::{extract_hfg, PathQuery, QueryOptions};
use fastpath_rtl::{Module, SignalId};

/// The structural relationship of one `(x_D, y_C)` pair.
#[derive(Clone, Debug)]
pub struct PairResult {
    /// The data input.
    pub data_input: SignalId,
    /// The control output.
    pub control_output: SignalId,
    /// Whether any HFG path connects them.
    pub path_exists: bool,
    /// The signals along one shortest-found path (empty if none).
    pub sample_path: Vec<SignalId>,
}

/// Per-pair structural analysis of a module.
#[derive(Clone, Debug)]
pub struct PairwiseAnalysis {
    /// One entry per `(x_D, y_C)` combination.
    pub pairs: Vec<PairResult>,
}

impl PairwiseAnalysis {
    /// Runs the analysis.
    pub fn run(module: &Module) -> Self {
        let hfg = extract_hfg(module);
        let query = PathQuery::new(&hfg);
        let mut pairs = Vec::new();
        for x in module.data_inputs() {
            for y in module.control_outputs() {
                let path_exists = query.reachable(x, y);
                let sample_path = if path_exists {
                    query
                        .paths(
                            x,
                            y,
                            QueryOptions {
                                max_paths: 1,
                                max_length: 64,
                            },
                        )
                        .first()
                        .map(|p| p.signals(&hfg))
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                pairs.push(PairResult {
                    data_input: x,
                    control_output: y,
                    path_exists,
                    sample_path,
                });
            }
        }
        PairwiseAnalysis { pairs }
    }

    /// The number of pairs with a potential flow path.
    pub fn connected_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.path_exists).count()
    }

    /// Renders a human-readable summary.
    pub fn summary(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.pairs {
            let _ = writeln!(
                out,
                "  {} -> {}: {}",
                module.signal(p.data_input).name,
                module.signal(p.control_output).name,
                if p.path_exists {
                    "potential path"
                } else {
                    "no structural path (proven non-interferent)"
                }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn pairwise_distinguishes_connected_pairs() {
        let mut b = ModuleBuilder::new("m");
        let key = b.data_input("key", 8);
        let pt = b.data_input("pt", 8);
        let k = b.sig(key);
        let r = b.reg("r", 8, 0);
        b.set_next(r, k).expect("drive");
        let r_sig = b.sig(r);
        // `ready` depends on key (through r) but never on pt.
        let ready = b.red_or(r_sig);
        b.control_output("ready", ready);
        let p = b.sig(pt);
        b.data_output("ct", p);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        b.control_output("phase", t);
        let m = b.build().expect("valid");

        let analysis = PairwiseAnalysis::run(&m);
        assert_eq!(analysis.pairs.len(), 4); // 2 inputs x 2 outputs
        assert_eq!(analysis.connected_count(), 1);
        let connected = analysis.pairs.iter().find(|p| p.path_exists).expect("one");
        assert_eq!(m.signal(connected.data_input).name, "key");
        assert_eq!(m.signal(connected.control_output).name, "ready");
        assert!(connected.sample_path.len() >= 2);
        let summary = analysis.summary(&m);
        assert!(summary.contains("potential path"));
        assert!(summary.contains("non-interferent"));
    }
}

/// Dynamic (IFT-based) per-pair analysis: taints one data input at a time
/// and records which control outputs its information reaches under the
/// study's (restricted) testbench — the simulation-level counterpart of
/// the structural [`PairwiseAnalysis`].
///
/// A `false` entry means "no flow observed for these stimuli", which is
/// *not* a guarantee (that is the formal step's job); a `true` entry is a
/// concrete flow.
#[derive(Clone, Debug)]
pub struct DynamicPairwise {
    /// `(data input, control output, flow observed)` per combination.
    pub pairs: Vec<(fastpath_rtl::SignalId, fastpath_rtl::SignalId, bool)>,
}

impl DynamicPairwise {
    /// Runs one single-source IFT simulation per data input of the study's
    /// primary instance, with all of the study's candidate constraints
    /// applied to the testbench (the intended-usage scenario).
    pub fn run(study: &crate::CaseStudy) -> Self {
        use fastpath_sim::{TaintSimulator, Testbench as _};
        let instance = &study.instance;
        let module = &instance.module;
        let outputs = module.control_outputs();
        let mut pairs = Vec::new();
        for x in module.data_inputs() {
            let mut tb = fastpath_sim::RandomTestbench::new(module, study.seed);
            if let Some(cfg) = &instance.configure_testbench {
                cfg(module, &mut tb);
            }
            for constraint in &instance.constraints {
                if let Some(r) = &constraint.restrict_testbench {
                    r(module, &mut tb);
                }
            }
            let mut sim = TaintSimulator::new(module, study.policy);
            for &d in &instance.initial_declassified {
                sim.declassify(d);
            }
            let mut reached: Vec<bool> = vec![false; outputs.len()];
            for cycle in 0..study.cycles {
                for (input, value) in tb.drive(cycle) {
                    sim.set_input(input, value, input == x);
                }
                sim.settle();
                for (k, &y) in outputs.iter().enumerate() {
                    if sim.is_tainted(y) {
                        reached[k] = true;
                    }
                }
                sim.clock();
            }
            for (k, &y) in outputs.iter().enumerate() {
                pairs.push((x, y, reached[k]));
            }
        }
        DynamicPairwise { pairs }
    }

    /// The number of pairs with an observed flow.
    pub fn observed_count(&self) -> usize {
        self.pairs.iter().filter(|(_, _, f)| *f).count()
    }
}

#[cfg(test)]
mod dynamic_tests {
    use super::*;
    use crate::{CaseStudy, DesignInstance};
    use fastpath_rtl::ModuleBuilder;

    #[test]
    fn dynamic_pairwise_refines_the_structural_matrix() {
        // key reaches `ready` both structurally and dynamically; nonce has
        // a structural path that is never active (mux with equal
        // branches): structural=connected, dynamic=no flow.
        let mut b = ModuleBuilder::new("m");
        let key = b.data_input("key", 8);
        let nonce = b.data_input("nonce", 8);
        let k = b.sig(key);
        let n = b.sig(nonce);
        let r = b.reg("r", 8, 0);
        b.set_next(r, k).expect("drive");
        let rs = b.sig(r);
        let ready = b.red_or(rs);
        b.control_output("ready", ready);
        let tick = b.reg("tick", 1, 0);
        let t = b.sig(tick);
        let nt = b.not(t);
        b.set_next(tick, nt).expect("drive");
        let n0 = b.bit(n, 0);
        let shaped = b.mux(n0, t, t); // structural but inactive
        b.control_output("phase", shaped);
        let m = b.build().expect("valid");

        let mut study = CaseStudy::new("toy", DesignInstance::new(m));
        study.cycles = 60;
        let structural = PairwiseAnalysis::run(&study.instance.module);
        let dynamic = DynamicPairwise::run(&study);
        // Structural: key->ready, key->phase? key doesn't reach phase;
        // nonce->phase connected.
        assert!(structural.connected_count() >= 2);
        // Dynamic: only key->ready actually flows.
        assert_eq!(dynamic.observed_count(), 1);
        let module = &study.instance.module;
        let flow = dynamic
            .pairs
            .iter()
            .find(|(_, _, f)| *f)
            .expect("one observed flow");
        assert_eq!(module.signal(flow.0).name, "key");
        assert_eq!(module.signal(flow.1).name, "ready");
        // Dynamic flows are a subset of structural connectivity (the
        // over-approximation theorem, per pair).
        for &(x, y, observed) in &dynamic.pairs {
            if observed {
                let hit = structural
                    .pairs
                    .iter()
                    .find(|p| p.data_input == x && p.control_output == y)
                    .expect("pair present");
                assert!(hit.path_exists);
            }
        }
    }
}
