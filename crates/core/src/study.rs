//! Case-study packaging: everything the FastPath flow needs to verify one
//! design.
//!
//! A [`CaseStudy`] bundles the design under verification with its security
//! specification *and* the raw material a verification engineer would bring
//! to the table: candidate software constraints (with their testbench
//! restrictions), candidate invariants, flow-policy refinements, and —
//! when a design has a known fix — the repaired variant to switch to after
//! a vulnerability is confirmed.
//!
//! The flow ([`run_fastpath`](crate::run_fastpath)) *derives* which
//! constraints and invariants are actually needed by classifying concrete
//! counterexamples; the candidates here are only the vocabulary it may draw
//! from, mirroring how an engineer knows the design's intended usage.

use fastpath_rtl::{ExprId, Module, SignalId};
use fastpath_sim::{FlowPolicy, RandomTestbench};
use std::fmt;
use std::sync::Arc;

/// A closure that restricts or shapes the random testbench (e.g. fixing a
/// mode bit, excluding opcodes).
///
/// `Send + Sync` so whole case studies can be sharded across the parallel
/// Table I driver's worker threads (see [`crate::parallel`]).
pub type TestbenchRestriction = Arc<dyn Fn(&Module, &mut RandomTestbench) + Send + Sync>;

/// A named 1-bit predicate over the design's signals, used as a software
/// constraint or an invariant. The expression lives in the module's own
/// arena (build it with the same `ModuleBuilder` before `build()`).
#[derive(Clone)]
pub struct NamedPredicate {
    /// Human-readable name (reported in derived-constraint lists).
    pub name: String,
    /// The 1-bit predicate expression.
    pub expr: ExprId,
    /// How to impose the predicate on the random testbench, if it speaks
    /// about inputs. `None` for state-only predicates (invariants).
    pub restrict_testbench: Option<TestbenchRestriction>,
}

impl fmt::Debug for NamedPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamedPredicate")
            .field("name", &self.name)
            .field("expr", &self.expr)
            .field("restrict_testbench", &self.restrict_testbench.is_some())
            .finish()
    }
}

impl NamedPredicate {
    /// A predicate without a testbench restriction.
    pub fn new(name: impl Into<String>, expr: ExprId) -> Self {
        NamedPredicate {
            name: name.into(),
            expr,
            restrict_testbench: None,
        }
    }

    /// A predicate with a testbench restriction.
    pub fn with_restriction(
        name: impl Into<String>,
        expr: ExprId,
        restrict: impl Fn(&Module, &mut RandomTestbench) + Send + Sync + 'static,
    ) -> Self {
        NamedPredicate {
            name: name.into(),
            expr,
            restrict_testbench: Some(Arc::new(restrict)),
        }
    }
}

/// A candidate conditional 2-safety equality: whenever `cond` holds in
/// both instances of the UPEC model, `signal` must be equal between them.
/// Activated by the flow when a counterexample violates it, like an
/// invariant (and counted as one manual inspection).
#[derive(Clone, Debug)]
pub struct NamedCondEq {
    /// Human-readable name.
    pub name: String,
    /// 1-bit condition expression (in the module arena).
    pub cond: fastpath_rtl::ExprId,
    /// The register whose conditional equality is asserted.
    pub signal: SignalId,
}

/// One concrete design variant plus its specification vocabulary.
#[derive(Clone)]
pub struct DesignInstance {
    /// The design under verification, with interface roles annotated.
    pub module: Module,
    /// Candidate software constraints (activated on demand by the flow).
    pub constraints: Vec<NamedPredicate>,
    /// Candidate invariants against spurious symbolic-state
    /// counterexamples.
    pub invariants: Vec<NamedPredicate>,
    /// Candidate conditional 2-safety equalities (see [`NamedCondEq`]).
    pub cond_eqs: Vec<NamedCondEq>,
    /// Base testbench configuration (protocol signals, value bounds).
    pub configure_testbench: Option<TestbenchRestriction>,
    /// Flow-policy refinements the engineer may apply when the taint policy
    /// is too conservative (signals whose labels are intended flows).
    pub declassify_candidates: Vec<SignalId>,
    /// Signals declassified from the start (intended data sinks).
    pub initial_declassified: Vec<SignalId>,
}

impl fmt::Debug for DesignInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DesignInstance")
            .field("module", &self.module.name())
            .field("constraints", &self.constraints.len())
            .field("invariants", &self.invariants.len())
            .finish()
    }
}

impl DesignInstance {
    /// A bare instance with no specification vocabulary.
    pub fn new(module: Module) -> Self {
        DesignInstance {
            module,
            constraints: Vec::new(),
            invariants: Vec::new(),
            cond_eqs: Vec::new(),
            configure_testbench: None,
            declassify_candidates: Vec::new(),
            initial_declassified: Vec::new(),
        }
    }
}

/// A complete case study: the design (plus optional fixed variant) and the
/// verification run parameters.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Display name (Table I row label).
    pub name: String,
    /// The design as shipped.
    pub instance: DesignInstance,
    /// The repaired variant, if the design has a known vulnerability and a
    /// fix (the flow switches to it after confirming the leak).
    pub fixed_instance: Option<DesignInstance>,
    /// IFT simulation length in cycles.
    pub cycles: u64,
    /// Random-testbench seed (determinism).
    pub seed: u64,
    /// Taint propagation policy for the IFT step.
    pub policy: FlowPolicy,
}

impl CaseStudy {
    /// A case study with default run parameters (1000 cycles, seed 1,
    /// precise policy, no fixed variant).
    pub fn new(name: impl Into<String>, instance: DesignInstance) -> Self {
        CaseStudy {
            name: name.into(),
            instance,
            fixed_instance: None,
            cycles: 1000,
            seed: 1,
            policy: FlowPolicy::Precise,
        }
    }
}
